//! Synthetic trace generation (the methodology of the paper's ref \[22\],
//! "Trace-Driven Simulations of Data-Alignment and Other Factors affecting
//! Update and Invalidate Based Coherent Memory").
//!
//! Traces are streams of reads/writes over shared pages with tunable write
//! fraction, temporal locality (stay on the current page), spatial
//! locality (sequential word drift), and data alignment (whether writers
//! are blocked into disjoint word regions or interleaved — false sharing).

use telegraphos::{Action, Script, SharedPage};
use tg_sim::{SimRng, SimTime};
use tg_wire::PAGE_WORDS;

/// Parameters of a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Number of memory operations.
    pub ops: u64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Probability that the next access stays on the same page.
    pub page_locality: f64,
    /// Probability that the next access is sequential (word + 1) rather
    /// than a random word.
    pub spatial_locality: f64,
    /// When true, each trace writes only its own word block ("aligned"
    /// data); when false, writers interleave over the full page (false
    /// sharing on the paper's terms).
    pub aligned: bool,
    /// This trace's writer index and the total writer count (defines the
    /// aligned block).
    pub writer: (u64, u64),
    /// Think time between operations.
    pub think: SimTime,
    /// Seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ops: 200,
            write_fraction: 0.3,
            page_locality: 0.9,
            spatial_locality: 0.7,
            aligned: true,
            writer: (0, 1),
            think: SimTime::from_us(2),
            seed: 1,
        }
    }
}

/// Generates a trace as a [`Script`] over the given pages.
///
/// # Panics
///
/// Panics if `pages` is empty or the writer index is out of range.
pub fn synthetic_trace(pages: &[SharedPage], cfg: TraceConfig) -> Script {
    assert!(!pages.is_empty(), "need at least one page");
    let (me, writers) = cfg.writer;
    assert!(me < writers, "writer index out of range");
    let mut rng = SimRng::new(cfg.seed);
    let block = PAGE_WORDS / writers.max(1);
    let (lo, hi) = if cfg.aligned {
        (me * block, (me + 1) * block)
    } else {
        (0, PAGE_WORDS)
    };

    let mut page_idx = rng.range(pages.len() as u64) as usize;
    let mut word = lo + rng.range(hi - lo);
    let mut actions = Vec::with_capacity(2 * cfg.ops as usize);
    for i in 0..cfg.ops {
        if !rng.chance(cfg.page_locality) {
            page_idx = rng.range(pages.len() as u64) as usize;
        }
        if rng.chance(cfg.spatial_locality) {
            word += 1;
            if word >= hi {
                word = lo;
            }
        } else {
            word = lo + rng.range(hi - lo);
        }
        let va = pages[page_idx].va(word * 8);
        if rng.chance(cfg.write_fraction) {
            actions.push(Action::Write(va, (me << 48) | (i + 1)));
        } else {
            actions.push(Action::Read(va));
        }
        if !cfg.think.is_zero() {
            actions.push(Action::Compute(cfg.think));
        }
    }
    Script::new(actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telegraphos::{Process, Resume};
    use tg_wire::{NodeId, PageNum};

    fn pages() -> Vec<SharedPage> {
        (0..2)
            .map(|i| SharedPage {
                index: i,
                home: NodeId::new(0),
                home_page: PageNum::new(i as u32),
            })
            .collect()
    }

    fn drain(mut s: Script) -> Vec<Action> {
        let mut out = Vec::new();
        let mut r = Resume::Start;
        loop {
            let a = s.resume(r);
            if a == Action::Halt {
                return out;
            }
            r = match a {
                Action::Read(_) => Resume::Value(0),
                _ => Resume::Done,
            };
            out.push(a);
        }
    }

    #[test]
    fn trace_respects_op_count_and_think() {
        let cfg = TraceConfig {
            ops: 50,
            ..TraceConfig::default()
        };
        let acts = drain(synthetic_trace(&pages(), cfg));
        let mem_ops = acts
            .iter()
            .filter(|a| matches!(a, Action::Read(_) | Action::Write(..)))
            .count();
        let computes = acts
            .iter()
            .filter(|a| matches!(a, Action::Compute(_)))
            .count();
        assert_eq!(mem_ops, 50);
        assert_eq!(computes, 50);
    }

    #[test]
    fn write_fraction_is_roughly_respected() {
        let cfg = TraceConfig {
            ops: 2000,
            write_fraction: 0.25,
            think: SimTime::ZERO,
            ..TraceConfig::default()
        };
        let acts = drain(synthetic_trace(&pages(), cfg));
        let writes = acts
            .iter()
            .filter(|a| matches!(a, Action::Write(..)))
            .count();
        assert!((400..600).contains(&writes), "writes = {writes}");
    }

    #[test]
    fn aligned_traces_stay_in_their_block() {
        let cfg = TraceConfig {
            ops: 500,
            aligned: true,
            writer: (1, 4), // words [256, 512)
            think: SimTime::ZERO,
            ..TraceConfig::default()
        };
        let base = pages()[0].va(0).bits();
        for a in drain(synthetic_trace(&pages(), cfg)) {
            let va = match a {
                Action::Read(va) | Action::Write(va, _) => va,
                _ => continue,
            };
            let word = (va.bits() - base) % 8192 / 8;
            assert!((256..512).contains(&word), "word {word} outside block");
        }
    }

    #[test]
    fn interleaved_traces_roam_the_page() {
        let cfg = TraceConfig {
            ops: 500,
            aligned: false,
            writer: (1, 4),
            think: SimTime::ZERO,
            ..TraceConfig::default()
        };
        let base = pages()[0].va(0).bits();
        let mut seen_low = false;
        let mut seen_high = false;
        for a in drain(synthetic_trace(&pages(), cfg)) {
            let va = match a {
                Action::Read(va) | Action::Write(va, _) => va,
                _ => continue,
            };
            let word = (va.bits() - base) % 8192 / 8;
            if word < 256 {
                seen_low = true;
            }
            if word >= 512 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high, "unaligned trace stayed in a block");
    }

    #[test]
    fn traces_are_seeded() {
        let a = drain(synthetic_trace(&pages(), TraceConfig::default()));
        let b = drain(synthetic_trace(&pages(), TraceConfig::default()));
        let c = drain(synthetic_trace(
            &pages(),
            TraceConfig {
                seed: 2,
                ..TraceConfig::default()
            },
        ));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
