//! Reactive, handshake-driven workloads: producer/consumer rounds and
//! migratory read-modify-write phases (§2.3.6's two sharing styles).

use telegraphos::{Action, Process, Resume, SharedPage};
use tg_mem::VAddr;
use tg_sim::SimTime;

/// Configuration shared by the producer/consumer pair.
///
/// The *data* page's sharing mode (plain remote / coherent update / eager
/// multicast / VSM) is chosen by the cluster setup; the workload only
/// issues loads and stores, which is the whole point of the paper's
/// programming model.
#[derive(Clone, Copy, Debug)]
pub struct PcConfig {
    /// The data page.
    pub data: SharedPage,
    /// Flag page homed at the *consumer* (producer remote-writes it,
    /// consumer spins locally).
    pub flag: SharedPage,
    /// Ack page homed at the *producer*.
    pub ack: SharedPage,
    /// Words written/read per round.
    pub words: u64,
    /// Rounds.
    pub rounds: u64,
    /// Consumer poll backoff.
    pub poll: SimTime,
    /// Fence between the data and the flag write (§2.3.5; off reproduces
    /// the stale-read hazard).
    pub fence: bool,
}

/// The producer: write the round's data, (fence,) set the flag, await the
/// consumer's ack.
#[derive(Debug)]
pub struct Producer {
    cfg: PcConfig,
    round: u64,
    word: u64,
    state: PState,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PState {
    Writing,
    Fencing,
    Flagging,
    AwaitAck,
    PollBackoff,
    Done,
}

impl Producer {
    /// Creates the producer side.
    pub fn new(cfg: PcConfig) -> Self {
        Producer {
            cfg,
            round: 0,
            word: 0,
            state: PState::Writing,
        }
    }

    fn flag_va(&self) -> VAddr {
        self.cfg.flag.va(0)
    }
    fn ack_va(&self) -> VAddr {
        self.cfg.ack.va(0)
    }
}

impl Process for Producer {
    fn resume(&mut self, r: Resume) -> Action {
        loop {
            match self.state {
                PState::Writing => {
                    if self.word < self.cfg.words {
                        let w = self.word;
                        self.word += 1;
                        // Distinct value per (round, word) for verification.
                        return Action::Write(
                            self.cfg.data.va(w * 8),
                            (self.round + 1) * 10_000 + w,
                        );
                    }
                    self.word = 0;
                    self.state = if self.cfg.fence {
                        PState::Fencing
                    } else {
                        PState::Flagging
                    };
                }
                PState::Fencing => {
                    self.state = PState::Flagging;
                    return Action::Fence;
                }
                PState::Flagging => {
                    self.state = PState::AwaitAck;
                    return Action::Write(self.flag_va(), self.round + 1);
                }
                PState::AwaitAck => {
                    // Spin on the local ack word.
                    if let Resume::Value(v) = r {
                        if v == self.round + 1 {
                            self.round += 1;
                            if self.round == self.cfg.rounds {
                                self.state = PState::Done;
                                continue;
                            }
                            self.state = PState::Writing;
                            continue;
                        }
                        self.state = PState::PollBackoff;
                        return Action::Compute(self.cfg.poll);
                    }
                    return Action::Read(self.ack_va());
                }
                PState::PollBackoff => {
                    self.state = PState::AwaitAck;
                    return Action::Read(self.ack_va());
                }
                PState::Done => return Action::Halt,
            }
        }
    }
}

/// The consumer: spin on the flag, read the round's data, ack.
#[derive(Debug)]
pub struct Consumer {
    cfg: PcConfig,
    round: u64,
    word: u64,
    state: CState,
    /// Sum of all data values read (cheap end-to-end checksum).
    pub checksum: u64,
    /// Stale reads observed (value from an older round).
    pub stale_reads: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CState {
    PollFlag,
    PollBackoff,
    Reading,
    Acking,
    Done,
}

impl Consumer {
    /// Creates the consumer side.
    pub fn new(cfg: PcConfig) -> Self {
        Consumer {
            cfg,
            round: 0,
            word: 0,
            state: CState::PollFlag,
            checksum: 0,
            stale_reads: 0,
        }
    }
}

impl Process for Consumer {
    fn resume(&mut self, r: Resume) -> Action {
        loop {
            match self.state {
                CState::PollFlag => {
                    if let Resume::Value(v) = r {
                        if v > self.round {
                            // Flag set: issue the first data read.
                            self.state = CState::Reading;
                            self.word = 0;
                            return Action::Read(self.cfg.data.va(0));
                        }
                        self.state = CState::PollBackoff;
                        return Action::Compute(self.cfg.poll);
                    }
                    return Action::Read(self.cfg.flag.va(0));
                }
                CState::PollBackoff => {
                    self.state = CState::PollFlag;
                    // Issue the poll read; the next resume carries it.
                    return Action::Read(self.cfg.flag.va(0));
                }
                CState::Reading => {
                    // Every resume here carries a data value for word
                    // `self.word`.
                    let v = r.value();
                    self.checksum = self.checksum.wrapping_add(v);
                    let expect_round = (self.round + 1) * 10_000;
                    if v < expect_round {
                        self.stale_reads += 1;
                    }
                    self.word += 1;
                    if self.word < self.cfg.words {
                        let w = self.word;
                        return Action::Read(self.cfg.data.va(w * 8));
                    }
                    self.word = 0;
                    self.state = CState::Acking;
                }
                CState::Acking => {
                    self.state = if self.round + 1 == self.cfg.rounds {
                        CState::Done
                    } else {
                        CState::PollFlag
                    };
                    let ack = self.round + 1;
                    self.round += 1;
                    return Action::Write(self.cfg.ack.va(0), ack);
                }
                CState::Done => return Action::Halt,
            }
        }
    }
}

/// Migratory sharing: nodes take turns (token passing) performing `burst`
/// read-modify-write pairs on the data page — the §2.3.6 pattern where
/// invalidate-based coherence shines and eager updates waste traffic.
#[derive(Debug)]
pub struct Migratory {
    /// Data page.
    data: SharedPage,
    /// Token page (plain, spun on remotely or locally depending on home).
    token: SharedPage,
    me: u64,
    parties: u64,
    turns: u64,
    burst: u64,
    poll: SimTime,
    turn: u64,
    step: u64,
    state: MState,
    pending_val: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MState {
    PollToken,
    Backoff,
    Read,
    Write,
    Pass,
    Done,
}

impl Migratory {
    /// Creates one migratory participant (`me` of `parties`), each taking
    /// `turns` turns of `burst` read-modify-writes.
    ///
    /// # Panics
    ///
    /// Panics if the participant index is out of range.
    pub fn new(
        data: SharedPage,
        token: SharedPage,
        me: u64,
        parties: u64,
        turns: u64,
        burst: u64,
        poll: SimTime,
    ) -> Self {
        assert!(me < parties, "participant out of range");
        Migratory {
            data,
            token,
            me,
            parties,
            turns,
            burst,
            poll,
            turn: 0,
            step: 0,
            state: MState::PollToken,
            pending_val: 0,
        }
    }

    fn my_token(&self) -> u64 {
        self.turn * self.parties + self.me
    }
}

impl Process for Migratory {
    fn resume(&mut self, r: Resume) -> Action {
        loop {
            match self.state {
                MState::PollToken => {
                    if let Resume::Value(v) = r {
                        if v == self.my_token() {
                            self.state = MState::Read;
                            continue;
                        }
                        self.state = MState::Backoff;
                        return Action::Compute(self.poll);
                    }
                    return Action::Read(self.token.va(0));
                }
                MState::Backoff => {
                    self.state = MState::PollToken;
                    return Action::Read(self.token.va(0));
                }
                MState::Read => {
                    self.state = MState::Write;
                    let w = self.step % 64;
                    return Action::Read(self.data.va(w * 8));
                }
                MState::Write => {
                    self.pending_val = r.value().wrapping_add(1);
                    let w = self.step % 64;
                    self.step += 1;
                    self.state = if self.step.is_multiple_of(self.burst) {
                        MState::Pass
                    } else {
                        MState::Read
                    };
                    return Action::Write(self.data.va(w * 8), self.pending_val);
                }
                MState::Pass => {
                    self.turn += 1;
                    self.state = if self.turn == self.turns {
                        MState::Done
                    } else {
                        MState::PollToken
                    };
                    // Pass the token to the next party for this round.
                    let next = (self.turn - 1) * self.parties + self.me + 1;
                    return Action::Write(self.token.va(0), next);
                }
                MState::Done => return Action::Halt,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::{NodeId, PageNum};

    fn sp(i: u64, home: u16) -> SharedPage {
        SharedPage {
            index: i,
            home: NodeId::new(home),
            home_page: PageNum::new(i as u32),
        }
    }

    fn cfg() -> PcConfig {
        PcConfig {
            data: sp(0, 0),
            flag: sp(1, 1),
            ack: sp(2, 0),
            words: 2,
            rounds: 2,
            poll: SimTime::from_us(1),
            fence: true,
        }
    }

    #[test]
    fn producer_writes_then_fences_then_flags() {
        let mut p = Producer::new(cfg());
        assert!(matches!(p.resume(Resume::Start), Action::Write(_, 10_000)));
        assert!(matches!(p.resume(Resume::Done), Action::Write(_, 10_001)));
        assert_eq!(p.resume(Resume::Done), Action::Fence);
        assert_eq!(p.resume(Resume::Done), Action::Write(cfg().flag.va(0), 1));
        // Then it polls the ack word.
        assert!(matches!(p.resume(Resume::Done), Action::Read(_)));
    }

    #[test]
    fn producer_without_fence_skips_it() {
        let mut p = Producer::new(PcConfig {
            fence: false,
            words: 1,
            ..cfg()
        });
        let _ = p.resume(Resume::Start);
        assert_eq!(p.resume(Resume::Done), Action::Write(cfg().flag.va(0), 1));
    }

    #[test]
    fn consumer_polls_reads_acks() {
        let mut c = Consumer::new(cfg());
        assert!(matches!(c.resume(Resume::Start), Action::Read(_))); // poll
                                                                     // Flag not set yet.
        assert!(matches!(c.resume(Resume::Value(0)), Action::Compute(_)));
        assert!(matches!(c.resume(Resume::Done), Action::Read(_))); // re-poll
                                                                    // Flag set: the transition itself issues the word-0 read.
        assert!(matches!(c.resume(Resume::Value(1)), Action::Read(_)));
        assert!(matches!(c.resume(Resume::Value(10_000)), Action::Read(_)));
        // Ack after the last word.
        assert_eq!(
            c.resume(Resume::Value(10_001)),
            Action::Write(cfg().ack.va(0), 1)
        );
        assert_eq!(c.checksum, 20_001);
        assert_eq!(c.stale_reads, 0);
    }

    #[test]
    fn consumer_detects_stale_values() {
        let mut c = Consumer::new(PcConfig {
            words: 1,
            rounds: 1,
            ..cfg()
        });
        let _ = c.resume(Resume::Start);
        let _ = c.resume(Resume::Value(1)); // flag set -> read
        let a = c.resume(Resume::Value(3)); // stale: < 10_000
        assert!(matches!(a, Action::Write(..)));
        assert_eq!(c.stale_reads, 1);
    }

    #[test]
    fn migratory_runs_its_turn_then_passes() {
        let mut m = Migratory::new(sp(0, 0), sp(1, 0), 0, 2, 1, 2, SimTime::from_us(1));
        assert!(matches!(m.resume(Resume::Start), Action::Read(_))); // token poll
        assert!(matches!(m.resume(Resume::Value(0)), Action::Read(_))); // data read
        assert!(matches!(m.resume(Resume::Value(5)), Action::Write(_, 6)));
        assert!(matches!(m.resume(Resume::Done), Action::Read(_)));
        assert!(matches!(m.resume(Resume::Value(9)), Action::Write(_, 10)));
        // Burst of 2 done: pass token (value 1 = turn 0, party 1).
        assert_eq!(m.resume(Resume::Done), Action::Write(sp(1, 0).va(0), 1));
        assert_eq!(m.resume(Resume::Done), Action::Halt);
    }

    #[test]
    fn migratory_waits_for_its_token() {
        let mut m = Migratory::new(sp(0, 0), sp(1, 0), 1, 2, 1, 1, SimTime::from_us(1));
        let _ = m.resume(Resume::Start);
        // Token 0 belongs to party 0; party 1 backs off.
        assert!(matches!(m.resume(Resume::Value(0)), Action::Compute(_)));
        let _ = m.resume(Resume::Done); // re-poll issued
        assert!(matches!(m.resume(Resume::Value(1)), Action::Read(_))); // our turn
    }
}
