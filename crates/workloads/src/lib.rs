//! # tg-workloads — workload generators for the Telegraphos experiments
//!
//! Parameterized simulated applications exercising the access patterns the
//! paper's evaluation and motivation discuss: streaming remote writes
//! (§3.2), hot-page readers (§2.2.6), producer/consumer rounds (§2.2.7,
//! §2.3.6), migratory read-modify-write phases (§2.3.6), scattered
//! coherent writes for the counter-CAM sizing question (§2.3.4), and
//! message-passing round trips for the OS-trap baseline.
//!
//! Simple access streams are built as [`Script`](telegraphos::Script)s;
//! the reactive workloads
//! (handshake-driven producer/consumer, token-passing migratory phases)
//! implement [`Process`](telegraphos::Process) directly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod phased;
mod scripts;
mod stencil;
mod trace;

pub use phased::{Consumer, Migratory, PcConfig, Producer};
pub use scripts::{
    bursty_scatter, hot_page_reader, message_ping, message_pong, scatter_writes, stream_reads,
    stream_writes, uniform_mixed,
};
pub use stencil::{jacobi_reference, JacobiShared, JacobiWorker};
pub use trace::{synthetic_trace, TraceConfig};
