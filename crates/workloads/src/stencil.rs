//! A distributed 1-D Jacobi stencil — the style of "engineering design and
//! simulation" application the paper's introduction motivates.
//!
//! The grid is strip-partitioned across the workstations. Each node keeps
//! its strip privately and publishes its two edge cells on a small
//! *boundary page* that is eager-update-multicast (§2.2.7) to its
//! neighbors, so every boundary read is a local access. Iterations are
//! separated by the fence-embedding sense-reversing barrier (§2.3.5).

use telegraphos::sync::{BarrierWait, SyncStep};
use telegraphos::{Action, Process, Resume, SharedPage};
use tg_mem::VAddr;
use tg_sim::SimTime;

/// Integer Jacobi update: the new cell is the floor-average of its
/// neighbors.
fn relax(left: u64, right: u64) -> u64 {
    (left + right) / 2
}

/// Sequential reference: `iters` Jacobi sweeps over `initial` with fixed
/// boundary values.
pub fn jacobi_reference(initial: &[u64], iters: u32, left_bc: u64, right_bc: u64) -> Vec<u64> {
    let mut cur = initial.to_vec();
    let n = cur.len();
    for _ in 0..iters {
        let mut next = vec![0u64; n];
        for i in 0..n {
            let l = if i == 0 { left_bc } else { cur[i - 1] };
            let r = if i + 1 == n { right_bc } else { cur[i + 1] };
            next[i] = relax(l, r);
        }
        cur = next;
    }
    cur
}

/// Shared coordination pages for a Jacobi run.
#[derive(Clone, Copy, Debug)]
pub struct JacobiShared {
    /// This node's boundary page (word 0 = left edge, word 1 = right edge),
    /// eager-mapped to the neighbors.
    pub my_boundary: SharedPage,
    /// Left neighbor's boundary page (read word 1), if any.
    pub left_boundary: Option<SharedPage>,
    /// Right neighbor's boundary page (read word 0), if any.
    pub right_boundary: Option<SharedPage>,
    /// This node's result page: the final strip is written here.
    pub result: SharedPage,
    /// Barrier counter word.
    pub barrier_counter: VAddr,
    /// Barrier sense word.
    pub barrier_sense: VAddr,
}

/// One strip worker.
#[derive(Debug)]
pub struct JacobiWorker {
    shared: JacobiShared,
    parties: u64,
    iters: u32,
    left_bc: u64,
    right_bc: u64,
    strip: Vec<u64>,
    cell_cost: SimTime,
    iter: u32,
    /// Barrier episodes completed (two per iteration: after publish, after
    /// the edge reads).
    episode: u32,
    state: JState,
    barrier: Option<BarrierWait>,
    left_edge_in: u64,
    right_edge_in: u64,
    write_back: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JState {
    PublishLeft,
    PublishRight,
    PublishFence,
    EnterBarrier,
    Barrier,
    ReadLeft,
    ReadRight,
    EnterReadBarrier,
    ReadBarrier,
    Compute,
    WriteResults,
    Done,
}

impl JacobiWorker {
    /// Creates the worker for one strip. `left_bc`/`right_bc` are the
    /// boundary values seen by the outermost strips (inner strips receive
    /// them from neighbors).
    ///
    /// # Panics
    ///
    /// Panics if the strip is empty.
    pub fn new(
        shared: JacobiShared,
        parties: u64,
        iters: u32,
        strip: Vec<u64>,
        left_bc: u64,
        right_bc: u64,
    ) -> Self {
        assert!(!strip.is_empty(), "strip must hold at least one cell");
        JacobiWorker {
            shared,
            parties,
            iters,
            left_bc,
            right_bc,
            strip,
            cell_cost: SimTime::from_ns(100),
            iter: 0,
            episode: 0,
            state: JState::PublishLeft,
            barrier: None,
            left_edge_in: 0,
            right_edge_in: 0,
            write_back: 0,
        }
    }

    fn arm_barrier(&mut self) {
        // Sense reverses every episode; two episodes per iteration.
        let my_sense = u64::from(self.episode % 2 == 1);
        self.episode += 1;
        self.barrier = Some(BarrierWait::new(
            self.shared.barrier_counter,
            self.shared.barrier_sense,
            self.parties,
            my_sense,
        ));
    }
}

impl Process for JacobiWorker {
    fn resume(&mut self, r: Resume) -> Action {
        loop {
            match self.state {
                JState::PublishLeft => {
                    self.state = JState::PublishRight;
                    return Action::Write(self.shared.my_boundary.va(0), self.strip[0]);
                }
                JState::PublishRight => {
                    self.state = JState::PublishFence;
                    let last = *self.strip.last().expect("non-empty strip");
                    return Action::Write(self.shared.my_boundary.va(8), last);
                }
                JState::PublishFence => {
                    self.state = JState::EnterBarrier;
                    return Action::Fence;
                }
                JState::EnterBarrier => {
                    self.arm_barrier();
                    self.state = JState::Barrier;
                    match self.barrier.as_mut().expect("armed").step(Resume::Start) {
                        SyncStep::Do(a) => return a,
                        SyncStep::Ready => unreachable!("barrier cannot be instant"),
                    }
                }
                JState::Barrier => match self.barrier.as_mut().expect("armed").step(r) {
                    SyncStep::Do(a) => return a,
                    SyncStep::Ready => {
                        if self.iter == self.iters {
                            self.state = JState::WriteResults;
                            self.write_back = 0;
                            continue;
                        }
                        self.state = JState::ReadLeft;
                    }
                },
                JState::ReadLeft => {
                    self.state = JState::ReadRight;
                    match self.shared.left_boundary {
                        // Neighbor's right edge is its boundary word 1.
                        Some(p) => return Action::Read(p.va(8)),
                        None => {
                            self.left_edge_in = self.left_bc;
                            continue;
                        }
                    }
                }
                JState::ReadRight => {
                    if self.shared.left_boundary.is_some() {
                        self.left_edge_in = r.value();
                    }
                    self.state = JState::EnterReadBarrier;
                    match self.shared.right_boundary {
                        Some(p) => return Action::Read(p.va(0)),
                        None => {
                            self.right_edge_in = self.right_bc;
                            continue;
                        }
                    }
                }
                JState::EnterReadBarrier => {
                    if self.shared.right_boundary.is_some() {
                        self.right_edge_in = r.value();
                    }
                    // Second barrier: nobody may republish edges until every
                    // node has captured this iteration's values.
                    self.arm_barrier();
                    self.state = JState::ReadBarrier;
                    match self.barrier.as_mut().expect("armed").step(Resume::Start) {
                        SyncStep::Do(a) => return a,
                        SyncStep::Ready => unreachable!("barrier cannot be instant"),
                    }
                }
                JState::ReadBarrier => match self.barrier.as_mut().expect("armed").step(r) {
                    SyncStep::Do(a) => return a,
                    SyncStep::Ready => {
                        self.state = JState::Compute;
                        continue;
                    }
                },
                JState::Compute => {
                    // One Jacobi sweep over the strip.
                    let n = self.strip.len();
                    let next: Vec<u64> = (0..n)
                        .map(|i| {
                            let l = if i == 0 {
                                self.left_edge_in
                            } else {
                                self.strip[i - 1]
                            };
                            let rr = if i + 1 == n {
                                self.right_edge_in
                            } else {
                                self.strip[i + 1]
                            };
                            relax(l, rr)
                        })
                        .collect();
                    self.strip = next;
                    self.iter += 1;
                    self.state = JState::PublishLeft;
                    return Action::Compute(self.cell_cost * self.strip.len() as u64);
                }
                JState::WriteResults => {
                    if self.write_back < self.strip.len() {
                        let i = self.write_back;
                        self.write_back += 1;
                        return Action::Write(self.shared.result.va(i as u64 * 8), self.strip[i]);
                    }
                    self.state = JState::Done;
                    return Action::Fence;
                }
                JState::Done => return Action::Halt,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_fixed_point_of_constant_field() {
        // A constant field with matching boundaries is a fixed point.
        let field = vec![5u64; 8];
        let out = jacobi_reference(&field, 10, 5, 5);
        assert_eq!(out, field);
    }

    #[test]
    fn reference_diffuses_toward_boundaries() {
        // Zero field between hot boundaries warms up monotonically.
        let out1 = jacobi_reference(&[0, 0, 0, 0], 1, 100, 100);
        assert_eq!(out1, vec![50, 0, 0, 50]);
        let out2 = jacobi_reference(&[0, 0, 0, 0], 2, 100, 100);
        assert_eq!(out2, vec![50, 25, 25, 50]);
        let far = jacobi_reference(&[0, 0, 0, 0], 200, 100, 100);
        // Long-run: interior approaches the boundary value (integer floor).
        assert!(far.iter().all(|&v| v >= 90), "{far:?}");
    }

    #[test]
    fn reference_zero_iters_is_identity() {
        let field = vec![1, 2, 3];
        assert_eq!(jacobi_reference(&field, 0, 9, 9), field);
    }
}
