//! Script-style access streams.

use telegraphos::{Action, Script, SharedPage};
use tg_sim::{SimRng, SimTime};
use tg_wire::{NodeId, PAGE_WORDS};

/// `n` remote/shared writes striding word-by-word across the page (the
/// §3.2 write measurement).
pub fn stream_writes(page: &SharedPage, n: u64) -> Script {
    Script::new(
        (0..n)
            .map(|i| Action::Write(page.va((i % PAGE_WORDS) * 8), i + 1))
            .collect(),
    )
}

/// `n` blocking reads striding across the page (the §3.2 read
/// measurement).
pub fn stream_reads(page: &SharedPage, n: u64) -> Script {
    Script::new(
        (0..n)
            .map(|i| Action::Read(page.va((i % PAGE_WORDS) * 8)))
            .collect(),
    )
}

/// A reader that hammers one page with `think` time between accesses — the
/// hot-page pattern that page-access counters are meant to catch (§2.2.6).
pub fn hot_page_reader(page: &SharedPage, reads: u64, think: SimTime) -> Script {
    let mut actions = Vec::with_capacity(2 * reads as usize);
    for i in 0..reads {
        actions.push(Action::Read(page.va((i % 16) * 8)));
        if !think.is_zero() {
            actions.push(Action::Compute(think));
        }
    }
    Script::new(actions)
}

/// Round-robin writes over `distinct_words` different words of a page —
/// on a coherent replica this is the worst case for the pending-write CAM,
/// since each word needs its own counter entry (§2.3.4 / experiment E7).
pub fn scatter_writes(page: &SharedPage, distinct_words: u64, writes: u64) -> Script {
    assert!(distinct_words > 0 && distinct_words <= PAGE_WORDS);
    Script::new(
        (0..writes)
            .map(|i| Action::Write(page.va((i % distinct_words) * 8), i + 1))
            .collect(),
    )
}

/// Bursts of scattered coherent writes separated by drain pauses: `bursts`
/// rounds of `burst` back-to-back writes over `distinct_words` words, with
/// `pause` of compute in between. The peak number of pending writes —
/// and so the CAM pressure (§2.3.4) — is set by `burst`.
pub fn bursty_scatter(
    page: &SharedPage,
    distinct_words: u64,
    burst: u64,
    pause: SimTime,
    bursts: u64,
) -> Script {
    assert!(distinct_words > 0 && distinct_words <= PAGE_WORDS);
    let mut actions = Vec::new();
    let mut v = 1;
    for _ in 0..bursts {
        for k in 0..burst {
            actions.push(Action::Write(
                page.va(((v + k) % distinct_words) * 8),
                v + k,
            ));
        }
        v += burst;
        actions.push(Action::Compute(pause));
    }
    Script::new(actions)
}

/// A seeded mix of reads and writes uniformly spread over several pages.
pub fn uniform_mixed(pages: &[SharedPage], ops: u64, write_fraction: f64, seed: u64) -> Script {
    assert!(!pages.is_empty(), "need at least one page");
    let mut rng = SimRng::new(seed);
    let actions = (0..ops)
        .map(|i| {
            let page = &pages[rng.range(pages.len() as u64) as usize];
            let va = page.va(rng.range(PAGE_WORDS) * 8);
            if rng.chance(write_fraction) {
                Action::Write(va, i + 1)
            } else {
                Action::Read(va)
            }
        })
        .collect();
    Script::new(actions)
}

/// The messaging baseline's ping side: send `bytes`, wait for the echo,
/// `rounds` times.
pub fn message_ping(peer: NodeId, bytes: u32, rounds: u32) -> Script {
    let mut actions = Vec::new();
    for r in 0..rounds {
        actions.push(Action::Send {
            dst: peer,
            bytes,
            tag: 2 * r,
        });
        actions.push(Action::Recv { tag: 2 * r + 1 });
    }
    Script::new(actions)
}

/// The echo side of [`message_ping`].
pub fn message_pong(peer: NodeId, bytes: u32, rounds: u32) -> Script {
    let mut actions = Vec::new();
    for r in 0..rounds {
        actions.push(Action::Recv { tag: 2 * r });
        actions.push(Action::Send {
            dst: peer,
            bytes,
            tag: 2 * r + 1,
        });
    }
    Script::new(actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telegraphos::{Process, Resume};
    use tg_wire::PageNum;

    fn page() -> SharedPage {
        SharedPage {
            index: 0,
            home: NodeId::new(1),
            home_page: PageNum::new(0),
        }
    }

    #[test]
    fn stream_writes_covers_the_page() {
        let mut s = stream_writes(&page(), 3);
        assert_eq!(s.resume(Resume::Start), Action::Write(page().va(0), 1));
        assert_eq!(s.resume(Resume::Done), Action::Write(page().va(8), 2));
        assert_eq!(s.resume(Resume::Done), Action::Write(page().va(16), 3));
        assert_eq!(s.resume(Resume::Done), Action::Halt);
    }

    #[test]
    fn stream_wraps_within_the_page() {
        let mut s = stream_writes(&page(), PAGE_WORDS + 1);
        let first = s.resume(Resume::Start);
        for _ in 0..PAGE_WORDS {
            let a = s.resume(Resume::Done);
            if let Action::Write(va, _) = a {
                assert!(va.bits() < page().va(0).bits() + 8192);
            }
        }
        assert_eq!(
            match first {
                Action::Write(va, _) => va,
                other => panic!("{other:?}"),
            },
            page().va(0)
        );
    }

    #[test]
    fn hot_reader_interleaves_think_time() {
        let mut s = hot_page_reader(&page(), 2, SimTime::from_us(1));
        assert!(matches!(s.resume(Resume::Start), Action::Read(_)));
        assert!(matches!(s.resume(Resume::Value(0)), Action::Compute(_)));
        assert!(matches!(s.resume(Resume::Done), Action::Read(_)));
    }

    #[test]
    fn scatter_cycles_distinct_words() {
        let mut s = scatter_writes(&page(), 2, 4);
        let vas: Vec<_> = (0..4)
            .map(|i| {
                let r = if i == 0 { Resume::Start } else { Resume::Done };
                match s.resume(r) {
                    Action::Write(va, _) => va,
                    other => panic!("{other:?}"),
                }
            })
            .collect();
        assert_eq!(vas[0], vas[2]);
        assert_eq!(vas[1], vas[3]);
        assert_ne!(vas[0], vas[1]);
    }

    #[test]
    fn uniform_mixed_is_seeded() {
        let pages = [page()];
        let a: Vec<Action> = drain(uniform_mixed(&pages, 20, 0.5, 7));
        let b: Vec<Action> = drain(uniform_mixed(&pages, 20, 0.5, 7));
        let c: Vec<Action> = drain(uniform_mixed(&pages, 20, 0.5, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    fn drain(mut s: Script) -> Vec<Action> {
        let mut out = Vec::new();
        let mut r = Resume::Start;
        loop {
            let a = s.resume(r);
            if a == Action::Halt {
                return out;
            }
            r = match a {
                Action::Read(_) => Resume::Value(0),
                _ => Resume::Done,
            };
            out.push(a);
        }
    }

    #[test]
    fn ping_pong_tags_pair_up() {
        let mut ping = message_ping(NodeId::new(1), 64, 2);
        let mut pong = message_pong(NodeId::new(0), 64, 2);
        assert!(matches!(
            ping.resume(Resume::Start),
            Action::Send { tag: 0, .. }
        ));
        assert!(matches!(
            pong.resume(Resume::Start),
            Action::Recv { tag: 0 }
        ));
        assert!(matches!(ping.resume(Resume::Done), Action::Recv { tag: 1 }));
        assert!(matches!(
            pong.resume(Resume::Value(64)),
            Action::Send { tag: 1, .. }
        ));
    }
}
