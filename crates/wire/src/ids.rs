//! Cluster-wide identifiers.

use std::fmt;

/// Identifier of a workstation node in the cluster.
///
/// The paper encodes the destination node in "the highest order bits of each
/// physical address" seen on the TurboChannel; `tg-mem` performs that
/// encoding, and everything else passes `NodeId`s around.
///
/// # Example
///
/// ```
/// use tg_wire::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from its cluster index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The raw cluster index.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The cluster index as a `usize`, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let n = NodeId::new(42);
        assert_eq!(n.raw(), 42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u16), n);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
