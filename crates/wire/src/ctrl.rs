//! Link-layer control frames: acks, nacks and the credit-resync
//! handshake as first-class wire traffic.
//!
//! Until reliability round 2 these travelled as bare engine events that
//! the fault injector could not touch — the classic "the control plane
//! is assumed incorruptible" shortcut. Real NIC link layers cannot make
//! that assumption, so control messages now ride in a [`CtrlFrame`]
//! carrying its own checksum: the injector may drop or bit-flip them
//! like any data frame, and receivers discard frames whose checksum no
//! longer verifies (counting the discard so trace reconciliation stays
//! exact).
//!
//! Control frames carry no payload words; their loss is recovered by
//! the sender-side machinery (retransmit timers regenerate acks via
//! nack/timeout, the resync handshake re-probes with a fresh token), so
//! a discard never needs a control-plane retransmit of its own.

use std::hash::{Hash, Hasher};

use crate::ids::NodeId;
use crate::msg::Fnv1a;

/// The control-plane message set of the link-level reliability
/// protocol. Everything a reliable hop sends that is not a data frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtrlMsg {
    /// Cumulative acknowledgement: every frame with `link_seq <= seq`
    /// arrived. `sack` is the selective-ack bitmap relative to `seq`:
    /// bit `i` set means frame `seq + 1 + i` is buffered out of order
    /// at the receiver. Bit 0 is always clear — frame `seq + 1` is by
    /// definition the one still missing. Always zero in go-back-N mode.
    Ack {
        /// Highest in-order sequence number received.
        seq: u64,
        /// Out-of-order receipt bitmap relative to `seq` (SACK mode).
        sack: u64,
    },
    /// Negative acknowledgement: the receiver is missing `expected`
    /// (sequence gap or corrupt frame). Carries the same selective-ack
    /// bitmap as [`CtrlMsg::Ack`], relative to `expected - 1`.
    Nack {
        /// The sequence number the receiver needs next.
        expected: u64,
        /// Out-of-order receipt bitmap relative to `expected - 1`.
        sack: u64,
    },
    /// Credit-resync probe: "how many frames have you drained?".
    /// Idempotent — a pure read of the receiver's monotone drain
    /// counter, so duplicates and stale retries are harmless.
    SyncReq {
        /// Probe token matching request to reply.
        token: u64,
    },
    /// Credit-resync reply carrying the receiver's drain counter.
    SyncAck {
        /// Token of the probe being answered.
        token: u64,
        /// Total frames the receiver has drained from its FIFO.
        drained: u64,
    },
    /// Liveness beacon originated by a workstation HIB and flooded by
    /// switches out every port except the ingress (per-origin sequence
    /// numbers dedupe the flood on cyclic topologies). Heartbeats are
    /// ordinary control traffic: the fault injector drops them on links
    /// into a crashed fault domain, which is exactly how silence — and
    /// therefore failure detection — propagates.
    Heartbeat {
        /// The workstation that originated this beacon.
        origin: NodeId,
        /// Monotone per-origin beacon number (dedupes flood copies).
        seq: u64,
    },
    /// Link-epoch reset, sent by a transmit port reviving after its
    /// peer was declared dead and came back: "forget everything before
    /// `next`". The receiver reseats its expected sequence number at
    /// `next`, flushes any parked reorder frames, and zeroes its drain
    /// counter so post-revival credit resyncs account only the new
    /// epoch. Idempotent: re-applying the same reset is harmless.
    Reset {
        /// The first link sequence number of the new epoch.
        next: u64,
    },
}

impl CtrlMsg {
    /// A short label for traces and diagnostics.
    pub fn kind_str(&self) -> &'static str {
        match self {
            CtrlMsg::Ack { .. } => "ack",
            CtrlMsg::Nack { .. } => "nack",
            CtrlMsg::SyncReq { .. } => "sync-req",
            CtrlMsg::SyncAck { .. } => "sync-ack",
            CtrlMsg::Heartbeat { .. } => "heartbeat",
            CtrlMsg::Reset { .. } => "reset",
        }
    }
}

/// A sealed control frame: a [`CtrlMsg`] plus its wire checksum.
///
/// Constructed with [`CtrlFrame::seal`]; receivers must check
/// [`CtrlFrame::checksum_ok`] before acting and discard (never act on)
/// frames that fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrlFrame {
    /// The control message carried by the frame.
    pub msg: CtrlMsg,
    /// FNV-1a checksum over the message, folded to 32 bits (never 0,
    /// low bit always set — the same fold as data frames).
    pub checksum: u32,
}

impl CtrlFrame {
    /// Seals `msg` into a checksummed frame.
    pub fn seal(msg: CtrlMsg) -> Self {
        let mut f = CtrlFrame { msg, checksum: 0 };
        f.checksum = f.compute_checksum();
        f
    }

    /// The frame checksum over the message body — same FNV-1a fold as
    /// [`crate::Packet::compute_checksum`].
    pub fn compute_checksum(&self) -> u32 {
        let mut h = Fnv1a::default();
        self.msg.hash(&mut h);
        let v = h.finish();
        (((v >> 32) as u32) ^ (v as u32)) | 1
    }

    /// Verifies the wire checksum.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.compute_checksum()
    }

    /// Flips a checksum bit — the canonical simulated corruption. The
    /// computed checksum always has its low bit set, so flipping bit 0
    /// and bit 31 together guarantees a mismatch.
    pub fn corrupt(&mut self) {
        self.checksum ^= 0x8000_0001;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_frames_verify_and_corruption_is_detected() {
        let msgs = [
            CtrlMsg::Ack {
                seq: 7,
                sack: 0b100,
            },
            CtrlMsg::Nack {
                expected: 3,
                sack: 0,
            },
            CtrlMsg::SyncReq { token: 1 },
            CtrlMsg::SyncAck {
                token: 1,
                drained: 42,
            },
            CtrlMsg::Heartbeat {
                origin: NodeId::new(3),
                seq: 9,
            },
            CtrlMsg::Reset { next: 17 },
        ];
        for msg in msgs {
            let mut f = CtrlFrame::seal(msg);
            assert!(f.checksum_ok(), "{msg:?} fails its own checksum");
            f.corrupt();
            assert!(!f.checksum_ok(), "corrupted {msg:?} still verifies");
            f.corrupt();
            assert!(f.checksum_ok(), "double-flip must restore {msg:?}");
        }
    }

    #[test]
    fn distinct_messages_hash_to_distinct_checksums() {
        let a = CtrlFrame::seal(CtrlMsg::Ack { seq: 1, sack: 0 });
        let b = CtrlFrame::seal(CtrlMsg::Ack { seq: 2, sack: 0 });
        let c = CtrlFrame::seal(CtrlMsg::Ack { seq: 1, sack: 2 });
        assert_ne!(a.checksum, b.checksum);
        assert_ne!(a.checksum, c.checksum);
        assert_eq!(a.checksum & 1, 1, "fold keeps the low bit set");
    }
}
