//! Shared-segment address geometry.
//!
//! Every node exports one *shared segment*: the memory that other nodes may
//! access remotely (Telegraphos I keeps it in SRAM on the HIB board;
//! Telegraphos II carves it out of main memory — a configuration choice, not
//! an addressing one). Wire messages address shared data as a byte offset
//! into the home node's segment; pages are 8 KB as on the DEC Alpha
//! workstations the prototype plugged into.

use std::fmt;

/// Bytes per machine word (Alpha: 64-bit).
pub const WORD_BYTES: u64 = 8;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 13;
/// Bytes per page (8 KB).
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;
/// Words per page.
pub const PAGE_WORDS: u64 = PAGE_BYTES / WORD_BYTES;

/// A byte offset into a node's exported shared segment.
///
/// Offsets are word-aligned whenever they address data; alignment is
/// enforced at the MMU in `tg-mem`, not here.
///
/// # Example
///
/// ```
/// use tg_wire::{GOffset, PageNum, PAGE_BYTES};
/// let off = GOffset::new(PAGE_BYTES * 2 + 24);
/// assert_eq!(off.page(), PageNum::new(2));
/// assert_eq!(off.in_page(), 24);
/// assert_eq!(off.word_index(), PAGE_BYTES / 8 * 2 + 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GOffset(u64);

impl GOffset {
    /// Creates an offset from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        GOffset(bytes)
    }

    /// Builds the offset of byte `in_page` within `page`.
    pub const fn from_page(page: PageNum, in_page: u64) -> Self {
        GOffset((page.0 as u64) * PAGE_BYTES + in_page)
    }

    /// Raw byte offset.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// The page this offset falls in.
    pub const fn page(self) -> PageNum {
        PageNum((self.0 >> PAGE_SHIFT) as u32)
    }

    /// Byte offset within its page.
    pub const fn in_page(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// Word index from the start of the segment (offset / 8).
    pub const fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// True if word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// This offset advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        GOffset(self.0 + bytes)
    }
}

impl fmt::Display for GOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{:#x}", self.0)
    }
}

/// A page number within a node's shared segment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageNum(u32);

impl PageNum {
    /// Creates a page number.
    pub const fn new(n: u32) -> Self {
        PageNum(n)
    }

    /// Raw page index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The index as `usize` for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Byte offset of the start of this page.
    pub const fn base(self) -> GOffset {
        GOffset((self.0 as u64) << PAGE_SHIFT)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(PAGE_BYTES, 8192);
        assert_eq!(PAGE_WORDS, 1024);
        assert_eq!(PAGE_BYTES % WORD_BYTES, 0);
    }

    #[test]
    fn page_decomposition() {
        let off = GOffset::new(3 * PAGE_BYTES + 16);
        assert_eq!(off.page(), PageNum::new(3));
        assert_eq!(off.in_page(), 16);
        assert_eq!(GOffset::from_page(PageNum::new(3), 16), off);
    }

    #[test]
    fn word_index_and_alignment() {
        assert_eq!(GOffset::new(0).word_index(), 0);
        assert_eq!(GOffset::new(8).word_index(), 1);
        assert!(GOffset::new(8).is_word_aligned());
        assert!(!GOffset::new(4).is_word_aligned());
    }

    #[test]
    fn page_base_round_trips() {
        let p = PageNum::new(7);
        assert_eq!(p.base().page(), p);
        assert_eq!(p.base().in_page(), 0);
    }

    #[test]
    fn add_advances() {
        let off = GOffset::new(100).add(28);
        assert_eq!(off.bytes(), 128);
    }
}
