//! # tg-wire — shared vocabulary of the simulated Telegraphos cluster
//!
//! Pure data types exchanged between the subsystem crates: node identifiers,
//! the shared-segment address geometry (8 KB Alpha pages, 64-bit words), the
//! wire-message protocol spoken between Host Interface Boards, network
//! packets with their size model, and the cluster-wide timing calibration.
//!
//! Nothing in this crate has behaviour beyond encoding/decoding and size
//! arithmetic; the state machines live in `tg-net`, `tg-hib`, `tg-proto` and
//! `telegraphos`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod ctrl;
mod ids;
pub mod metric;
mod msg;
mod payload;
mod timing;
pub mod trace;

pub use addr::{GOffset, PageNum, PAGE_BYTES, PAGE_SHIFT, PAGE_WORDS, WORD_BYTES};
pub use ctrl::{CtrlFrame, CtrlMsg};
pub use ids::NodeId;
pub use msg::{AtomicOp, Packet, WireMsg, HEADER_BYTES};
pub use payload::{Payload, PayloadPool};
pub use timing::TimingConfig;
pub use trace::{OpEvent, OpKind, PacketEvent, Probe, SharedProbe, Site, Stage, TraceId};
