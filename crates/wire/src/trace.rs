//! Packet-lifecycle tracing vocabulary.
//!
//! The paper's evaluation (§3.2) is a *breakdown*: where a remote operation
//! spends its microseconds — CPU store, TurboChannel, HIB, link, switch,
//! remote memory. This module defines the shared vocabulary every layer of
//! the simulated cluster uses to report those stages: a [`TraceId`] naming
//! one packet, a [`Stage`] naming one lifecycle point, and a [`Probe`]
//! trait that observability sinks implement.
//!
//! Probes are strictly optional: every hook site holds an
//! `Option<Rc<dyn Probe>>` and compiles down to a single branch when no
//! probe is installed, so the simulation's hot paths pay (nearly) nothing
//! for the instrumentation when it is off.

use std::fmt;
use std::rc::Rc;

use tg_sim::SimTime;

use crate::ids::NodeId;

/// Identity of one traced packet.
///
/// Every [`Packet`](crate::Packet) is already uniquely named by its
/// `(src, inject_seq)` pair — the injecting HIB assigns a per-source
/// sequence number at injection — so the trace id is a stamp derived from
/// fields the packet carries on the wire rather than an extra header byte.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(u64);

impl TraceId {
    /// The trace id of the packet injected by `src` with sequence `seq`.
    pub fn packet(src: NodeId, seq: u64) -> Self {
        debug_assert!(seq < 1 << 48, "inject_seq exceeds the trace-id field");
        TraceId((u64::from(src.raw()) << 48) | (seq & ((1 << 48) - 1)))
    }

    /// Raw packed value (node in the high 16 bits, sequence below).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The injecting node encoded in the id.
    pub fn src(self) -> NodeId {
        NodeId::new((self.0 >> 48) as u16)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.0 >> 48, self.0 & ((1 << 48) - 1))
    }
}

/// Where a lifecycle event was observed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Site {
    /// A workstation (its HIB or CPU side).
    Node(NodeId),
    /// A switch, by fabric index.
    Switch(u16),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Node(n) => write!(f, "node{}", n.raw()),
            Site::Switch(s) => write!(f, "switch{s}"),
        }
    }
}

/// One point in a packet's lifecycle, in causal order along its path.
///
/// The stages map onto the paper's §3.2 cost centers: the TurboChannel
/// latch and HIB transmit queue ([`TxEnqueue`](Stage::TxEnqueue)), HIB
/// processing + link serialization ([`TxLaunch`](Stage::TxLaunch)), switch
/// queueing and arbitration ([`SwitchEnqueue`](Stage::SwitchEnqueue) /
/// [`SwitchTx`](Stage::SwitchTx)), the remote HIB's input FIFO and receive
/// pipeline ([`RxEnqueue`](Stage::RxEnqueue) / [`RxStart`](Stage::RxStart))
/// and the final memory/protocol action ([`Commit`](Stage::Commit)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// The packet entered the injecting HIB's transmit queue (the CPU-side
    /// store has been latched off the TurboChannel).
    TxEnqueue,
    /// The injecting HIB won the link and began serializing the packet.
    TxLaunch,
    /// The packet fully arrived in a switch input FIFO.
    SwitchEnqueue,
    /// The switch's round-robin arbitration picked the packet and launched
    /// it on its output port.
    SwitchTx,
    /// The packet fully arrived in the destination HIB's input FIFO.
    RxEnqueue,
    /// The destination HIB's receive pipeline started processing it.
    RxStart,
    /// The destination HIB finished the packet: memory committed, protocol
    /// action applied, or completion consumed (acks/responses).
    Commit,
    /// The frame was lost or discarded on a link hop: dropped in flight by
    /// an injected fault, or discarded by the receiving link layer on a
    /// checksum/sequence violation. Link-level retransmission recovers it.
    Dropped,
    /// The transmitting port re-sent the frame from its retransmit buffer
    /// (timeout or NACK driven).
    Retransmit,
    /// The transmitting port completed a credit-resync handshake with its
    /// neighbor after losing credits.
    CreditResync,
    /// The packet is at the head of a transmit queue but the port has no
    /// credits: a stall window opened. Emitted once per window (the window
    /// closes when a credit arrives), so attribution can classify the
    /// queue time that follows as credit-stall rather than arbitration.
    CreditStall,
    /// A node's failure detector declared a peer dead (heartbeat silence
    /// exceeded the phi/timeout threshold). The trace id encodes the
    /// *declared-dead peer* and the per-observer verdict count; the site
    /// is the observing node. `simtrace --check` reconciles these
    /// verdicts against the fault plan's crash/outage windows.
    PeerDown,
    /// A node's failure detector saw heartbeats resume from a peer it
    /// had declared dead. Same id/site convention as
    /// [`Stage::PeerDown`].
    PeerUp,
}

impl Stage {
    /// Stable label used by exporters and reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::TxEnqueue => "tx-enqueue",
            Stage::TxLaunch => "tx-launch",
            Stage::SwitchEnqueue => "switch-enqueue",
            Stage::SwitchTx => "switch-tx",
            Stage::RxEnqueue => "rx-enqueue",
            Stage::RxStart => "rx-start",
            Stage::Commit => "commit",
            Stage::Dropped => "dropped",
            Stage::Retransmit => "retransmit",
            Stage::CreditResync => "credit-resync",
            Stage::CreditStall => "credit-stall",
            Stage::PeerDown => "peer-down",
            Stage::PeerUp => "peer-up",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One timestamped packet-lifecycle observation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketEvent {
    /// Simulated instant of the observation.
    pub at: SimTime,
    /// The observed packet.
    pub trace: TraceId,
    /// The packet this one was sent in response to, when known (set on the
    /// injection event of acks, read responses, atomic responses and
    /// reflected writes, which lets collectors chain request → response).
    pub parent: Option<TraceId>,
    /// Where the event was observed.
    pub site: Site,
    /// Which lifecycle point.
    pub stage: Stage,
    /// Message kind (stable label from [`WireMsg::kind_str`]).
    ///
    /// [`WireMsg::kind_str`]: crate::WireMsg::kind_str
    pub kind: &'static str,
    /// Total bytes on the wire.
    pub bytes: u32,
}

/// CPU-observed operation classes, mirroring the per-node latency
/// summaries the cluster already keeps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Blocking remote (window) read.
    RemoteRead,
    /// Non-blocking remote (window) write.
    RemoteWrite,
    /// Local shared-segment read.
    LocalRead,
    /// Local shared-segment write (incl. replica/owned/eager pages).
    LocalWrite,
    /// Atomic operation (full launch sequence).
    Atomic,
    /// Remote-copy launch.
    Copy,
    /// FENCE stall.
    Fence,
    /// OS message send.
    Send,
    /// OS message receive.
    Recv,
}

impl OpKind {
    /// Stable label used by exporters and reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::RemoteRead => "remote-read",
            OpKind::RemoteWrite => "remote-write",
            OpKind::LocalRead => "local-read",
            OpKind::LocalWrite => "local-write",
            OpKind::Atomic => "atomic",
            OpKind::Copy => "copy",
            OpKind::Fence => "fence",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One completed CPU-visible operation, as the issuing node observed it.
///
/// `end - start` is exactly the latency the node's per-class summaries
/// record, so collectors can reconcile per-stage breakdowns against the
/// end-to-end numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpEvent {
    /// The issuing node.
    pub node: NodeId,
    /// Operation class.
    pub kind: OpKind,
    /// When the CPU issued the operation.
    pub start: SimTime,
    /// When the CPU observed completion.
    pub end: SimTime,
    /// Trace id of the request packet this operation injected, when one
    /// was injected and could be attributed.
    pub trace: Option<TraceId>,
}

/// An observability sink for lifecycle events.
///
/// Implementations are shared across components as `Rc<dyn Probe>` (the
/// simulation is single-threaded) and use interior mutability to record.
/// Both methods default to no-ops so a sink may care about only one kind
/// of event.
pub trait Probe: fmt::Debug {
    /// Records a packet-lifecycle observation.
    fn packet(&self, ev: PacketEvent) {
        let _ = ev;
    }

    /// Records a completed CPU-visible operation.
    fn op(&self, ev: OpEvent) {
        let _ = ev;
    }
}

/// The shared-ownership form every hook site stores.
pub type SharedProbe = Rc<dyn Probe>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_round_trips_src() {
        let t = TraceId::packet(NodeId::new(7), 12345);
        assert_eq!(t.src(), NodeId::new(7));
        assert_eq!(t.raw() & 0xFFFF_FFFF_FFFF, 12345);
        assert_eq!(t.to_string(), "t7.12345");
    }

    #[test]
    fn ids_are_unique_across_sources() {
        let a = TraceId::packet(NodeId::new(0), 5);
        let b = TraceId::packet(NodeId::new(1), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Stage::TxEnqueue.label(), "tx-enqueue");
        assert_eq!(Stage::Commit.to_string(), "commit");
        assert_eq!(OpKind::RemoteRead.label(), "remote-read");
        assert_eq!(Site::Switch(2).to_string(), "switch2");
        assert_eq!(Site::Node(NodeId::new(3)).to_string(), "node3");
    }

    #[derive(Debug, Default)]
    struct CountingProbe(std::cell::Cell<u32>);
    impl Probe for CountingProbe {
        fn packet(&self, _ev: PacketEvent) {
            self.0.set(self.0.get() + 1);
        }
    }

    #[test]
    fn probe_defaults_are_no_ops() {
        let p = CountingProbe::default();
        p.op(OpEvent {
            node: NodeId::new(0),
            kind: OpKind::Fence,
            start: SimTime::ZERO,
            end: SimTime::from_ns(1),
            trace: None,
        });
        p.packet(PacketEvent {
            at: SimTime::ZERO,
            trace: TraceId::packet(NodeId::new(0), 0),
            parent: None,
            site: Site::Node(NodeId::new(0)),
            stage: Stage::TxEnqueue,
            kind: "write_req",
            bytes: 22,
        });
        assert_eq!(p.0.get(), 1);
    }
}
