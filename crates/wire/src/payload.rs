//! Shared, recyclable packet payloads.
//!
//! Data-carrying messages ([`CopyData`](crate::WireMsg::CopyData),
//! [`PageData`](crate::WireMsg::PageData)) used to own a bare `Vec<u64>`,
//! which put a heap allocation on the launch→switch→commit path for every
//! burst — and a second one per hop on reliable links, whose transmit
//! ports keep a retransmission copy of each in-flight frame.
//!
//! [`Payload`] wraps the word vector in an `Rc`, so the retransmission
//! copy (and any fan-out copy a switch makes) is a reference-count bump
//! instead of a fresh allocation. [`PayloadPool`] is a freelist on top:
//! producers take a recycled buffer, fill it and seal it; consumers hand
//! the payload back after committing it to memory, and if no clone is
//! still in flight the buffer's capacity is reused for the next burst.
//!
//! Equality, hashing and `Debug` all delegate to the inner `Vec<u64>`, so
//! wrapping is invisible to the frame checksum (which hashes the whole
//! message) and to rendered traces — a hard requirement, because simtrace
//! output is pinned byte-identical across engine changes.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// An immutable, cheaply clonable block of payload words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Payload(Rc<Vec<u64>>);

impl Payload {
    /// Wraps an owned vector (no pooling; see [`PayloadPool::seal`]).
    pub fn new(vals: Vec<u64>) -> Self {
        Payload(Rc::new(vals))
    }

    /// The payload words.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl Deref for Payload {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        &self.0
    }
}

impl From<Vec<u64>> for Payload {
    fn from(vals: Vec<u64>) -> Self {
        Payload::new(vals)
    }
}

/// Renders exactly like the inner `Vec<u64>`, so message `Debug` output
/// (and therefore rendered traces) is unchanged by the wrapper.
impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A freelist of payload buffers.
///
/// Not shared between components — each producer (a HIB's copy engine, a
/// VSM node) owns one, recycling its own consumed buffers. Pooling only
/// reuses `Vec` capacity; values are always written fresh, so it cannot
/// affect simulation results.
#[derive(Debug, Default)]
pub struct PayloadPool {
    free: Vec<Vec<u64>>,
    /// Buffers handed back whose words are still referenced elsewhere
    /// (e.g. a retransmission copy in flight); dropped instead of reused.
    misses: u64,
    hits: u64,
}

/// Retain at most this many idle buffers; beyond that, recycled buffers
/// are simply dropped.
const POOL_CAP: usize = 64;

impl PayloadPool {
    /// An empty pool.
    pub fn new() -> Self {
        PayloadPool::default()
    }

    /// Takes an empty buffer, reusing recycled capacity when available.
    pub fn take(&mut self) -> Vec<u64> {
        self.free.pop().unwrap_or_default()
    }

    /// Seals a filled buffer into an immutable [`Payload`].
    pub fn seal(&mut self, vals: Vec<u64>) -> Payload {
        Payload::new(vals)
    }

    /// Returns a consumed payload's buffer to the freelist. A no-op (plain
    /// drop) when a clone of the payload is still alive — a retransmission
    /// copy buffered by a reliable link, for example.
    pub fn recycle(&mut self, payload: Payload) {
        match Rc::try_unwrap(payload.0) {
            Ok(mut vals) if self.free.len() < POOL_CAP => {
                vals.clear();
                self.free.push(vals);
                self.hits += 1;
            }
            Ok(_) => self.hits += 1,
            Err(_) => self.misses += 1,
        }
    }

    /// `(exclusively owned, still shared)` recycle counts, for tests and
    /// diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<H: Hash>(v: &H) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// The wrapper must be invisible to the frame checksum: hashing a
    /// payload produces exactly the byte stream of hashing the vector.
    #[test]
    fn hashes_and_debugs_like_the_inner_vec() {
        let v = vec![1u64, 2, 0, u64::MAX];
        let p = Payload::new(v.clone());
        assert_eq!(hash_of(&p), hash_of(&v));
        assert_eq!(format!("{p:?}"), format!("{v:?}"));
        assert_eq!(p.as_slice(), &v[..]);
    }

    #[test]
    fn clones_share_storage() {
        let p = Payload::new(vec![7; 8]);
        let q = p.clone();
        assert!(std::ptr::eq(p.as_slice(), q.as_slice()));
        assert_eq!(p, q);
    }

    #[test]
    fn pool_reuses_capacity_of_exclusive_buffers() {
        let mut pool = PayloadPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(&[1, 2, 3]);
        let cap_ptr = buf.as_ptr();
        let p = pool.seal(buf);
        pool.recycle(p);
        assert_eq!(pool.stats(), (1, 0));
        let again = pool.take();
        assert!(again.is_empty());
        assert_eq!(again.as_ptr(), cap_ptr);
    }

    #[test]
    fn pool_drops_buffers_that_are_still_shared() {
        let mut pool = PayloadPool::new();
        let p = pool.seal(vec![9; 4]);
        let keep = p.clone();
        pool.recycle(p);
        assert_eq!(pool.stats(), (0, 1));
        // The surviving clone still reads its words.
        assert_eq!(keep.as_slice(), &[9, 9, 9, 9]);
        // A fresh take is a new buffer, not the shared one.
        assert!(pool.take().is_empty());
    }
}
