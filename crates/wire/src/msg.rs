//! The wire protocol spoken between Host Interface Boards.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::addr::GOffset;
use crate::ids::NodeId;

/// Bytes of routing/type header carried by every packet.
pub const HEADER_BYTES: u32 = 8;

/// The remote atomic operations the HIB implements (paper §2.2.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AtomicOp {
    /// `fetch_and_store(addr, new)` — returns the old value, stores `new`.
    FetchStore,
    /// `fetch_and_inc(addr, delta)` — returns the old value, adds `delta`.
    FetchInc,
    /// `compare_and_swap(addr, expect, new)` — returns the old value, stores
    /// `new` only if the old value equals `expect`.
    CompareSwap,
}

impl fmt::Display for AtomicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicOp::FetchStore => "fetch_and_store",
            AtomicOp::FetchInc => "fetch_and_inc",
            AtomicOp::CompareSwap => "compare_and_swap",
        };
        f.write_str(s)
    }
}

/// One protocol message between HIBs.
///
/// Each variant corresponds to a hardware transaction in the paper:
/// the plain remote read/write path (§2.2.1), remote copy (§2.2.2), atomic
/// operations (§2.2.3), the owner-serialized update-coherence traffic
/// (§2.3), the VSM-baseline page traffic (§2.1) and the DMA stream used by
/// the OS-trap message-passing baseline (§1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum WireMsg {
    /// Remote write: store `val` at `addr` in the destination's segment.
    WriteReq {
        /// Target offset in the home node's shared segment.
        addr: GOffset,
        /// The 64-bit datum.
        val: u64,
        /// Idempotency tag echoed in the `WriteAck`. A timed-out write
        /// is retried with the *same* tag; the home HIB dedupes recently
        /// applied tags per source so a retry after a lost ack re-acks
        /// without re-applying the store.
        tag: u32,
    },
    /// Acknowledgement of a `WriteReq`/`MulticastWrite` (feeds the
    /// outstanding-op registry).
    WriteAck {
        /// Tag from the request being acknowledged.
        tag: u32,
    },
    /// Blocking remote read of the word at `addr`.
    ReadReq {
        /// Source offset in the home node's shared segment.
        addr: GOffset,
        /// Matching tag echoed in the response.
        tag: u32,
    },
    /// Response to a `ReadReq`.
    ReadResp {
        /// Tag from the request.
        tag: u32,
        /// The word read.
        val: u64,
    },
    /// Remote atomic operation executed at the home HIB.
    AtomicReq {
        /// Which atomic.
        op: AtomicOp,
        /// Target word.
        addr: GOffset,
        /// First argument (datum / expected value).
        arg0: u64,
        /// Second argument (only `CompareSwap` uses it).
        arg1: u64,
        /// Matching tag echoed in the response.
        tag: u32,
    },
    /// Response to an `AtomicReq` carrying the old value.
    AtomicResp {
        /// Tag from the request.
        tag: u32,
        /// Value of the word before the atomic applied.
        old: u64,
    },
    /// Remote copy: ask the home node to stream `words` words starting at
    /// `from` back to the requester.
    CopyReq {
        /// First word to copy.
        from: GOffset,
        /// Number of words.
        words: u32,
        /// Stream tag.
        tag: u32,
    },
    /// One burst of a remote-copy stream.
    CopyData {
        /// Stream tag from the `CopyReq`.
        tag: u32,
        /// Word index of the first value in this burst.
        index: u32,
        /// The copied words.
        vals: crate::Payload,
        /// True on the final burst.
        last: bool,
    },
    /// Coherent write forwarded to the page owner (§2.3.2).
    UpdateToOwner {
        /// Target word in the *owner's* segment.
        addr: GOffset,
        /// New value.
        val: u64,
        /// The node that performed the original store.
        writer: NodeId,
    },
    /// Owner-multicast update of one word of a replicated page (§2.3.1);
    /// the receiver applies counter filtering (§2.3.3).
    ReflectedWrite {
        /// Target word in the *receiver's* segment.
        addr: GOffset,
        /// New value.
        val: u64,
        /// The node whose store this reflects.
        writer: NodeId,
    },
    /// Eager-update multicast write (§2.2.7): like `WriteReq` but flagged so
    /// receivers can count multicast traffic separately.
    MulticastWrite {
        /// Target word in the receiver's segment.
        addr: GOffset,
        /// New value.
        val: u64,
        /// Idempotency tag (same discipline as [`WireMsg::WriteReq`]).
        tag: u32,
    },
    /// VSM baseline: request a whole page image.
    PageFetchReq {
        /// Page within the home node's segment.
        page: u32,
        /// Stream tag.
        tag: u32,
    },
    /// VSM baseline: one burst of a page image.
    PageData {
        /// Stream tag from the `PageFetchReq`.
        tag: u32,
        /// Word index of the first value in this burst.
        index: u32,
        /// Page words.
        vals: crate::Payload,
        /// True on the final burst.
        last: bool,
    },
    /// VSM baseline: invalidate a replicated page.
    InvalidateReq {
        /// Page within the receiver's segment mapping.
        page: u32,
    },
    /// VSM baseline: acknowledgement of an invalidation.
    InvalidateAck {
        /// The invalidated page.
        page: u32,
    },
    /// OS-trap message-passing baseline: one DMA burst of an opaque message.
    DmaData {
        /// Message tag.
        tag: u32,
        /// Payload bytes in this burst.
        nbytes: u32,
        /// True on the final burst.
        last: bool,
    },
    /// Generic OS-to-OS control message (software protocols such as the
    /// VSM baseline define the `kind` codes). The HIB only transports it.
    OsCtl {
        /// Protocol-defined message kind.
        kind: u16,
        /// First operand.
        a: u64,
        /// Second operand.
        b: u64,
    },
}

impl WireMsg {
    /// Payload bytes of this message (excluding the packet header).
    ///
    /// The numbers model the narrow-link encoding of the Telegraphos
    /// prototype: 48-bit addresses, 64-bit data, small tags. Absolute values
    /// only matter through the timing calibration in
    /// [`TimingConfig`](crate::TimingConfig).
    pub fn payload_bytes(&self) -> u32 {
        match self {
            WireMsg::WriteReq { .. } => 18,
            WireMsg::WriteAck { .. } => 6,
            WireMsg::ReadReq { .. } => 10,
            WireMsg::ReadResp { .. } => 12,
            WireMsg::AtomicReq { .. } => 26,
            WireMsg::AtomicResp { .. } => 12,
            WireMsg::CopyReq { .. } => 14,
            WireMsg::CopyData { vals, .. } => 8 + 8 * vals.len() as u32,
            WireMsg::UpdateToOwner { .. } => 16,
            WireMsg::ReflectedWrite { .. } => 16,
            WireMsg::MulticastWrite { .. } => 18,
            WireMsg::PageFetchReq { .. } => 8,
            WireMsg::PageData { vals, .. } => 8 + 8 * vals.len() as u32,
            WireMsg::InvalidateReq { .. } => 6,
            WireMsg::InvalidateAck { .. } => 6,
            WireMsg::DmaData { nbytes, .. } => 8 + nbytes,
            WireMsg::OsCtl { .. } => 20,
        }
    }

    /// Stable short name of this message kind, for trace exporters and
    /// reports (`'static` so probes can record it without allocating).
    pub fn kind_str(&self) -> &'static str {
        match self {
            WireMsg::WriteReq { .. } => "write_req",
            WireMsg::WriteAck { .. } => "write_ack",
            WireMsg::ReadReq { .. } => "read_req",
            WireMsg::ReadResp { .. } => "read_resp",
            WireMsg::AtomicReq { .. } => "atomic_req",
            WireMsg::AtomicResp { .. } => "atomic_resp",
            WireMsg::CopyReq { .. } => "copy_req",
            WireMsg::CopyData { .. } => "copy_data",
            WireMsg::UpdateToOwner { .. } => "update_to_owner",
            WireMsg::ReflectedWrite { .. } => "reflected_write",
            WireMsg::MulticastWrite { .. } => "multicast_write",
            WireMsg::PageFetchReq { .. } => "page_fetch_req",
            WireMsg::PageData { .. } => "page_data",
            WireMsg::InvalidateReq { .. } => "invalidate_req",
            WireMsg::InvalidateAck { .. } => "invalidate_ack",
            WireMsg::DmaData { .. } => "dma_data",
            WireMsg::OsCtl { .. } => "os_ctl",
        }
    }

    /// True for messages that elicit no reply of their own and are instead
    /// covered by the outstanding-operation counters (write-class traffic).
    pub fn is_posted(&self) -> bool {
        matches!(
            self,
            WireMsg::WriteReq { .. }
                | WireMsg::UpdateToOwner { .. }
                | WireMsg::ReflectedWrite { .. }
                | WireMsg::MulticastWrite { .. }
                | WireMsg::DmaData { .. }
        )
    }
}

/// A routable network packet: a wire message plus source and destination
/// node, stamped with an injection sequence number so tests can verify the
/// network's in-order delivery guarantee.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The carried message.
    pub msg: WireMsg,
    /// Per-source injection sequence number (diagnostic; assigned by the
    /// injecting HIB, checked by in-order tests).
    pub inject_seq: u64,
    /// Link-layer sequence number, restamped by the transmitting port on
    /// every hop when link-level reliability is enabled (0 otherwise).
    pub link_seq: u64,
    /// Frame checksum as put on the wire by [`Packet::seal`]; receivers
    /// recompute and compare (see [`Packet::checksum_ok`]). A value of 0
    /// with an unsealed packet means "no checksum" (unreliable links).
    pub checksum: u32,
}

impl Packet {
    /// Creates a packet with link-layer fields cleared; the transmitting
    /// port stamps `link_seq` and seals the checksum when reliability is
    /// enabled.
    pub fn new(src: NodeId, dst: NodeId, msg: WireMsg, inject_seq: u64) -> Self {
        Packet {
            src,
            dst,
            msg,
            inject_seq,
            link_seq: 0,
            checksum: 0,
        }
    }

    /// Total bytes on the wire: header plus payload.
    pub fn size_bytes(&self) -> u32 {
        HEADER_BYTES + self.msg.payload_bytes()
    }

    /// This packet's lifecycle trace id, derived from the `(src,
    /// inject_seq)` pair that already uniquely names every injected packet.
    pub fn trace_id(&self) -> crate::trace::TraceId {
        crate::trace::TraceId::packet(self.src, self.inject_seq)
    }

    /// The frame checksum over header and payload (everything except the
    /// checksum field itself). Deterministic within a build — exactly what
    /// a simulated CRC needs. FNV-1a rather than the std SipHash: every
    /// reliable hop seals or verifies each frame, so this sits on the
    /// fabric's hot path, and a simulated CRC needs bit-flip sensitivity,
    /// not collision resistance.
    pub fn compute_checksum(&self) -> u32 {
        let mut h = Fnv1a::default();
        self.src.hash(&mut h);
        self.dst.hash(&mut h);
        self.inject_seq.hash(&mut h);
        self.link_seq.hash(&mut h);
        self.msg.hash(&mut h);
        let v = h.finish();
        // Fold to 32 bits, avoiding 0 so "sealed" is distinguishable.
        (((v >> 32) as u32) ^ (v as u32)) | 1
    }

    /// Stamps the wire checksum (after `link_seq` is final).
    pub fn seal(&mut self) {
        self.checksum = self.compute_checksum();
    }

    /// Verifies the wire checksum. Only meaningful for sealed frames.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// A minimal FNV-1a [`Hasher`] for the frame checksum: one multiply and
/// xor per byte, no per-hash key setup. Shared with the control-frame
/// checksum in [`crate::ctrl`] so both frame classes use the same CRC
/// model.
pub(crate) struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        // The dominant input (ids, sequence numbers, payload words): fold
        // whole words instead of byte-at-a-time.
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{} #{} {:?} ({}B)",
            self.src,
            self.dst,
            self.inject_seq,
            std::mem::discriminant(&self.msg),
            self.size_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(msg: WireMsg) -> Packet {
        Packet::new(NodeId::new(0), NodeId::new(1), msg, 0)
    }

    #[test]
    fn sizes_include_header() {
        let p = packet(WireMsg::WriteReq {
            addr: GOffset::new(8),
            val: 1,
            tag: 1,
        });
        assert_eq!(p.size_bytes(), HEADER_BYTES + 18);
    }

    #[test]
    fn bulk_sizes_scale_with_payload() {
        let small = WireMsg::CopyData {
            tag: 0,
            index: 0,
            vals: vec![0; 1].into(),
            last: false,
        };
        let big = WireMsg::CopyData {
            tag: 0,
            index: 0,
            vals: vec![0; 8].into(),
            last: true,
        };
        assert_eq!(big.payload_bytes() - small.payload_bytes(), 7 * 8);
        let dma = WireMsg::DmaData {
            tag: 0,
            nbytes: 100,
            last: true,
        };
        assert_eq!(dma.payload_bytes(), 108);
    }

    #[test]
    fn posted_classification() {
        assert!(WireMsg::WriteReq {
            addr: GOffset::new(0),
            val: 0,
            tag: 0
        }
        .is_posted());
        assert!(WireMsg::ReflectedWrite {
            addr: GOffset::new(0),
            val: 0,
            writer: NodeId::new(0)
        }
        .is_posted());
        assert!(!WireMsg::ReadReq {
            addr: GOffset::new(0),
            tag: 0
        }
        .is_posted());
        assert!(!WireMsg::WriteAck { tag: 0 }.is_posted());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut p = packet(WireMsg::WriteReq {
            addr: GOffset::new(8),
            val: 42,
            tag: 3,
        });
        p.link_seq = 7;
        p.seal();
        assert!(p.checksum_ok());
        // Payload corruption is caught.
        let mut bad = p.clone();
        bad.msg = WireMsg::WriteReq {
            addr: GOffset::new(8),
            val: 43,
            tag: 3,
        };
        assert!(!bad.checksum_ok());
        // Checksum-field corruption is caught.
        let mut flipped = p.clone();
        flipped.checksum ^= 0x4;
        assert!(!flipped.checksum_ok());
        // Link-sequence corruption is caught.
        let mut reseq = p.clone();
        reseq.link_seq = 8;
        assert!(!reseq.checksum_ok());
        // Sealing is deterministic.
        let mut again = packet(WireMsg::WriteReq {
            addr: GOffset::new(8),
            val: 42,
            tag: 3,
        });
        again.link_seq = 7;
        again.seal();
        assert_eq!(again.checksum, p.checksum);
    }

    #[test]
    fn atomic_op_display() {
        assert_eq!(AtomicOp::FetchInc.to_string(), "fetch_and_inc");
        assert_eq!(AtomicOp::FetchStore.to_string(), "fetch_and_store");
        assert_eq!(AtomicOp::CompareSwap.to_string(), "compare_and_swap");
    }
}
