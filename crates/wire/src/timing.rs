//! Cluster-wide timing calibration.

use tg_sim::SimTime;

/// Every latency and rate knob of the simulated cluster, in one place.
///
/// The default values are calibrated so that the paper's §3.2 measurements
/// on two DEC 3000/300 workstations through one Telegraphos switch are
/// reproduced by the default two-node cluster:
///
/// * remote write ≈ 0.70 µs sustained (HIB + link service rate),
///   and < 0.5 µs per write for short bursts absorbed by HIB queueing;
/// * remote read ≈ 7.2 µs round trip.
///
/// Each field says which state machine consumes it. All values are
/// overridable, and [`TimingConfig::memory_bus`] provides the paper's §2.1
/// hypothetical of plugging the HIB into the memory bus instead of the I/O
/// bus.
///
/// # Example
///
/// ```
/// use tg_wire::TimingConfig;
/// let t = TimingConfig::telegraphos_i();
/// assert!(t.tc_write_latch < t.tc_read_overhead);
/// let fast = TimingConfig::memory_bus();
/// assert!(fast.tc_write_latch < t.tc_write_latch);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TimingConfig {
    /// CPU store to the TurboChannel until the bus is released (the cost the
    /// processor pays per remote write when the HIB queue has room).
    pub tc_write_latch: SimTime,
    /// CPU-side overhead of a blocking TurboChannel read (issue, wait-state
    /// polling, completion turnaround) excluding the network round trip.
    pub tc_read_overhead: SimTime,
    /// A cached/local main-memory access (non-shared data; Telegraphos does
    /// not interfere with these at all).
    pub local_mem_access: SimTime,
    /// CPU-side cost of reading *local* shared data. In Telegraphos I the
    /// shared segment lives on the HIB board, so the read crosses the
    /// TurboChannel (uncached); Telegraphos II keeps it in cacheable main
    /// memory — the §2.2.1 trade-off.
    pub tc_local_shared_read: SimTime,
    /// Access to the HIB-resident shared SRAM (the Telegraphos I "MPM").
    pub hib_sram_access: SimTime,
    /// HIB request/response processing per packet, each direction.
    pub hib_proc: SimTime,
    /// Wire propagation per link traversal.
    pub link_prop: SimTime,
    /// Link throughput in bytes per microsecond (serialization rate).
    pub link_bytes_per_us: f64,
    /// Switch cut-through latency per traversal.
    pub switch_latency: SimTime,
    /// Extra CPU cost of entering/leaving the uninterruptible PAL-code
    /// sequence used by Telegraphos I special-operation launch.
    pub pal_entry: SimTime,
    /// Operating-system trap (enter + exit); paid by the VSM baseline, the
    /// message-passing baseline and alarm-interrupt handling.
    pub os_trap: SimTime,
    /// OS work to change one page mapping (page-table + HIB table update).
    pub os_page_map: SimTime,
    /// Delivery latency of a HIB interrupt to the processor.
    pub interrupt_latency: SimTime,
    /// Per-byte software copy cost (memcpy in the messaging baseline).
    pub copy_per_byte: SimTime,
    /// One disk page transfer (seek + rotation + transfer) for the
    /// disk-paging baseline of experiment E11 (early-90s disk: ~15 ms).
    pub disk_page_transfer: SimTime,
}

impl TimingConfig {
    /// The calibrated Telegraphos I prototype (the default).
    pub fn telegraphos_i() -> Self {
        TimingConfig {
            tc_write_latch: SimTime::from_ns(460),
            tc_read_overhead: SimTime::from_ns(2900),
            local_mem_access: SimTime::from_ns(140),
            tc_local_shared_read: SimTime::from_ns(1200),
            hib_sram_access: SimTime::from_ns(250),
            hib_proc: SimTime::from_ns(450),
            link_prop: SimTime::from_ns(100),
            link_bytes_per_us: 100.0,
            switch_latency: SimTime::from_ns(550),
            pal_entry: SimTime::from_ns(500),
            os_trap: SimTime::from_us(25),
            os_page_map: SimTime::from_us(10),
            interrupt_latency: SimTime::from_us(5),
            copy_per_byte: SimTime::from_ps(12_000), // ~80 MB/s memcpy
            disk_page_transfer: SimTime::from_ms(15),
        }
    }

    /// The single-chip Telegraphos II target: faster HIB logic and links,
    /// shared data in main memory (cheaper local shared access), context
    /// registers instead of PAL sequences.
    pub fn telegraphos_ii() -> Self {
        TimingConfig {
            tc_write_latch: SimTime::from_ns(300),
            tc_read_overhead: SimTime::from_ns(1500),
            tc_local_shared_read: SimTime::from_ns(200),
            hib_sram_access: SimTime::from_ns(140),
            hib_proc: SimTime::from_ns(200),
            link_bytes_per_us: 400.0,
            switch_latency: SimTime::from_ns(250),
            pal_entry: SimTime::ZERO,
            ..Self::telegraphos_i()
        }
    }

    /// The §2.1 hypothetical: the HIB on the memory bus instead of the I/O
    /// bus. Bus latch costs shrink to cache-controller scale; everything
    /// network-side is unchanged.
    pub fn memory_bus() -> Self {
        TimingConfig {
            tc_write_latch: SimTime::from_ns(100),
            tc_read_overhead: SimTime::from_ns(500),
            ..Self::telegraphos_i()
        }
    }

    /// Serialization delay of `bytes` on a link.
    pub fn serialize(&self, bytes: u32) -> SimTime {
        SimTime::from_us_f64(bytes as f64 / self.link_bytes_per_us)
    }

    /// Software copy cost of `bytes` (messaging baseline).
    pub fn copy_cost(&self, bytes: u64) -> SimTime {
        SimTime::from_ps(self.copy_per_byte.as_ps() * bytes)
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::telegraphos_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_telegraphos_i() {
        assert_eq!(TimingConfig::default(), TimingConfig::telegraphos_i());
    }

    #[test]
    fn serialize_scales_linearly() {
        let t = TimingConfig::telegraphos_i();
        let one = t.serialize(10);
        let two = t.serialize(20);
        assert_eq!(two, one * 2);
        // 100 bytes at 100 B/us is 1 us.
        assert_eq!(t.serialize(100), SimTime::from_us(1));
    }

    #[test]
    fn telegraphos_ii_is_faster() {
        let i = TimingConfig::telegraphos_i();
        let ii = TimingConfig::telegraphos_ii();
        assert!(ii.hib_proc < i.hib_proc);
        assert!(ii.link_bytes_per_us > i.link_bytes_per_us);
        assert!(ii.pal_entry.is_zero());
        // OS costs are workstation properties, unchanged.
        assert_eq!(ii.os_trap, i.os_trap);
    }

    #[test]
    fn copy_cost_scales() {
        let t = TimingConfig::telegraphos_i();
        assert_eq!(t.copy_cost(1000), SimTime::from_ns(12_000));
    }

    #[test]
    fn write_service_rate_matches_calibration() {
        // The sustained remote-write rate is one write per
        // hib_proc + serialize(header + WriteReq payload) = 0.45 + 0.22 us.
        let t = TimingConfig::telegraphos_i();
        let service = t.hib_proc + t.serialize(8 + 14);
        let us = service.as_us_f64();
        assert!((0.65..0.75).contains(&us), "service = {us} us");
    }
}
