//! Canonical metric-name convention shared by every layer.
//!
//! Before this module each layer invented its own spelling — the registry
//! had `fabric.link_utilization`, `NodeStats` had per-class op labels, the
//! switch exposed bare counters — and joining them required ad-hoc string
//! mapping in every consumer. The convention is now:
//!
//! | shape                       | meaning                                  |
//! |-----------------------------|------------------------------------------|
//! | `link.<a>-<b>.<metric>`     | one **directed** link hop from site `a` to site `b` |
//! | `<site>.<metric>`           | one site (`node3`, `switch0`)            |
//! | `fabric.<metric>`           | whole-cluster aggregate                  |
//!
//! Sites render exactly as [`Site`]'s `Display` does (`node3`, `switch0`),
//! so a name round-trips through [`parse_link_metric`] without a lookup
//! table. The stable per-link metric leaves are:
//!
//! * `utilization` — serialization time / window (0..=1)
//! * `fifo_depth` / `fifo_high_water` — receive FIFO occupancy at the `<b>`
//!   end of the link (packets)
//! * `stall_us` — cumulative credit-stall time at the `<a>` end (µs)
//! * `tx_packets` / `tx_bytes` — frames and bytes launched at `<a>`
//! * `retransmits` / `resyncs` / `resync_probes` — reliability-layer
//!   activity at `<a>`
//! * `rx_discards` — frames the `<b>` end's link layer rejected
//!   (checksum / sequence violations, duplicates)

use crate::trace::{OpKind, Site};
use crate::NodeId;

/// Name of a per-link metric: `link.<from>-<to>.<metric>`.
pub fn link_metric(from: Site, to: Site, metric: &str) -> String {
    format!("link.{from}-{to}.{metric}")
}

/// Name of a per-site metric: `<site>.<metric>`.
pub fn site_metric(site: Site, metric: &str) -> String {
    format!("{site}.{metric}")
}

/// Name of a cluster-wide metric: `fabric.<metric>`.
pub fn fabric_metric(metric: &str) -> String {
    format!("fabric.{metric}")
}

/// The canonical counter leaf for an op class, as `Cluster::run_sampled`
/// records the per-node operation mix (`OpKind::RemoteWrite` →
/// `remote_writes`, so the full name is [`site_metric`]`(site,
/// op_counter_leaf(kind))`, e.g. `node3.remote_writes`). One mapping,
/// shared by the producer and every report consumer.
pub fn op_counter_leaf(kind: OpKind) -> &'static str {
    match kind {
        OpKind::RemoteRead => "remote_reads",
        OpKind::RemoteWrite => "remote_writes",
        OpKind::LocalRead => "local_reads",
        OpKind::LocalWrite => "local_writes",
        OpKind::Atomic => "atomics",
        OpKind::Copy => "copies",
        OpKind::Fence => "fences",
        OpKind::Send => "sends",
        OpKind::Recv => "recvs",
    }
}

/// Full canonical name of a per-site op-mix counter:
/// `<site>.<op_counter_leaf>`.
pub fn op_counter(site: Site, kind: OpKind) -> String {
    site_metric(site, op_counter_leaf(kind))
}

/// Parses one site label as [`Site`]'s `Display` renders it
/// (`node<n>` or `switch<s>`).
pub fn parse_site(s: &str) -> Option<Site> {
    if let Some(n) = s.strip_prefix("node") {
        return n.parse::<u16>().ok().map(|n| Site::Node(NodeId::new(n)));
    }
    if let Some(n) = s.strip_prefix("switch") {
        return n.parse::<u16>().ok().map(Site::Switch);
    }
    None
}

/// Splits a `link.<a>-<b>.<metric>` name back into its parts. Returns
/// `None` for names outside the link namespace or with malformed sites.
pub fn parse_link_metric(name: &str) -> Option<(Site, Site, &str)> {
    let rest = name.strip_prefix("link.")?;
    let (pair, metric) = rest.split_once('.')?;
    let (a, b) = pair.split_once('-')?;
    Some((parse_site(a)?, parse_site(b)?, metric))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_names_round_trip() {
        let from = Site::Node(NodeId::new(3));
        let to = Site::Switch(0);
        let name = link_metric(from, to, "utilization");
        assert_eq!(name, "link.node3-switch0.utilization");
        assert_eq!(parse_link_metric(&name), Some((from, to, "utilization")));
    }

    #[test]
    fn dotted_metric_leaves_survive() {
        let name = link_metric(Site::Switch(1), Site::Node(NodeId::new(9)), "stall.p99");
        let (a, b, leaf) = parse_link_metric(&name).unwrap();
        assert_eq!((a, b), (Site::Switch(1), Site::Node(NodeId::new(9))));
        assert_eq!(leaf, "stall.p99");
    }

    #[test]
    fn malformed_names_are_rejected() {
        assert_eq!(parse_link_metric("fabric.bytes_total"), None);
        assert_eq!(parse_link_metric("link.node1-node"), None);
        assert_eq!(parse_link_metric("link.node1.depth"), None);
        assert_eq!(parse_link_metric("link.host1-switch0.depth"), None);
        assert_eq!(parse_site("node"), None);
        assert_eq!(parse_site("switch99999"), None);
    }
}
