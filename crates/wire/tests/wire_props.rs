//! Randomized tests for the wire vocabulary: geometry decompositions and
//! packet sizing must hold across the representable input space. Cases are
//! drawn from a seeded [`tg_sim::SimRng`] so the sweep is deterministic and
//! dependency-free.

use tg_sim::SimRng;
use tg_wire::{
    AtomicOp, GOffset, NodeId, Packet, PageNum, WireMsg, HEADER_BYTES, PAGE_BYTES, PAGE_WORDS,
};

#[test]
fn offset_page_decomposition_round_trips() {
    let mut rng = SimRng::new(0xA11CE);
    for _ in 0..512 {
        let off = rng.range(0x1_0000_0000);
        let g = GOffset::new(off);
        let rebuilt = GOffset::from_page(g.page(), g.in_page());
        assert_eq!(rebuilt, g);
        assert!(g.in_page() < PAGE_BYTES);
    }
}

#[test]
fn word_index_is_consistent() {
    let mut rng = SimRng::new(0xB0B);
    for _ in 0..512 {
        let word = rng.range(0x100_0000);
        let g = GOffset::new(word * 8);
        assert_eq!(g.word_index(), word);
        assert!(g.is_word_aligned());
        assert!(!GOffset::new(word * 8 + 3).is_word_aligned());
    }
}

#[test]
fn page_base_has_zero_in_page() {
    let mut rng = SimRng::new(0xCAFE);
    for _ in 0..512 {
        let page = rng.range(0x10_0000) as u32;
        let p = PageNum::new(page);
        assert_eq!(p.base().page(), p);
        assert_eq!(p.base().in_page(), 0);
        assert_eq!(p.base().word_index() % PAGE_WORDS, 0);
    }
}

#[test]
fn packet_size_is_header_plus_payload() {
    let mut rng = SimRng::new(0xD00D);
    for _ in 0..256 {
        let addr = rng.range(0x1000_0000);
        let val = rng.next_u64();
        let words = rng.range_between(1, 64) as usize;
        let msgs = [
            WireMsg::WriteReq {
                addr: GOffset::new(addr),
                val,
                tag: 1,
            },
            WireMsg::WriteAck { tag: 1 },
            WireMsg::ReadReq {
                addr: GOffset::new(addr),
                tag: 1,
            },
            WireMsg::ReadResp { tag: 1, val },
            WireMsg::AtomicReq {
                op: AtomicOp::CompareSwap,
                addr: GOffset::new(addr),
                arg0: val,
                arg1: val,
                tag: 2,
            },
            WireMsg::CopyData {
                tag: 3,
                index: 0,
                vals: vec![val; words].into(),
                last: true,
            },
            WireMsg::OsCtl {
                kind: 7,
                a: val,
                b: val,
            },
        ];
        for msg in msgs {
            let payload = msg.payload_bytes();
            let p = Packet::new(NodeId::new(0), NodeId::new(1), msg, 0);
            assert_eq!(p.size_bytes(), HEADER_BYTES + payload);
            assert!(payload >= 2, "every message carries something");
        }
    }
}

#[test]
fn bulk_payloads_scale_with_content() {
    let mut rng = SimRng::new(0xFEED);
    for _ in 0..256 {
        let words = rng.range_between(1, 128) as usize;
        let extra = rng.range_between(1, 64) as usize;
        let small = WireMsg::PageData {
            tag: 0,
            index: 0,
            vals: vec![0; words].into(),
            last: false,
        };
        let big = WireMsg::PageData {
            tag: 0,
            index: 0,
            vals: vec![0; words + extra].into(),
            last: false,
        };
        assert_eq!(
            big.payload_bytes() - small.payload_bytes(),
            (extra * 8) as u32
        );
    }
}

#[test]
fn posted_messages_are_exactly_the_unacked_writes() {
    let mut rng = SimRng::new(0xF00);
    for _ in 0..256 {
        let addr = rng.range(0x1000_0000);
        let val = rng.next_u64();
        let g = GOffset::new(addr);
        let n = NodeId::new(3);
        // Posted (covered by outstanding counters, no direct reply):
        for m in [
            WireMsg::WriteReq {
                addr: g,
                val,
                tag: 0,
            },
            WireMsg::MulticastWrite {
                addr: g,
                val,
                tag: 0,
            },
            WireMsg::UpdateToOwner {
                addr: g,
                val,
                writer: n,
            },
            WireMsg::ReflectedWrite {
                addr: g,
                val,
                writer: n,
            },
        ] {
            assert!(m.is_posted(), "{m:?}");
        }
        // Request/response traffic is not posted:
        for m in [
            WireMsg::ReadReq { addr: g, tag: 0 },
            WireMsg::ReadResp { tag: 0, val },
            WireMsg::WriteAck { tag: 0 },
            WireMsg::PageFetchReq { page: 0, tag: 0 },
            WireMsg::OsCtl {
                kind: 1,
                a: 0,
                b: 0,
            },
        ] {
            assert!(!m.is_posted(), "{m:?}");
        }
    }
}
