//! Property tests for the wire vocabulary: geometry decompositions and
//! packet sizing must hold for all representable inputs.

use proptest::prelude::*;
use tg_wire::{
    AtomicOp, GOffset, NodeId, Packet, PageNum, WireMsg, HEADER_BYTES, PAGE_BYTES, PAGE_WORDS,
};

proptest! {
    #[test]
    fn offset_page_decomposition_round_trips(off in 0u64..0x1_0000_0000) {
        let g = GOffset::new(off);
        let rebuilt = GOffset::from_page(g.page(), g.in_page());
        prop_assert_eq!(rebuilt, g);
        prop_assert!(g.in_page() < PAGE_BYTES);
    }

    #[test]
    fn word_index_is_consistent(word in 0u64..0x100_0000) {
        let g = GOffset::new(word * 8);
        prop_assert_eq!(g.word_index(), word);
        prop_assert!(g.is_word_aligned());
        prop_assert!(!GOffset::new(word * 8 + 3).is_word_aligned());
    }

    #[test]
    fn page_base_has_zero_in_page(page in 0u32..0x10_0000) {
        let p = PageNum::new(page);
        prop_assert_eq!(p.base().page(), p);
        prop_assert_eq!(p.base().in_page(), 0);
        prop_assert_eq!(p.base().word_index() % PAGE_WORDS, 0);
    }

    #[test]
    fn packet_size_is_header_plus_payload(
        addr in 0u64..0x1000_0000,
        val in any::<u64>(),
        words in 1usize..64,
    ) {
        let msgs = [
            WireMsg::WriteReq { addr: GOffset::new(addr), val },
            WireMsg::WriteAck,
            WireMsg::ReadReq { addr: GOffset::new(addr), tag: 1 },
            WireMsg::ReadResp { tag: 1, val },
            WireMsg::AtomicReq {
                op: AtomicOp::CompareSwap,
                addr: GOffset::new(addr),
                arg0: val,
                arg1: val,
                tag: 2,
            },
            WireMsg::CopyData { tag: 3, index: 0, vals: vec![val; words], last: true },
            WireMsg::OsCtl { kind: 7, a: val, b: val },
        ];
        for msg in msgs {
            let payload = msg.payload_bytes();
            let p = Packet {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                msg,
                inject_seq: 0,
            };
            prop_assert_eq!(p.size_bytes(), HEADER_BYTES + payload);
            prop_assert!(payload >= 2, "every message carries something");
        }
    }

    #[test]
    fn bulk_payloads_scale_with_content(words in 1usize..128, extra in 1usize..64) {
        let small = WireMsg::PageData { tag: 0, index: 0, vals: vec![0; words], last: false };
        let big = WireMsg::PageData {
            tag: 0,
            index: 0,
            vals: vec![0; words + extra],
            last: false,
        };
        prop_assert_eq!(
            big.payload_bytes() - small.payload_bytes(),
            (extra * 8) as u32
        );
    }

    #[test]
    fn posted_messages_are_exactly_the_unacked_writes(
        addr in 0u64..0x1000_0000,
        val in any::<u64>(),
    ) {
        let g = GOffset::new(addr);
        let n = NodeId::new(3);
        // Posted (covered by outstanding counters, no direct reply):
        for m in [
            WireMsg::WriteReq { addr: g, val },
            WireMsg::MulticastWrite { addr: g, val },
            WireMsg::UpdateToOwner { addr: g, val, writer: n },
            WireMsg::ReflectedWrite { addr: g, val, writer: n },
        ] {
            prop_assert!(m.is_posted(), "{m:?}");
        }
        // Request/response traffic is not posted:
        for m in [
            WireMsg::ReadReq { addr: g, tag: 0 },
            WireMsg::ReadResp { tag: 0, val },
            WireMsg::WriteAck,
            WireMsg::PageFetchReq { page: 0, tag: 0 },
            WireMsg::OsCtl { kind: 1, a: 0, b: 0 },
        ] {
            prop_assert!(!m.is_posted(), "{m:?}");
        }
    }
}
