//! # tg-hw — the HIB hardware-cost model (Table 1)
//!
//! Table 1 of the paper inventories the Telegraphos I HIB: gate counts of
//! the random logic per block and the SRAM each block needs. Those numbers
//! are configuration-determined — 16 K multicast entries × 32 bits, 64 K
//! countable pages × (16+16)-bit counters, 16 MB of multiprocessor memory —
//! so this crate models them as functions of the configuration and
//! regenerates the table (experiment E1), plus ablations the paper
//! discusses: the proposed pending-write counter CAM (§2.3.4) and the
//! directory shrink from moving to ownership-based coherence (§3.1).
//!
//! # Example
//!
//! ```
//! use tg_hw::HwConfig;
//! let inv = HwConfig::telegraphos_i().inventory();
//! assert_eq!(inv.total_gates(), 3300 + 2700);
//! assert_eq!(inv.block("Atomic operations").unwrap().gates, 1500);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

/// Structural parameters that determine the HIB's silicon budget.
#[derive(Clone, Debug, PartialEq)]
pub struct HwConfig {
    /// Multicast (eager-sharing) list entries.
    pub multicast_entries: u64,
    /// Bits per multicast entry (destination node + page).
    pub multicast_entry_bits: u64,
    /// Remote pages with access counters.
    pub counted_pages: u64,
    /// Bits per page for the read+write counter pair.
    pub counter_bits_per_page: u64,
    /// Multiprocessor memory (the shared segment) in bytes; DRAM, not SRAM.
    pub mpm_bytes: u64,
    /// Pending-write CAM entries (0 in Telegraphos I as built; §2.3.4
    /// proposes 16–32).
    pub cam_entries: u64,
    /// Synchronizing FIFO bits on the incoming link (2 + 2 Kbit).
    pub link_in_fifo_kbits: f64,
    /// FIFO bits on the outgoing link.
    pub link_out_fifo_kbits: f64,
    /// Central-control scratch SRAM in Kbit.
    pub central_sram_kbits: f64,
    /// TurboChannel interface register bits.
    pub tc_register_bits: u64,
}

impl HwConfig {
    /// Telegraphos I as built (reproduces Table 1 exactly).
    pub fn telegraphos_i() -> Self {
        HwConfig {
            multicast_entries: 16 * 1024,
            multicast_entry_bits: 32,
            counted_pages: 64 * 1024,
            counter_bits_per_page: 16 + 16,
            mpm_bytes: 16 << 20,
            cam_entries: 0,
            link_in_fifo_kbits: 2.0,
            link_out_fifo_kbits: 2.0,
            central_sram_kbits: 0.5,
            tc_register_bits: 64,
        }
    }

    /// The §2.3.4 proposal: Telegraphos I plus a pending-write CAM.
    pub fn with_cam(mut self, entries: u64) -> Self {
        self.cam_entries = entries;
        self
    }

    /// The §3.1 remark: under ownership-based coherence only the owner
    /// keeps the copy list, so the directory (multicast list) shrinks —
    /// modeled as a reduction factor on the entry count.
    ///
    /// # Panics
    ///
    /// Panics if `shrink_factor` is zero.
    pub fn with_ownership_directory(mut self, shrink_factor: u64) -> Self {
        assert!(shrink_factor > 0, "shrink factor must be positive");
        self.multicast_entries /= shrink_factor;
        self
    }

    /// Computes the block inventory.
    pub fn inventory(&self) -> Inventory {
        // Random-logic gate counts of the fixed blocks, from Table 1. The
        // message-related blocks do not scale with the table sizes.
        let mut blocks = vec![
            Block::message("Central control", 1000, self.central_sram_kbits),
            Block::message(
                "Turbochannel interface",
                // Table 1: "300 gates + 64 bits of registers" = 550 gates;
                // registers modeled at ~4 gate-equivalents per bit.
                300 + self.tc_register_bits * 250 / 64,
                0.0,
            ),
            Block::message("Incoming link intf.", 1000, self.link_in_fifo_kbits),
            Block::message("Outgoing link intf.", 750, self.link_out_fifo_kbits),
            Block::shared("Atomic operations", 1500, 0.0),
            Block::shared(
                "Multicast (eager sharing)",
                400,
                kbits(self.multicast_entries * self.multicast_entry_bits),
            ),
            Block::shared(
                "Page Access Counters",
                800,
                kbits(self.counted_pages * self.counter_bits_per_page),
            ),
        ];
        if self.cam_entries > 0 {
            // Per-entry: a ~24-bit comparator + an 8-bit counter and
            // control, ≈ 300 gate-equivalents.
            blocks.push(Block::shared(
                "Pending-write CAM",
                self.cam_entries * 300,
                kbits(self.cam_entries * 32),
            ));
        }
        Inventory {
            blocks,
            mpm_bytes: self.mpm_bytes,
        }
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::telegraphos_i()
    }
}

fn kbits(bits: u64) -> f64 {
    bits as f64 / 1024.0
}

/// Which subtotal a block belongs to (Table 1 splits message-passing
/// machinery from shared-memory support).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockClass {
    /// Message-related blocks (would exist in any network interface).
    Message,
    /// Shared-memory-related blocks (the Telegraphos additions).
    SharedMemory,
}

/// One row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Block name, as printed in the table.
    pub name: &'static str,
    /// Random-logic gate-equivalents.
    pub gates: u64,
    /// SRAM in Kbit.
    pub sram_kbits: f64,
    /// Subtotal class.
    pub class: BlockClass,
}

impl Block {
    fn message(name: &'static str, gates: u64, sram_kbits: f64) -> Self {
        Block {
            name,
            gates,
            sram_kbits,
            class: BlockClass::Message,
        }
    }
    fn shared(name: &'static str, gates: u64, sram_kbits: f64) -> Self {
        Block {
            name,
            gates,
            sram_kbits,
            class: BlockClass::SharedMemory,
        }
    }
}

/// The computed inventory: all blocks plus the DRAM-backed MPM.
#[derive(Clone, Debug, PartialEq)]
pub struct Inventory {
    /// Table rows, in Table 1 order.
    pub blocks: Vec<Block>,
    /// Multiprocessor memory (DRAM) in bytes.
    pub mpm_bytes: u64,
}

impl Inventory {
    /// Looks a block up by its table name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Gate subtotal for a class.
    pub fn gates(&self, class: BlockClass) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.class == class)
            .map(|b| b.gates)
            .sum()
    }

    /// SRAM subtotal (Kbit) for a class.
    pub fn sram_kbits(&self, class: BlockClass) -> f64 {
        self.blocks
            .iter()
            .filter(|b| b.class == class)
            .map(|b| b.sram_kbits)
            .sum()
    }

    /// Total gate count.
    pub fn total_gates(&self) -> u64 {
        self.blocks.iter().map(|b| b.gates).sum()
    }

    /// Total SRAM in Kbit.
    pub fn total_sram_kbits(&self) -> f64 {
        self.blocks.iter().map(|b| b.sram_kbits).sum()
    }

    /// MPM size in megabits, as the table footnote reports it.
    pub fn mpm_mbits(&self) -> u64 {
        self.mpm_bytes * 8 / (1 << 20)
    }
}

impl fmt::Display for Inventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<28} {:>8} {:>12}", "Block", "Logic", "SRAM (Kbit)")?;
        for b in &self.blocks {
            writeln!(f, "{:<28} {:>8} {:>12.1}", b.name, b.gates, b.sram_kbits)?;
        }
        writeln!(
            f,
            "{:<28} {:>8} {:>12.1}",
            "Subtotal message related",
            self.gates(BlockClass::Message),
            self.sram_kbits(BlockClass::Message)
        )?;
        writeln!(
            f,
            "{:<28} {:>8} {:>12.1}",
            "Subtotal shared mem. rel.",
            self.gates(BlockClass::SharedMemory),
            self.sram_kbits(BlockClass::SharedMemory)
        )?;
        writeln!(
            f,
            "{:<28} {:>8} {:>10} Mbit DRAM",
            "Multiproc. Mem. (MPM)",
            "-",
            self.mpm_mbits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_gate_counts() {
        let inv = HwConfig::telegraphos_i().inventory();
        assert_eq!(inv.block("Central control").unwrap().gates, 1000);
        assert_eq!(inv.block("Turbochannel interface").unwrap().gates, 550);
        assert_eq!(inv.block("Incoming link intf.").unwrap().gates, 1000);
        assert_eq!(inv.block("Outgoing link intf.").unwrap().gates, 750);
        assert_eq!(inv.gates(BlockClass::Message), 3300);
        assert_eq!(inv.block("Atomic operations").unwrap().gates, 1500);
        assert_eq!(inv.block("Multicast (eager sharing)").unwrap().gates, 400);
        assert_eq!(inv.block("Page Access Counters").unwrap().gates, 800);
        assert_eq!(inv.gates(BlockClass::SharedMemory), 2700);
    }

    #[test]
    fn reproduces_table1_sram_sizes() {
        let inv = HwConfig::telegraphos_i().inventory();
        assert_eq!(
            inv.block("Multicast (eager sharing)").unwrap().sram_kbits,
            512.0,
            "16 K entries x 32 bits"
        );
        assert_eq!(
            inv.block("Page Access Counters").unwrap().sram_kbits,
            2048.0,
            "64 K pages x (16+16) bits"
        );
        assert_eq!(inv.sram_kbits(BlockClass::Message), 4.5);
        // The paper prints the shared-memory subtotal rounded to 2500.
        let shared = inv.sram_kbits(BlockClass::SharedMemory);
        assert!((2500.0..=2600.0).contains(&shared), "subtotal {shared}");
        assert_eq!(inv.mpm_mbits(), 128);
    }

    #[test]
    fn cam_adds_modest_logic() {
        let base = HwConfig::telegraphos_i().inventory();
        let with = HwConfig::telegraphos_i().with_cam(16).inventory();
        let extra = with.total_gates() - base.total_gates();
        // §2.3.4: "Its size can be relatively small" — a 16-entry CAM costs
        // on the order of the atomic unit, not of the directories.
        assert!(extra > 0);
        assert!(extra <= 5_000, "CAM exploded to {extra} gates");
        assert!(with.block("Pending-write CAM").is_some());
    }

    #[test]
    fn ownership_shrinks_the_directory() {
        let base = HwConfig::telegraphos_i().inventory();
        let owned = HwConfig::telegraphos_i()
            .with_ownership_directory(8)
            .inventory();
        let b = base.block("Multicast (eager sharing)").unwrap().sram_kbits;
        let o = owned.block("Multicast (eager sharing)").unwrap().sram_kbits;
        assert_eq!(o, b / 8.0, "directory SRAM shrinks with ownership");
        // Logic is unchanged; only the table shrinks.
        assert_eq!(base.total_gates(), owned.total_gates());
    }

    #[test]
    fn display_renders_all_rows() {
        let s = HwConfig::telegraphos_i().inventory().to_string();
        for row in [
            "Central control",
            "Turbochannel interface",
            "Subtotal message related",
            "Subtotal shared mem. rel.",
            "Multiproc. Mem. (MPM)",
        ] {
            assert!(s.contains(row), "missing row {row}");
        }
    }

    #[test]
    fn shared_memory_support_is_small() {
        // The paper's headline: "the portion of the network interface that
        // is necessary for supporting shared memory is very small: 2700
        // gates and a few kilobits of memory" (plus off-chip directories).
        let inv = HwConfig::telegraphos_i().inventory();
        let shared = inv.gates(BlockClass::SharedMemory);
        let message = inv.gates(BlockClass::Message);
        assert!(shared < message);
        assert_eq!(shared, 2700);
    }
}
