//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant (or duration) of simulated time, in integer picoseconds.
///
/// A single type serves for both instants and durations, exactly like a raw
/// nanosecond counter would; the picosecond granularity lets the timing
/// calibration express sub-nanosecond rates (link serialization of single
/// bytes) without rounding drift. A `u64` of picoseconds covers ~213 days of
/// simulated time, far beyond any experiment in this repository.
///
/// # Example
///
/// ```
/// use tg_sim::SimTime;
/// let t = SimTime::from_us(7) + SimTime::from_ns(200);
/// assert_eq!(t.as_ns(), 7_200);
/// assert!((t.as_us_f64() - 7.2).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start) / the zero-length duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from a fractional count of nanoseconds, rounding to
    /// the nearest picosecond. Negative inputs saturate to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime((ns * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a time from a fractional count of microseconds, rounding to
    /// the nearest picosecond. Negative inputs saturate to zero.
    pub fn from_us_f64(us: f64) -> Self {
        SimTime((us * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// True if this is the zero instant/duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on overflow in all build profiles: a wrapped clock would
    /// silently schedule events in the past. Use [`SimTime::checked_add`]
    /// where overflow is an expected outcome (e.g. "infinite" deadlines).
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflowed"),
        )
    }
}

impl AddAssign for SimTime {
    /// # Panics
    ///
    /// Panics on overflow in all build profiles (see [`Add`]).
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ps)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(7).as_ps(), 7_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2_000);
        assert_eq!(SimTime::from_ps(999).as_ns(), 0);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimTime::from_ns_f64(0.4604).as_ps(), 460);
        assert_eq!(SimTime::from_us_f64(0.7).as_ns(), 700);
        assert_eq!(SimTime::from_ns_f64(-5.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(30);
        assert_eq!(a + b, SimTime::from_ns(130));
        assert_eq!(a - b, SimTime::from_ns(70));
        assert_eq!(a * 3, SimTime::from_ns(300));
        assert_eq!(a / 4, SimTime::from_ns(25));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    /// Regression test: addition must panic on overflow in every build
    /// profile instead of wrapping the clock into the past.
    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = SimTime::MAX + SimTime::from_ps(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_assign_overflow_panics() {
        let mut t = SimTime::MAX;
        t += SimTime::from_ps(1);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_ms(5).to_string(), "5.000ms");
    }

    #[test]
    fn ordering_and_zero() {
        assert!(SimTime::from_ns(1) > SimTime::ZERO);
        assert!(SimTime::ZERO.is_zero());
        assert!(SimTime::MAX > SimTime::from_ms(1_000_000));
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
    }
}
