//! Deterministic pseudo-random numbers for workloads and scenarios.

/// A small, fast, seedable PRNG (xoshiro256++), self-contained so that every
/// experiment in the repository is bit-reproducible from its seed alone.
///
/// The state is seeded through SplitMix64 as recommended by the xoshiro
/// authors, so even trivially different seeds (0, 1, 2 …) give uncorrelated
/// streams.
///
/// # Example
///
/// ```
/// use tg_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; handy for giving each node of
    /// a cluster its own stream from one experiment seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // Rejection sampling on the multiply-high method: unbiased. The
        // rejection threshold is (2^64 - bound) % bound, i.e. computed from
        // the *bound*, not from the low product word.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.range(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `\[0, 1\]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric-ish exponential sample with the given mean (inverse-CDF).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.range(xs.len() as u64) as usize]
    }

    /// Zipf-like draw over `[0, n)`: rank `k` has weight `1/(k+1)^theta`.
    /// Used by the hot-page workloads. `theta = 0` is uniform.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf over empty domain");
        if theta == 0.0 {
            return self.range(n);
        }
        // Inverse-CDF on the (cheaply approximated) harmonic weights; exact
        // for the small n used by page-selection in workloads.
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(theta);
        }
        let mut target = self.f64() * total;
        for k in 0..n {
            target -= 1.0 / ((k + 1) as f64).powf(theta);
            if target <= 0.0 {
                return k;
            }
        }
        n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.range(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Regression test for the Lemire rejection threshold: it must be
    /// derived from the bound, not from the low product word. With the
    /// wrong threshold the draw is visibly biased; with the right one each
    /// residue of a small bound appears equally often to within noise.
    #[test]
    fn range_is_unbiased_over_small_bound() {
        let mut rng = SimRng::new(1234);
        const BOUND: u64 = 6;
        const DRAWS: u64 = 60_000;
        let mut counts = [0u64; BOUND as usize];
        for _ in 0..DRAWS {
            counts[rng.range(BOUND) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), DRAWS);
        // Chi-square with 5 degrees of freedom: the 99.9th percentile is
        // ~20.5, so a correct generator fails this about once per thousand
        // seeds — and the seed is fixed.
        let expected = DRAWS as f64 / BOUND as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 20.5, "chi2 = {chi2}, counts = {counts:?}");
        // Every residue must also land within 3% of the expected share.
        for &c in &counts {
            let frac = c as f64 / DRAWS as f64;
            assert!(
                (frac - 1.0 / BOUND as f64).abs() < 0.03,
                "counts = {counts:?}"
            );
        }
    }

    /// The rejection loop must also be exact for bounds that do not divide
    /// 2^64, including ones above 2^63 where `x >= bound` already implies
    /// acceptance of a biased remainder if the threshold is wrong.
    #[test]
    fn range_handles_huge_bounds() {
        let mut rng = SimRng::new(77);
        let bound = (1u64 << 63) + 12345;
        for _ in 0..1000 {
            assert!(rng.range(bound) < bound);
        }
    }

    #[test]
    fn range_bound_one_is_zero() {
        let mut rng = SimRng::new(5);
        for _ in 0..10 {
            assert_eq!(rng.range(1), 0);
        }
    }

    #[test]
    fn range_between_bounds() {
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            let x = rng.range_between(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SimRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut rng = SimRng::new(21);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.7..5.3).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(8);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, expect);
        assert_ne!(xs, expect, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut rng = SimRng::new(13);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.zipf(8, 1.2) as usize] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[0] > counts[7] * 3);
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut rng = SimRng::new(13);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[rng.zipf(4, 0.0) as usize] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(1);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::new(2);
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(rng.pick(&xs)));
        }
    }
}
