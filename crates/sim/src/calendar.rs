//! A bucketed calendar queue for the dense short-horizon event mix.
//!
//! The engine's workloads schedule almost every event within a few hundred
//! nanoseconds of `now` (link serialization, switch latency, credit
//! returns), so the pending set lives in a narrow sliding window of time.
//! A calendar queue [Brown 1988] exploits that: events hash by delivery
//! "day" (`at >> width_shift`) into a power-of-two array of buckets, making
//! `push` an append and `pop` a short scan near the cursor — no per-level
//! sift moves of the (large) event payload like a heap needs.
//!
//! Exactness: the engine's delivery contract is strict `(at, seq)` order.
//! The queue compares full packed keys (see [`Entry`]) when selecting a
//! minimum, so pop order is byte-identical to the indexed heap's — the
//! shared model-check property test in `queue.rs` pins this against both
//! implementations.
//!
//! The cached front entry makes `peek` O(1) (the run loop peeks before
//! every batch to honor deadlines), and `pop_batch` drains a whole
//! same-instant tie in one bucket scan.
//!
//! Pathology and fallback: a calendar queue degenerates when the bucket
//! geometry stops matching the event distribution (e.g. a dense cluster
//! plus a handful of far-future timers landing in one bucket). Width and
//! bucket count adapt on resize, and the queue keeps a scan-cost estimate;
//! when the average scan stays bad across two consecutive windows *after*
//! a resize had its chance, [`CalendarQueue::should_degrade`] reports true
//! and the engine's [`EventQueue`](crate::queue::EventQueue) migrates the
//! contents to the indexed heap (see DESIGN.md §7).

use crate::heap::Entry;

/// Minimum / maximum bucket-array sizes (powers of two).
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 14;
/// Bucket-width bounds: 2^6 ps = 64 ps keeps same-nanosecond ties in one
/// bucket; 2^40 ps ≈ 1.1 s covers any timer horizon in the repository.
const MIN_WIDTH_SHIFT: u32 = 6;
const MAX_WIDTH_SHIFT: u32 = 40;
/// Default bucket width before the first resize: 2^13 ps ≈ 8 ns, the
/// order of the calibrated link hop.
const DEFAULT_WIDTH_SHIFT: u32 = 13;

/// Scan-cost window for the degrade detector: after this many pops the
/// average entries-scanned-per-pop is evaluated.
const DEGRADE_WINDOW: u64 = 4096;
/// Average scanned entries per pop above which a window counts as bad.
const DEGRADE_SCAN_LIMIT: u64 = 24;
/// Average scanned entries per pop above which a window, while not bad
/// enough to count toward degrading, still triggers a corrective resize —
/// the geometry is re-derived from the live contents (span / len), which
/// fixes e.g. a small far-horizon timer mix that the default width spreads
/// across several wraps of the bucket array.
const TUNE_SCAN_LIMIT: u64 = 4;
/// Consecutive bad windows before the queue asks to be replaced by the
/// heap (the first bad window triggers a corrective resize instead).
const DEGRADE_BAD_WINDOWS: u32 = 2;

/// A bucketed calendar queue with exact `(at, seq)` pop order.
#[derive(Clone, Debug)]
pub(crate) struct CalendarQueue<T> {
    /// Power-of-two bucket array; bucket `day & mask` holds entries of
    /// that delivery day (`at >> width_shift`), possibly several "years"
    /// (wraps of the array) apart.
    buckets: Vec<Vec<Entry<T>>>,
    /// `buckets.len() - 1`.
    mask: u64,
    /// log₂ of the bucket width in picoseconds.
    width_shift: u32,
    /// Cached minimum entry: `peek` is O(1) and a pop hands it out
    /// without re-scanning.
    front: Option<Entry<T>>,
    /// Total entries, including the cached front.
    len: usize,
    /// The day the minimum search resumes from (the day of the last
    /// popped or currently cached minimum).
    cur_day: u64,
    /// Degrade detector: entries + buckets visited, pops served, and how
    /// many consecutive windows looked pathological.
    scanned: u64,
    pops: u64,
    bad_windows: u32,
    degrade: bool,
}

impl<T> CalendarQueue<T> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            width_shift: DEFAULT_WIDTH_SHIFT,
            front: None,
            len: 0,
            cur_day: 0,
            scanned: 0,
            pops: 0,
            bad_windows: 0,
            degrade: false,
        }
    }

    /// Pending entries (events, not buckets).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The minimum entry, if any — O(1) via the cached front.
    #[inline]
    pub(crate) fn peek(&self) -> Option<&Entry<T>> {
        self.front.as_ref()
    }

    /// True once the scan-cost detector has decided the distribution
    /// defeats the bucket geometry; the owner should migrate to the heap.
    pub(crate) fn should_degrade(&self) -> bool {
        self.degrade
    }

    /// Drains every entry (front first, then buckets in arbitrary order)
    /// for migration to another queue implementation.
    pub(crate) fn drain_all(&mut self, out: &mut Vec<Entry<T>>) {
        out.extend(self.front.take());
        for b in &mut self.buckets {
            out.append(b);
        }
        self.len = 0;
    }

    #[inline]
    pub(crate) fn push(&mut self, entry: Entry<T>) {
        self.len += 1;
        let day = entry.at_ps() >> self.width_shift;
        match &mut self.front {
            None => {
                // The cursor must not sit past the cached minimum.
                self.front = Some(entry);
                self.cur_day = day;
                return;
            }
            Some(f) if entry.key < f.key => {
                let old = std::mem::replace(f, entry);
                self.cur_day = day;
                self.insert(old);
            }
            _ => self.buckets[(day & self.mask) as usize].push(entry),
        }
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            let target = (self.len.next_power_of_two()).clamp(MIN_BUCKETS, MAX_BUCKETS);
            self.resize(target);
        }
    }

    /// Removes and returns the minimum entry.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry<T>> {
        let out = self.front.take()?;
        self.len -= 1;
        if self.len == 0 {
            // The cursor is stale now, but the next operation can only be
            // a push, which resets it.
            return Some(out);
        }
        self.cur_day = out.at_ps() >> self.width_shift;
        self.refill_front();
        self.note_pop(1);
        Some(out)
    }

    /// Pops the minimum entry plus *every* other entry sharing its
    /// delivery instant; the minimum is returned and the rest are appended
    /// to `extras` in ascending seq order. A singleton batch (the common
    /// case) touches no `Vec` at all.
    ///
    /// Same-instant entries share a day and therefore live in exactly one
    /// bucket (plus the cached front), so the whole tie is extracted in a
    /// single scan instead of one min-search per event.
    #[inline]
    pub(crate) fn pop_batch(&mut self, extras: &mut Vec<Entry<T>>) -> Option<Entry<T>> {
        let f = self.front.take()?;
        self.len -= 1;
        if self.len == 0 {
            // Singleton-queue fast path (ping-pong style workloads):
            // nothing to scan, nothing to refill; the stale cursor is
            // reset by the next push.
            return Some(f);
        }
        let at = f.at_ps();
        self.cur_day = at >> self.width_shift;
        let bucket = &mut self.buckets[(self.cur_day & self.mask) as usize];
        let start = extras.len();
        let mut i = 0;
        while i < bucket.len() {
            if bucket[i].at_ps() == at {
                extras.push(bucket.swap_remove(i));
            } else {
                i += 1;
            }
        }
        let n = extras.len() - start;
        self.len -= n;
        // swap_remove scrambles relative order; seq order is the contract.
        extras[start..].sort_unstable_by_key(|e| e.key);
        self.refill_front();
        self.note_pop(1 + n as u64);
        Some(f)
    }

    #[inline]
    fn insert(&mut self, entry: Entry<T>) {
        let day = entry.at_ps() >> self.width_shift;
        self.buckets[(day & self.mask) as usize].push(entry);
    }

    /// Finds, removes and caches the minimum bucket entry. All entries
    /// have `day >= cur_day` (the engine never schedules into the past of
    /// the last pop), so scanning days ascending from the cursor finds the
    /// minimum day within one wrap of the array; ties within that day are
    /// resolved by full-key comparison. An empty wrap falls back to a
    /// direct whole-queue min search that also resyncs the cursor (the
    /// far-future-timer case).
    fn refill_front(&mut self) {
        if self.len == 0 {
            self.maybe_shrink();
            return;
        }
        let nb = self.buckets.len();
        let mut visited = 0u64;
        for day in self.cur_day..self.cur_day + nb as u64 {
            let bucket = &mut self.buckets[(day & self.mask) as usize];
            visited += 1;
            if !bucket.is_empty() {
                visited += bucket.len() as u64;
                let shift = self.width_shift;
                let mut best: Option<(usize, u128)> = None;
                for (j, e) in bucket.iter().enumerate() {
                    if e.at_ps() >> shift == day && best.is_none_or(|(_, k)| e.key < k) {
                        best = Some((j, e.key));
                    }
                }
                if let Some((j, _)) = best {
                    self.front = Some(bucket.swap_remove(j));
                    self.cur_day = day;
                    self.scanned += visited;
                    self.maybe_shrink();
                    return;
                }
            }
        }
        self.scanned += visited;
        self.direct_min();
        self.maybe_shrink();
    }

    /// O(n) min search over every bucket; used when a full wrap of the
    /// calendar is empty for the coming year. Resyncs the cursor to the
    /// found minimum so subsequent pops are local again.
    fn direct_min(&mut self) {
        debug_assert!(self.len > 0, "direct_min on an empty queue");
        let mut best: Option<(usize, usize, u128)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            self.scanned += bucket.len() as u64;
            for (j, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, k)| e.key < k) {
                    best = Some((b, j, e.key));
                }
            }
        }
        let (b, j, _) = best.expect("len > 0 but no entry found");
        let e = self.buckets[b].swap_remove(j);
        self.cur_day = e.at_ps() >> self.width_shift;
        self.front = Some(e);
    }

    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.len * 4 < self.buckets.len() {
            let target = (self.len * 2)
                .next_power_of_two()
                .clamp(MIN_BUCKETS, MAX_BUCKETS);
            self.resize(target);
        }
    }

    /// Rebuilds the bucket array at `target` buckets, re-estimating the
    /// bucket width from the current contents: width ≈ span / len rounded
    /// to a power of two, so an average bucket-day holds about one entry.
    /// Deterministic — a pure function of the queue contents.
    fn resize(&mut self, target: usize) {
        let mut scratch: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            scratch.append(b);
        }
        let (mut min_at, mut max_at) = match &self.front {
            Some(f) => (f.at_ps(), f.at_ps()),
            None => (u64::MAX, 0),
        };
        for e in &scratch {
            min_at = min_at.min(e.at_ps());
            max_at = max_at.max(e.at_ps());
        }
        let total = (scratch.len() + usize::from(self.front.is_some())).max(1);
        let span = max_at.saturating_sub(min_at);
        let per = (span / total as u64).max(1);
        self.width_shift = (64 - per.leading_zeros()).clamp(MIN_WIDTH_SHIFT, MAX_WIDTH_SHIFT);
        if self.buckets.len() != target {
            self.buckets = (0..target).map(|_| Vec::new()).collect();
            self.mask = (target - 1) as u64;
        }
        self.cur_day = match &self.front {
            Some(f) => f.at_ps() >> self.width_shift,
            None => min_at >> self.width_shift,
        };
        for e in scratch {
            self.insert(e);
        }
    }

    /// Advances the degrade detector by one pop serving `n` entries.
    #[inline]
    fn note_pop(&mut self, n: u64) {
        self.pops += n.max(1);
        if self.pops >= DEGRADE_WINDOW {
            let avg = self.scanned / self.pops;
            if avg > DEGRADE_SCAN_LIMIT {
                self.bad_windows += 1;
                if self.bad_windows >= DEGRADE_BAD_WINDOWS {
                    self.degrade = true;
                } else {
                    // First bad window: give adaptation one chance before
                    // giving up on the geometry.
                    let target = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
                    self.resize(target);
                }
            } else {
                self.bad_windows = 0;
                if avg > TUNE_SCAN_LIMIT {
                    // Mildly mismatched geometry: re-derive width/bucket
                    // count from the live contents. Deterministic (a pure
                    // function of contents and pop count) and invisible to
                    // pop order, so traces are unaffected.
                    let target = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
                    self.resize(target);
                }
            }
            self.scanned = 0;
            self.pops = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn front_slot_keeps_peek_current() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push(Entry::new(SimTime::from_ns(50), 0, 50));
        assert_eq!(q.peek().unwrap().item, 50);
        // A smaller key displaces the cached front.
        q.push(Entry::new(SimTime::from_ns(10), 1, 10));
        assert_eq!(q.peek().unwrap().item, 10);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().item, 10);
        assert_eq!(q.pop().unwrap().item, 50);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pop_batch_collects_whole_tie_in_seq_order() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        // Shuffled seqs at one instant, plus strays before and after.
        for seq in [4u64, 1, 3, 0, 2] {
            q.push(Entry::new(SimTime::from_ns(7), 10 + seq, seq));
        }
        q.push(Entry::new(SimTime::from_ns(9), 20, 99));
        let mut extras = Vec::new();
        let first = q.pop_batch(&mut extras).unwrap();
        assert_eq!(first.item, 0);
        let items: Vec<u64> = extras.iter().map(|e| e.item).collect();
        assert_eq!(items, vec![1, 2, 3, 4]);
        assert_eq!(q.len(), 1);
        extras.clear();
        let last = q.pop_batch(&mut extras).unwrap();
        assert_eq!(last.item, 99);
        assert!(extras.is_empty(), "singleton batch touches no vec");
        assert!(q.pop_batch(&mut extras).is_none());
    }

    #[test]
    fn far_future_jump_resyncs_cursor() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push(Entry::new(SimTime::from_ns(1), 0, 1));
        // Several "years" past the whole calendar at default geometry.
        q.push(Entry::new(SimTime::from_ms(500), 1, 2));
        assert_eq!(q.pop().unwrap().item, 1);
        assert_eq!(q.pop().unwrap().item, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn grow_and_shrink_preserve_order() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        // Enough entries to force growth past MIN_BUCKETS * 2.
        let mut keys: Vec<(u64, u64)> = Vec::new();
        let mut rng = crate::SimRng::new(99);
        for seq in 0..500u64 {
            let at = rng.range(1_000_000);
            q.push(Entry::new(SimTime::from_ps(at), seq, seq));
            keys.push((at, seq));
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "growth expected");
        keys.sort_unstable();
        // Drain half (shrink kicks in), interleave some pushes.
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.at().as_ps(), e.seq()));
        }
        assert_eq!(popped, keys);
    }

    #[test]
    fn len_counts_events_not_buckets() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        for seq in 0..100u64 {
            // All at one instant: one bucket, a hundred events.
            q.push(Entry::new(SimTime::from_ns(5), seq, 0));
        }
        assert_eq!(q.len(), 100);
    }
}
