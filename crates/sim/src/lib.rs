//! # tg-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the Telegraphos reproduction: a small, dependency-free,
//! fully deterministic discrete-event engine. Every hardware element of the
//! simulated cluster (CPUs, host interface boards, links, switches) is a
//! [`Component`] registered with an [`Engine`]; components communicate by
//! scheduling typed events at future simulated instants.
//!
//! Determinism is a hard requirement — the coherence-protocol experiments
//! compare observed write sequences across seeds — so the event queue breaks
//! time ties by a monotone sequence number: two events scheduled for the same
//! instant are delivered in the order they were scheduled, on every run.
//!
//! # Example
//!
//! ```
//! use tg_sim::{Component, Ctx, Engine, SimTime};
//!
//! struct Counter { n: u32 }
//! impl Component<u32> for Counter {
//!     fn on_event(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
//!         self.n += ev;
//!         if self.n < 3 {
//!             ctx.send_self(SimTime::from_ns(10), 1);
//!         }
//!     }
//!     fn name(&self) -> &str { "counter" }
//! }
//!
//! let mut engine = Engine::new();
//! let id = engine.add(Counter { n: 0 });
//! engine.schedule(SimTime::ZERO, id, 1);
//! engine.run();
//! assert_eq!(engine.get::<Counter>(id).unwrap().n, 3);
//! assert_eq!(engine.now(), SimTime::from_ns(20));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calendar;
mod engine;
mod heap;
mod metrics;
mod queue;
mod rng;
mod stats;
mod time;

pub use engine::{
    CompId, Component, ComponentStats, Ctx, DeliveryHook, Engine, EngineStats, ProgressMeter,
    RunLimit, TraceEntry, WatchdogOutcome,
};
pub use metrics::{CounterId, GaugeId, MetricsRegistry, Sample, SeriesId};
pub use queue::QueueKind;
pub use rng::SimRng;
pub use stats::{Histogram, LogHistogram, Summary};
pub use time::SimTime;
