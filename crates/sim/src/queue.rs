//! The engine's pending-event queue: calendar queue with a heap fallback.
//!
//! [`EventQueue`] dispatches between the two implementations with identical
//! pop-order semantics (strict `(at, seq)`):
//!
//! * [`CalendarQueue`] — the default; O(1) amortized push/pop for the dense
//!   short-horizon distributions every workload in this repository
//!   produces.
//! * [`EventHeap`] — the indexed 4-ary heap, with guaranteed O(log n)
//!   bounds regardless of the time distribution.
//!
//! The calendar queue monitors its own scan cost; if the event-time
//! distribution defeats its bucket geometry even after adaptive resizing
//! (see `calendar.rs`), the queue migrates its contents into the heap once
//! and stays there. Keys are preserved exactly across the migration, so
//! delivery order is unaffected — only the constant factor changes.

use crate::calendar::CalendarQueue;
use crate::heap::{Entry, EventHeap};
use crate::time::SimTime;

/// Result of [`EventQueue::pop_ready`]: the run loop's peek, deadline
/// check, pop and same-instant batch collection fused into one call so the
/// hot path pays a single dispatch per delivered event.
pub(crate) enum Popped<T> {
    /// The queue is empty.
    Drained,
    /// The next event (at the carried instant) lies past the deadline;
    /// nothing was popped.
    Deadline(SimTime),
    /// The minimum entry; same-instant ties were appended to `extras`.
    Ready(Entry<T>),
}

/// Which pending-event queue implementation an engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed calendar queue with automatic degrade to the heap.
    Calendar,
    /// Indexed 4-ary min-heap.
    Heap,
}

/// The engine-facing queue: same contract as either implementation, plus
/// the one-way degrade path from calendar to heap.
#[derive(Clone, Debug)]
pub(crate) enum EventQueue<T> {
    Calendar(CalendarQueue<T>),
    Heap(EventHeap<T>),
}

impl<T> EventQueue<T> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            QueueKind::Heap => EventQueue::Heap(EventHeap::new()),
        }
    }

    /// The implementation currently in use (reflects a degrade).
    #[inline]
    pub(crate) fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Calendar(_) => QueueKind::Calendar,
            EventQueue::Heap(_) => QueueKind::Heap,
        }
    }

    /// Pending events (not buckets).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Heap(q) => q.len(),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, entry: Entry<T>) {
        match self {
            EventQueue::Calendar(q) => q.push(entry),
            EventQueue::Heap(q) => q.push(entry),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry<T>> {
        let out = match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Heap(q) => q.pop(),
        };
        self.maybe_degrade();
        out
    }

    /// Pops the minimum entry (returned) plus every other entry sharing
    /// its instant (appended to `extras` in `(at, seq)` order).
    #[cfg(test)]
    pub(crate) fn pop_batch(&mut self, extras: &mut Vec<Entry<T>>) -> Option<Entry<T>> {
        match self.pop_ready(SimTime::MAX, extras) {
            Popped::Ready(e) => Some(e),
            _ => None,
        }
    }

    /// The run loop's whole per-event queue interaction in one dispatch:
    /// peek, deadline check, pop, and same-instant batch collection
    /// (extras appended in `(at, seq)` order). Nothing is popped on
    /// [`Popped::Drained`] / [`Popped::Deadline`].
    #[inline]
    pub(crate) fn pop_ready(&mut self, deadline: SimTime, extras: &mut Vec<Entry<T>>) -> Popped<T> {
        let (out, degrade) = match self {
            EventQueue::Calendar(q) => {
                match q.peek() {
                    None => return Popped::Drained,
                    Some(e) if e.at() > deadline => return Popped::Deadline(e.at()),
                    Some(_) => {}
                }
                let first = q.pop_batch(extras).expect("peeked some");
                (Popped::Ready(first), q.should_degrade())
            }
            EventQueue::Heap(q) => {
                match q.peek() {
                    None => return Popped::Drained,
                    Some(e) if e.at() > deadline => return Popped::Deadline(e.at()),
                    Some(_) => {}
                }
                let first = q.pop().expect("peeked some");
                let at = first.at_ps();
                while q.peek().is_some_and(|e| e.at_ps() == at) {
                    extras.push(q.pop().expect("peeked some"));
                }
                (Popped::Ready(first), false)
            }
        };
        if degrade {
            self.maybe_degrade();
        }
        out
    }

    /// One-way migration: when the calendar queue reports a pathological
    /// distribution, move every entry into a heap. Keys are unchanged, so
    /// the pop order is identical — only the cost model switches.
    fn maybe_degrade(&mut self) {
        let EventQueue::Calendar(q) = self else {
            return;
        };
        if !q.should_degrade() {
            return;
        }
        let mut entries = Vec::with_capacity(q.len());
        q.drain_all(&mut entries);
        let mut heap = EventHeap::new();
        for e in entries {
            heap.push(e);
        }
        *self = EventQueue::Heap(heap);
    }
}

/// Shared model-check harness: drives an implementation through an
/// adversarial interleaved push/pop schedule and asserts every pop matches
/// the reference minimum. `heap.rs` and the tests below run it against
/// every implementation, so pop order is pinned byte-identical across them.
#[cfg(test)]
pub(crate) mod model {
    use super::*;
    use crate::time::SimTime;
    use crate::SimRng;

    /// The queue surface under test.
    pub(crate) trait ModelQueue {
        fn push(&mut self, at_ps: u64, seq: u64);
        fn pop(&mut self) -> Option<(u64, u64)>;
        fn len(&self) -> usize;
    }

    impl ModelQueue for EventHeap<()> {
        fn push(&mut self, at_ps: u64, seq: u64) {
            EventHeap::push(self, Entry::new(SimTime::from_ps(at_ps), seq, ()));
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            EventHeap::pop(self).map(|e| (e.at_ps(), e.seq()))
        }
        fn len(&self) -> usize {
            EventHeap::len(self)
        }
    }

    impl ModelQueue for CalendarQueue<()> {
        fn push(&mut self, at_ps: u64, seq: u64) {
            CalendarQueue::push(self, Entry::new(SimTime::from_ps(at_ps), seq, ()));
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            CalendarQueue::pop(self).map(|e| (e.at_ps(), e.seq()))
        }
        fn len(&self) -> usize {
            CalendarQueue::len(self)
        }
    }

    impl ModelQueue for EventQueue<()> {
        fn push(&mut self, at_ps: u64, seq: u64) {
            EventQueue::push(self, Entry::new(SimTime::from_ps(at_ps), seq, ()));
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            EventQueue::pop(self).map(|e| (e.at_ps(), e.seq()))
        }
        fn len(&self) -> usize {
            EventQueue::len(self)
        }
    }

    /// 2000 interleaved ops; `spread` controls the instant distribution
    /// (small = dense duplicate instants, large = bucket-rollover and
    /// resize territory). The engine contract is enforced: pushes never
    /// go behind the last popped instant.
    pub(crate) fn check_against_reference(q: &mut dyn ModelQueue, seed: u64, spread: u64) {
        let mut rng = SimRng::new(seed);
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let check_pop = |q: &mut dyn ModelQueue, reference: &mut Vec<(u64, u64)>| {
            let got = q.pop().unwrap();
            let min = *reference.iter().min().unwrap();
            // The queue must pop exactly the reference minimum.
            assert_eq!(got, min);
            reference.retain(|&x| x != min);
            min.0
        };
        for _ in 0..2000 {
            if rng.chance(0.6) || q.len() == 0 {
                let at = now + rng.range(spread.max(1));
                q.push(at, seq);
                reference.push((at, seq));
                seq += 1;
            } else {
                now = check_pop(q, &mut reference);
            }
        }
        while q.len() > 0 {
            check_pop(q, &mut reference);
        }
        assert!(reference.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::model::check_against_reference;
    use super::*;
    use crate::time::SimTime;

    /// The distributions the property test sweeps: dense duplicate
    /// instants (50 ps window), sub-bucket ties, bucket-rollover strides
    /// (multiples of the default 8 ns width and the whole-calendar span),
    /// and wide spreads that force grow/shrink resizes.
    const SPREADS: [u64; 6] = [1, 50, 8_192, 131_072, 1 << 21, 1 << 40];

    #[test]
    fn calendar_matches_reference_across_distributions() {
        for (i, &spread) in SPREADS.iter().enumerate() {
            let mut q: CalendarQueue<()> = CalendarQueue::new();
            check_against_reference(&mut q, 42 + i as u64, spread);
        }
    }

    #[test]
    fn event_queue_matches_reference_across_distributions() {
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            for (i, &spread) in SPREADS.iter().enumerate() {
                let mut q: EventQueue<()> = EventQueue::new(kind);
                check_against_reference(&mut q, 7 + i as u64, spread);
            }
        }
    }

    /// Both implementations must produce byte-identical pop sequences for
    /// the same push schedule — the engine's determinism pin.
    #[test]
    fn calendar_and_heap_pop_identically() {
        for &spread in &SPREADS {
            let mut cal: EventQueue<()> = EventQueue::new(QueueKind::Calendar);
            let mut heap: EventQueue<()> = EventQueue::new(QueueKind::Heap);
            let mut rng = crate::SimRng::new(1234);
            let mut seq = 0u64;
            for _ in 0..3000 {
                if rng.chance(0.55) || cal.len() == 0 {
                    let at = SimTime::from_ps(rng.range(spread.max(1)));
                    cal.push(Entry::new(at, seq, ()));
                    heap.push(Entry::new(at, seq, ()));
                    seq += 1;
                } else {
                    let a = cal.pop().map(|e| (e.at_ps(), e.seq()));
                    let b = heap.pop().map(|e| (e.at_ps(), e.seq()));
                    assert_eq!(a, b);
                }
            }
            loop {
                let a = cal.pop().map(|e| (e.at_ps(), e.seq()));
                let b = heap.pop().map(|e| (e.at_ps(), e.seq()));
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn batch_pop_matches_across_implementations() {
        let mut cal: EventQueue<u64> = EventQueue::new(QueueKind::Calendar);
        let mut heap: EventQueue<u64> = EventQueue::new(QueueKind::Heap);
        let mut rng = crate::SimRng::new(5);
        for seq in 0..400u64 {
            let at = SimTime::from_ps(rng.range(40)); // dense ties
            cal.push(Entry::new(at, seq, seq));
            heap.push(Entry::new(at, seq, seq));
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        loop {
            a.clear();
            b.clear();
            let fa = cal.pop_batch(&mut a);
            let fb = heap.pop_batch(&mut b);
            let key = |e: &Entry<u64>| (e.at_ps(), e.seq());
            assert_eq!(fa.as_ref().map(key), fb.as_ref().map(key));
            let ka: Vec<_> = a.iter().map(key).collect();
            let kb: Vec<_> = b.iter().map(key).collect();
            assert_eq!(ka, kb);
            let Some(first) = fa else {
                assert!(a.is_empty());
                break;
            };
            // Batches are whole ties: every member shares the instant, and
            // the returned minimum leads the seq order.
            assert!(a.iter().all(|e| e.at_ps() == first.at_ps()));
            assert!(a.iter().all(|e| e.seq() > first.seq()));
            assert!(a.windows(2).all(|w| w[0].seq() < w[1].seq()));
        }
    }

    /// A pathological distribution — instants uniform over nearly the
    /// whole u64 range, so even the widest bucket geometry leaves huge
    /// empty-day gaps between events — must flip the calendar variant to
    /// the heap after two bad scan-cost windows, with pops staying
    /// correct across the migration.
    #[test]
    fn degrade_migrates_to_heap_preserving_order() {
        let mut q: EventQueue<()> = EventQueue::new(QueueKind::Calendar);
        let mut rng = crate::SimRng::new(9);
        let mut reference: Vec<(u64, u64)> = Vec::new();
        for seq in 0..10_000u64 {
            let at = rng.range(u64::MAX >> 20) * 1_048_576;
            q.push(Entry::new(SimTime::from_ps(at), seq, ()));
            reference.push((at, seq));
        }
        assert_eq!(q.kind(), QueueKind::Calendar);
        reference.sort_unstable();
        for want in reference {
            let got = q.pop().map(|e| (e.at_ps(), e.seq())).unwrap();
            assert_eq!(got, want);
        }
        assert!(q.pop().is_none());
        assert_eq!(q.kind(), QueueKind::Heap, "detector never fired");
    }
}
