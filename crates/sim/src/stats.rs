//! Online summary statistics and histograms for experiment reporting.

use std::fmt;

/// Streaming mean/variance/extrema accumulator (Welford's algorithm),
/// used by the benchmark harness to summarize per-operation latencies.
///
/// # Example
///
/// ```
/// use tg_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// A fixed-bucket linear histogram over `[0, bucket_width * buckets)` with an
/// overflow bucket; used to report latency distributions and the
/// outstanding-write distribution for the counter-CAM experiment.
///
/// # Example
///
/// ```
/// use tg_sim::Histogram;
/// let mut h = Histogram::new(1.0, 4);
/// for x in [0.5, 1.5, 1.7, 9.0] {
///     h.add(x);
/// }
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` bins, each `width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one sample (negative samples count into bucket 0).
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of regular buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest `x` such that at least `q` (0..=1) of the samples fall at or
    /// below the *upper edge* of `x`'s bucket. Returns the overflow edge if
    /// the quantile lands there.
    pub fn quantile(&self, q: f64) -> f64 {
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        if target == 0 {
            // Empty histogram or q = 0: no sample lies at or below any edge,
            // so don't let `seen >= target` fire on a leading empty bucket.
            return 0.0;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return (i as f64 + 1.0) * self.width;
            }
        }
        self.counts.len() as f64 * self.width
    }

    /// Fraction of samples in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

/// An HDR-style log-bucketed histogram over `u64` values with bounded
/// relative error, for tail-latency percentiles (p50/p99/p999) over wide
/// dynamic ranges — picosecond latencies span six orders of magnitude in
/// one run, which a linear [`Histogram`] cannot cover without either
/// losing the tail or burning memory.
///
/// Values up to `2^sub_bits` are recorded exactly; beyond that, each
/// power-of-two octave is split into `2^(sub_bits-1)` linear sub-buckets,
/// so any recorded value is off by at most a factor of `1 + 2^-(sub_bits-1)`
/// (under 1% at the default precision). Memory is a flat `Vec<u64>` grown
/// lazily to the highest bucket touched.
///
/// # Example
///
/// ```
/// use tg_sim::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.quantile(0.50);
/// assert!((495..=505).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sub-bucket precision: values below `1 << sub_bits` are exact.
    sub_bits: u32,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Default precision: exact below 256, ≤ 0.8% relative error above.
const LOG_HIST_DEFAULT_SUB_BITS: u32 = 8;

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// A histogram at the default precision (exact below 256, under 1%
    /// relative error above).
    pub fn new() -> Self {
        LogHistogram::with_precision(LOG_HIST_DEFAULT_SUB_BITS)
    }

    /// A histogram with `sub_bits` bits of sub-bucket precision: values
    /// below `1 << sub_bits` are exact, larger values carry at most
    /// `2^-(sub_bits-1)` relative error.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= sub_bits <= 16`.
    pub fn with_precision(sub_bits: u32) -> Self {
        assert!((2..=16).contains(&sub_bits), "sub_bits out of range");
        LogHistogram {
            sub_bits,
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index holding `v`.
    fn index_of(&self, v: u64) -> usize {
        let sb = self.sub_bits;
        if v < 1 << sb {
            return v as usize;
        }
        // 2^k <= v < 2^(k+1), k >= sub_bits; the octave is split into
        // 2^(sb-1) linear sub-buckets of width 2^(k-sb+1).
        let k = 63 - v.leading_zeros();
        let sub = (v - (1 << k)) >> (k - sb + 1);
        ((1u64 << sb) + u64::from(k - sb) * (1 << (sb - 1)) + sub) as usize
    }

    /// Inclusive upper edge of bucket `idx` — the value [`quantile`]
    /// reports for samples that landed there.
    ///
    /// [`quantile`]: LogHistogram::quantile
    fn upper_edge(&self, idx: usize) -> u64 {
        let sb = self.sub_bits;
        let idx = idx as u64;
        if idx < 1 << sb {
            return idx;
        }
        let r = idx - (1 << sb);
        let k = sb + (r >> (sb - 1)) as u32;
        if k >= 64 {
            return u64::MAX;
        }
        let sub = r & ((1 << (sb - 1)) - 1);
        let width = 1u128 << (k - sb + 1);
        let edge = (1u128 << k) + (u128::from(sub) + 1) * width - 1;
        edge.min(u128::from(u64::MAX)) as u64
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty), exact —
    /// the sum is kept alongside the buckets.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0..=1): the upper edge of the bucket
    /// holding the `ceil(q * count)`-th smallest sample, clamped to the
    /// recorded maximum so `quantile(1.0) == max()`. Returns 0 when the
    /// histogram is empty or `q` is 0.
    pub fn quantile(&self, q: f64) -> u64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        if target == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return self.upper_edge(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "precision mismatch");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.add(x);
        }
        for &x in &data[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.add(3.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(2.0, 3);
        for x in [0.0, 1.9, 2.0, 5.9, 6.0, 100.0] {
            h.add(x);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
        assert!((h.fraction(0) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert_eq!(h.quantile(0.05), 1.0);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    /// Regression tests for the quantile edge cases: an empty histogram and
    /// `q = 0` must report 0.0 instead of the first bucket's upper edge, and
    /// leading empty buckets must never satisfy the target.
    #[test]
    fn histogram_quantile_empty_and_zero() {
        let empty = Histogram::new(2.0, 4);
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);

        let mut h = Histogram::new(2.0, 4);
        h.add(5.0); // bucket 2; buckets 0 and 1 stay empty
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 6.0, "must skip the leading empty buckets");
        assert_eq!(h.quantile(1.0), 6.0);
    }

    #[test]
    fn histogram_quantile_lands_in_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.add(0.5);
        h.add(100.0);
        h.add(200.0);
        // 1/3 of the mass is in bucket 0; the rest only exists past the
        // last edge, so upper quantiles report the overflow edge.
        assert_eq!(h.quantile(0.3), 1.0);
        assert_eq!(h.quantile(0.9), 4.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn histogram_negative_clamped() {
        let mut h = Histogram::new(1.0, 2);
        h.add(-3.0);
        assert_eq!(h.bucket_count(0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(0.0, 4);
    }

    #[test]
    fn log_histogram_exact_region() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 200, 255] {
            h.record(v);
        }
        // Every value below 2^sub_bits sits in its own bucket, so the
        // quantile walk reports it exactly.
        assert_eq!(h.quantile(1.0 / 6.0), 0);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 255);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 255);
    }

    #[test]
    fn log_histogram_quantiles_within_relative_error() {
        // Deterministic pseudo-random values across six orders of magnitude.
        let mut rng = crate::SimRng::new(0xC0FFEE);
        let mut values: Vec<u64> = (0..10_000).map(|_| 1 + rng.range(10_000_000)).collect();
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            // The report is the bucket's upper edge: never below the exact
            // sample, and within the precision's relative-error bound.
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                got <= exact * (1.0 + 1.0 / 128.0) + 1.0,
                "q{q}: {got} too far above exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        let exact_mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-6, "mean is kept exactly");
    }

    #[test]
    fn log_histogram_merge_equals_combined() {
        let mut rng = crate::SimRng::new(7);
        let values: Vec<u64> = (0..2000).map(|_| rng.range(1 << 40)).collect();
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn log_histogram_empty_and_extremes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);

        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record_n(0, 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.75), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn log_histogram_bucket_mapping_round_trips() {
        let h = LogHistogram::new();
        let mut rng = crate::SimRng::new(99);
        for _ in 0..10_000 {
            let v = rng.range(u64::MAX);
            let idx = h.index_of(v);
            let edge = h.upper_edge(idx);
            assert!(edge >= v, "upper edge below the value itself");
            // Monotone: the next bucket's edge is strictly larger, except
            // at the saturated top of the range where both clamp to MAX.
            if edge < u64::MAX {
                assert!(h.upper_edge(idx + 1) > edge);
            }
        }
    }
}
