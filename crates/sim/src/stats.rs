//! Online summary statistics and histograms for experiment reporting.

use std::fmt;

/// Streaming mean/variance/extrema accumulator (Welford's algorithm),
/// used by the benchmark harness to summarize per-operation latencies.
///
/// # Example
///
/// ```
/// use tg_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// A fixed-bucket linear histogram over `[0, bucket_width * buckets)` with an
/// overflow bucket; used to report latency distributions and the
/// outstanding-write distribution for the counter-CAM experiment.
///
/// # Example
///
/// ```
/// use tg_sim::Histogram;
/// let mut h = Histogram::new(1.0, 4);
/// for x in [0.5, 1.5, 1.7, 9.0] {
///     h.add(x);
/// }
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` bins, each `width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one sample (negative samples count into bucket 0).
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of regular buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest `x` such that at least `q` (0..=1) of the samples fall at or
    /// below the *upper edge* of `x`'s bucket. Returns the overflow edge if
    /// the quantile lands there.
    pub fn quantile(&self, q: f64) -> f64 {
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        if target == 0 {
            // Empty histogram or q = 0: no sample lies at or below any edge,
            // so don't let `seen >= target` fire on a leading empty bucket.
            return 0.0;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return (i as f64 + 1.0) * self.width;
            }
        }
        self.counts.len() as f64 * self.width
    }

    /// Fraction of samples in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn summary_empty_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.add(x);
        }
        for &x in &data[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.add(3.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(2.0, 3);
        for x in [0.0, 1.9, 2.0, 5.9, 6.0, 100.0] {
            h.add(x);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
        assert!((h.fraction(0) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert_eq!(h.quantile(0.05), 1.0);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    /// Regression tests for the quantile edge cases: an empty histogram and
    /// `q = 0` must report 0.0 instead of the first bucket's upper edge, and
    /// leading empty buckets must never satisfy the target.
    #[test]
    fn histogram_quantile_empty_and_zero() {
        let empty = Histogram::new(2.0, 4);
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);

        let mut h = Histogram::new(2.0, 4);
        h.add(5.0); // bucket 2; buckets 0 and 1 stay empty
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 6.0, "must skip the leading empty buckets");
        assert_eq!(h.quantile(1.0), 6.0);
    }

    #[test]
    fn histogram_quantile_lands_in_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.add(0.5);
        h.add(100.0);
        h.add(200.0);
        // 1/3 of the mass is in bucket 0; the rest only exists past the
        // last edge, so upper quantiles report the overflow edge.
        assert_eq!(h.quantile(0.3), 1.0);
        assert_eq!(h.quantile(0.9), 4.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn histogram_negative_clamped() {
        let mut h = Histogram::new(1.0, 2);
        h.add(-3.0);
        assert_eq!(h.bucket_count(0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(0.0, 4);
    }
}
