//! The deterministic event engine.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

use crate::heap::Entry;
use crate::queue::{EventQueue, Popped, QueueKind};
use crate::time::SimTime;

/// Identifier of a component registered with an [`Engine`].
///
/// Ids are dense indices assigned in registration order, so they are stable
/// across runs of the same setup code — part of the determinism contract.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// The raw index of this component.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A simulated hardware or software element.
///
/// Components receive events of the simulation-wide message type `M` and
/// react by mutating their own state and emitting further events through the
/// [`Ctx`]. Components never hold references to each other; all interaction
/// is via scheduled events, which is what makes runs reproducible.
pub trait Component<M>: Any {
    /// Handles one event delivered to this component.
    fn on_event(&mut self, ev: M, ctx: &mut Ctx<'_, M>);

    /// A short human-readable name used in traces and panics.
    fn name(&self) -> &str;
}

/// The per-delivery context handed to [`Component::on_event`].
///
/// Lets the component read the clock, learn its own id, schedule events
/// (to itself or others), and stop the simulation.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: CompId,
    outbox: &'a mut Vec<(SimTime, CompId, M)>,
    halt: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently handling an event.
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `dst` after `delay`.
    pub fn send(&mut self, dst: CompId, delay: SimTime, msg: M) {
        self.outbox.push((self.now + delay, dst, msg));
    }

    /// Schedules `msg` for delivery back to this component after `delay`.
    pub fn send_self(&mut self, delay: SimTime, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Requests that the engine stop after the current event completes.
    /// Pending events remain queued and a later `run` call resumes them.
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// Why a `run_*` call returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunLimit {
    /// The event queue drained completely.
    Drained,
    /// A component called [`Ctx::halt`].
    Halted,
    /// The time horizon passed to [`Engine::run_until`] was reached.
    Deadline,
    /// The event budget passed to [`Engine::run_events`] was exhausted.
    EventBudget,
}

/// A shared counter of "useful work done", ticked by components at their
/// commit points and watched by [`Engine::run_watchdog`]. Cloning shares
/// the counter (the simulation is single-threaded).
#[derive(Clone, Debug, Default)]
pub struct ProgressMeter(std::rc::Rc<std::cell::Cell<u64>>);

impl ProgressMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        ProgressMeter::default()
    }

    /// Records one unit of progress.
    pub fn tick(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Total progress recorded so far.
    pub fn count(&self) -> u64 {
        self.0.get()
    }
}

/// Why a watchdog-supervised run ([`Engine::run_watchdog`]) returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchdogOutcome {
    /// The event queue drained completely.
    Drained,
    /// A component called [`Ctx::halt`].
    Halted,
    /// A full watchdog window elapsed with events still firing but no
    /// progress recorded on the meter.
    Stalled {
        /// Simulated time when the stall was declared.
        at: SimTime,
        /// The meter value that failed to advance.
        progress: u64,
    },
}

/// Counters describing an engine run; useful for detecting livelock in
/// tests and for reporting simulator throughput in benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Total events delivered since construction.
    pub events_delivered: u64,
    /// Total events scheduled since construction.
    pub events_scheduled: u64,
    /// High-water mark of *pending events* — entries in the queue plus
    /// any same-instant batch popped but not yet delivered. Counting
    /// events (never queue-internal structures such as calendar buckets)
    /// keeps the datapoint comparable across queue implementations and
    /// across `BENCH_engine.json` history.
    pub max_queue_len: usize,
    /// Wall-clock nanoseconds spent inside `run`/`run_until`/`run_events`
    /// since construction (individual `step` calls are not timed).
    pub wall_nanos: u64,
}

impl EngineStats {
    /// Delivered events per wall-clock second across all timed runs; 0.0
    /// before any timed run has completed.
    pub fn events_per_wall_second(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.events_delivered as f64 / (self.wall_nanos as f64 * 1e-9)
        }
    }
}

/// Per-component delivery counters, indexed by [`CompId`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ComponentStats {
    /// Events delivered to this component.
    pub delivered: u64,
    /// Events scheduled with this component as destination.
    pub scheduled: u64,
}

/// The payload stored in the event heap; the `(at, seq)` ordering key lives
/// packed inside the heap entry itself.
struct Scheduled<M> {
    dst: CompId,
    msg: M,
}

/// One delivered event, as recorded by the trace facility.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Scheduling sequence number: the engine delivers events in strict
    /// `(at, seq)` order, so trace entries are totally ordered even across
    /// same-instant ties.
    pub seq: u64,
    /// Receiving component.
    pub dst: CompId,
    /// The component's registered name at delivery time.
    pub component: String,
    /// `Debug` rendering of the event.
    pub event: String,
}

/// An observer invoked on every event delivery (time, scheduling sequence
/// number, destination), installed with [`Engine::set_delivery_hook`].
pub type DeliveryHook = Box<dyn FnMut(SimTime, u64, CompId)>;

/// The discrete-event engine: a clock, a priority queue of scheduled events,
/// and the set of registered components.
///
/// See the [crate docs](crate) for a complete example.
pub struct Engine<M> {
    components: Vec<Box<dyn Component<M>>>,
    /// Component names captured once at registration, so the trace path
    /// never makes a virtual `name()` call (or re-allocates) per event.
    names: Vec<Box<str>>,
    queue: EventQueue<Scheduled<M>>,
    now: SimTime,
    seq: u64,
    halt: bool,
    stats: EngineStats,
    comp_stats: Vec<ComponentStats>,
    outbox: Vec<(SimTime, CompId, M)>,
    /// Scratch for batched same-instant delivery in `run_until`; kept on
    /// the engine so its capacity is reused across batches.
    batch: Vec<Entry<Scheduled<M>>>,
    /// Same-instant events popped as a batch but not yet delivered; they
    /// are still "pending" for queue-depth accounting even though they
    /// have left the queue.
    in_batch: usize,
    #[allow(clippy::type_complexity)]
    trace: Option<(usize, VecDeque<TraceEntry>, Box<dyn Fn(&M) -> String>)>,
    hook: Option<DeliveryHook>,
}

impl<M> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Engine<M> {
    /// Creates an empty engine at time zero, using the default calendar
    /// event queue (see [`QueueKind`]).
    pub fn new() -> Self {
        Self::with_queue(QueueKind::Calendar)
    }

    /// Creates an empty engine with an explicit pending-event queue
    /// implementation. Both kinds deliver in identical `(at, seq)` order;
    /// they differ only in cost model. `Calendar` additionally degrades
    /// itself to the heap if the event-time distribution defeats its
    /// bucket geometry.
    pub fn with_queue(kind: QueueKind) -> Self {
        Engine {
            components: Vec::new(),
            names: Vec::new(),
            queue: EventQueue::new(kind),
            now: SimTime::ZERO,
            seq: 0,
            halt: false,
            stats: EngineStats::default(),
            comp_stats: Vec::new(),
            outbox: Vec::new(),
            batch: Vec::new(),
            in_batch: 0,
            trace: None,
            hook: None,
        }
    }

    /// The pending-event queue implementation currently in use (reflects
    /// a calendar-to-heap degrade).
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Enables event tracing, keeping the most recent `capacity` delivered
    /// events (a debugging flight recorder). Requires `M: Debug`.
    pub fn enable_trace(&mut self, capacity: usize)
    where
        M: std::fmt::Debug,
    {
        self.trace = Some((
            capacity.max(1),
            VecDeque::new(),
            Box::new(|m: &M| format!("{m:?}")),
        ));
    }

    /// Drains and returns everything recorded so far, leaving tracing
    /// *enabled*: subsequent deliveries keep being recorded, so callers can
    /// poll the flight recorder incrementally. Returns an empty vector when
    /// tracing was never enabled. Use [`Engine::disable_trace`] to turn the
    /// recorder off.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace
            .as_mut()
            .map(|(_, buf, _)| buf.drain(..).collect())
            .unwrap_or_default()
    }

    /// Disables tracing and returns whatever was still recorded.
    pub fn disable_trace(&mut self) -> Vec<TraceEntry> {
        self.trace
            .take()
            .map(|(_, buf, _)| buf.into_iter().collect())
            .unwrap_or_default()
    }

    /// The recorded trace so far (empty when tracing is off).
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter().flat_map(|(_, buf, _)| buf.iter())
    }

    /// Installs an observer called on every delivery with `(at, seq, dst)`.
    /// One `Option` branch on the hot path when absent; replaces any
    /// previous hook.
    pub fn set_delivery_hook(&mut self, hook: DeliveryHook) {
        self.hook = Some(hook);
    }

    /// Removes the delivery hook installed by [`Engine::set_delivery_hook`].
    pub fn clear_delivery_hook(&mut self) {
        self.hook = None;
    }

    /// Registers a component and returns its id. The component's name is
    /// interned here, once.
    pub fn add(&mut self, component: impl Component<M>) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.names.push(component.name().into());
        self.components.push(Box::new(component));
        self.comp_stats.push(ComponentStats::default());
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Run counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Per-component delivered/scheduled counters, indexed by [`CompId`].
    pub fn component_stats(&self) -> &[ComponentStats] {
        &self.comp_stats
    }

    /// `(name, stats)` pairs for every component, in registration order.
    pub fn component_stats_named(&self) -> impl Iterator<Item = (&str, ComponentStats)> {
        self.names
            .iter()
            .map(|n| &**n)
            .zip(self.comp_stats.iter().copied())
    }

    /// Schedules `msg` for `dst` at `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was not returned by [`Engine::add`] on this engine.
    pub fn schedule(&mut self, delay: SimTime, dst: CompId, msg: M) {
        assert!(
            dst.index() < self.components.len(),
            "schedule to unregistered component {dst}"
        );
        let at = self.now + delay;
        self.push(at, dst, msg);
    }

    /// Schedules `msg` for `dst` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time, or if `dst` is not
    /// registered.
    pub fn schedule_at(&mut self, at: SimTime, dst: CompId, msg: M) {
        assert!(at >= self.now, "schedule_at into the past");
        assert!(
            dst.index() < self.components.len(),
            "schedule to unregistered component {dst}"
        );
        self.push(at, dst, msg);
    }

    #[inline]
    fn push(&mut self, at: SimTime, dst: CompId, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry::new(at, seq, Scheduled { dst, msg }));
        self.stats.events_scheduled += 1;
        self.comp_stats[dst.index()].scheduled += 1;
        // `in_batch` counts same-instant events popped but not yet
        // delivered: still pending, just not in the queue structure.
        self.stats.max_queue_len = self
            .stats
            .max_queue_len
            .max(self.queue.len() + self.in_batch);
    }

    /// Delivers the single earliest pending event. Returns `false` if the
    /// queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        let at = entry.at();
        assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.deliver(at, entry.seq(), entry.item);
        true
    }

    /// Delivers one already-popped event: counters, hook, trace, the
    /// component's handler, and the outbox drain.
    #[inline(always)]
    fn deliver(&mut self, at: SimTime, seq: u64, sched: Scheduled<M>) {
        let Scheduled { dst, msg } = sched;
        self.stats.events_delivered += 1;
        self.comp_stats[dst.index()].delivered += 1;
        if let Some(hook) = self.hook.as_mut() {
            hook(at, seq, dst);
        }
        if let Some((cap, buf, render)) = self.trace.as_mut() {
            if buf.len() == *cap {
                buf.pop_front();
            }
            buf.push_back(TraceEntry {
                at,
                seq,
                dst,
                component: self
                    .names
                    .get(dst.index())
                    .map(|n| n.to_string())
                    .unwrap_or_default(),
                event: render(&msg),
            });
        }

        let mut outbox = std::mem::take(&mut self.outbox);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: dst,
                outbox: &mut outbox,
                halt: &mut self.halt,
            };
            self.components[dst.index()].on_event(msg, &mut ctx);
        }
        for (at, dst, msg) in outbox.drain(..) {
            assert!(
                dst.index() < self.components.len(),
                "event sent to unregistered component {dst}"
            );
            self.push(at, dst, msg);
        }
        self.outbox = outbox;
    }

    /// Runs until the queue drains or a component halts the engine.
    pub fn run(&mut self) -> RunLimit {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `deadline` (inclusive of events *at* the deadline), the
    /// queue drains, or a component halts the engine.
    ///
    /// Same-instant events are popped as one batch (one queue min-search
    /// for the whole tie instead of one per event) and delivered in their
    /// `(at, seq)` order; events scheduled during the batch carry strictly
    /// higher sequence numbers, so batching cannot reorder anything. A
    /// halt mid-batch pushes the undelivered remainder back with keys
    /// unchanged, so a later run resumes in the identical order.
    pub fn run_until(&mut self, deadline: SimTime) -> RunLimit {
        self.halt = false;
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut self.batch);
        let limit = loop {
            let first = match self.queue.pop_ready(deadline, &mut batch) {
                Popped::Drained => break RunLimit::Drained,
                Popped::Deadline(next) => {
                    self.now = deadline.min(next);
                    break RunLimit::Deadline;
                }
                Popped::Ready(first) => first,
            };
            let at = first.at();
            assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            if batch.is_empty() {
                // Singleton batch: the hot path, no vec traffic at all.
                self.deliver(at, first.seq(), first.item);
                if self.halt {
                    break RunLimit::Halted;
                }
                continue;
            }
            self.in_batch = batch.len();
            self.deliver(at, first.seq(), first.item);
            let mut drain = batch.drain(..);
            let mut halted = self.halt;
            if !halted {
                for entry in drain.by_ref() {
                    self.in_batch -= 1;
                    self.deliver(at, entry.seq(), entry.item);
                    if self.halt {
                        halted = true;
                        break;
                    }
                }
            }
            if halted {
                for rest in drain {
                    self.queue.push(rest);
                }
                self.in_batch = 0;
                break RunLimit::Halted;
            }
        };
        self.batch = batch;
        self.stats.wall_nanos += t0.elapsed().as_nanos() as u64;
        limit
    }

    /// Runs at most `budget` events; a safety valve against livelocked
    /// component protocols in tests.
    pub fn run_events(&mut self, budget: u64) -> RunLimit {
        self.halt = false;
        let t0 = Instant::now();
        let mut limit = RunLimit::EventBudget;
        for _ in 0..budget {
            if !self.step() {
                limit = RunLimit::Drained;
                break;
            }
            if self.halt {
                limit = RunLimit::Halted;
                break;
            }
        }
        self.stats.wall_nanos += t0.elapsed().as_nanos() as u64;
        limit
    }

    /// Runs under a no-progress watchdog: the engine executes in windows of
    /// `window` simulated time and compares the [`ProgressMeter`] across
    /// windows. A window in which events were delivered but the meter did
    /// not advance means the system is churning without doing useful work
    /// (e.g. a dead link retransmitting into the void while packets sit
    /// stuck), and the run stops with [`WatchdogOutcome::Stalled`] so the
    /// caller can assemble a structured report instead of spinning forever.
    ///
    /// Components signal useful work by calling [`ProgressMeter::tick`]
    /// at their commit points; what counts as progress is the caller's
    /// vocabulary, not the engine's.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn run_watchdog(&mut self, meter: &ProgressMeter, window: SimTime) -> WatchdogOutcome {
        assert!(!window.is_zero(), "watchdog window must be positive");
        let mut last = meter.count();
        loop {
            let deadline = self.now().checked_add(window).unwrap_or(SimTime::MAX);
            match self.run_until(deadline) {
                RunLimit::Drained => return WatchdogOutcome::Drained,
                RunLimit::Halted => return WatchdogOutcome::Halted,
                RunLimit::Deadline | RunLimit::EventBudget => {
                    let count = meter.count();
                    if count == last {
                        return WatchdogOutcome::Stalled {
                            at: self.now(),
                            progress: count,
                        };
                    }
                    last = count;
                }
            }
        }
    }

    /// Immutable access to a registered component, downcast to its concrete
    /// type. Returns `None` if the id is out of range or the type does not
    /// match.
    pub fn get<T: Component<M>>(&self, id: CompId) -> Option<&T> {
        self.components
            .get(id.index())
            .and_then(|c| (c.as_ref() as &dyn Any).downcast_ref::<T>())
    }

    /// Mutable access to a registered component, downcast to its concrete
    /// type.
    pub fn get_mut<T: Component<M>>(&mut self, id: CompId) -> Option<&mut T> {
        self.components
            .get_mut(id.index())
            .and_then(|c| (c.as_mut() as &mut dyn Any).downcast_mut::<T>())
    }

    /// The registered (interned) name of a component.
    pub fn name_of(&self, id: CompId) -> &str {
        self.names
            .get(id.index())
            .map(|n| &**n)
            .unwrap_or("<unregistered>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: Option<CompId>,
        rounds: u32,
        got: Vec<u32>,
    }

    impl Component<Msg> for Pinger {
        fn on_event(&mut self, ev: Msg, ctx: &mut Ctx<'_, Msg>) {
            match ev {
                Msg::Ping(n) => {
                    self.got.push(n);
                    if let Some(peer) = self.peer {
                        ctx.send(peer, SimTime::from_ns(5), Msg::Pong(n));
                    }
                }
                Msg::Pong(n) => {
                    self.got.push(n);
                    if n + 1 < self.rounds {
                        if let Some(peer) = self.peer {
                            ctx.send(peer, SimTime::from_ns(5), Msg::Ping(n + 1));
                        }
                    }
                }
            }
        }
        fn name(&self) -> &str {
            "pinger"
        }
    }

    fn pinger(rounds: u32) -> Pinger {
        Pinger {
            peer: None,
            rounds,
            got: Vec::new(),
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut eng: Engine<Msg> = Engine::new();
        let a = eng.add(pinger(3));
        let b = eng.add(pinger(3));
        eng.get_mut::<Pinger>(a).unwrap().peer = Some(b);
        eng.get_mut::<Pinger>(b).unwrap().peer = Some(a);
        eng.schedule(SimTime::ZERO, b, Msg::Ping(0));
        assert_eq!(eng.run(), RunLimit::Drained);
        // 3 rounds of ping+pong, 5ns per hop, first ping at t=0.
        assert_eq!(eng.now(), SimTime::from_ns(25));
        assert_eq!(eng.get::<Pinger>(b).unwrap().got, vec![0, 1, 2]);
        assert_eq!(eng.get::<Pinger>(a).unwrap().got, vec![0, 1, 2]);
    }

    struct Recorder {
        seen: Vec<u32>,
    }
    impl Component<u32> for Recorder {
        fn on_event(&mut self, ev: u32, _ctx: &mut Ctx<'_, u32>) {
            self.seen.push(ev);
        }
        fn name(&self) -> &str {
            "recorder"
        }
    }

    #[test]
    fn same_time_events_delivered_in_schedule_order() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        for i in 0..100 {
            eng.schedule(SimTime::from_ns(10), r, i);
        }
        eng.run();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, expect);
    }

    #[test]
    fn interleaved_times_sorted() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::from_ns(30), r, 3);
        eng.schedule(SimTime::from_ns(10), r, 1);
        eng.schedule(SimTime::from_ns(20), r, 2);
        eng.run();
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::from_ns(10), r, 1);
        eng.schedule(SimTime::from_ns(50), r, 2);
        assert_eq!(eng.run_until(SimTime::from_ns(20)), RunLimit::Deadline);
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, vec![1]);
        assert_eq!(eng.now(), SimTime::from_ns(20));
        assert_eq!(eng.run(), RunLimit::Drained);
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, vec![1, 2]);
    }

    struct SelfLooper {
        fired: u64,
    }
    impl Component<u32> for SelfLooper {
        fn on_event(&mut self, _ev: u32, ctx: &mut Ctx<'_, u32>) {
            self.fired += 1;
            ctx.send_self(SimTime::from_ns(1), 0);
            if self.fired == 7 {
                ctx.halt();
            }
        }
        fn name(&self) -> &str {
            "looper"
        }
    }

    #[test]
    fn halt_stops_run_and_resumes() {
        let mut eng: Engine<u32> = Engine::new();
        let l = eng.add(SelfLooper { fired: 0 });
        eng.schedule(SimTime::ZERO, l, 0);
        assert_eq!(eng.run(), RunLimit::Halted);
        assert_eq!(eng.get::<SelfLooper>(l).unwrap().fired, 7);
        assert_eq!(eng.run_events(3), RunLimit::EventBudget);
        assert_eq!(eng.get::<SelfLooper>(l).unwrap().fired, 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        for _ in 0..5 {
            eng.schedule(SimTime::ZERO, r, 0);
        }
        eng.run();
        let s = eng.stats();
        assert_eq!(s.events_delivered, 5);
        assert_eq!(s.events_scheduled, 5);
        assert_eq!(s.max_queue_len, 5);
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        assert!(eng.get::<SelfLooper>(r).is_none());
        assert!(eng.get::<Recorder>(r).is_some());
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn schedule_to_unknown_component_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(SimTime::ZERO, CompId(3), 0);
    }

    #[test]
    fn trace_records_recent_events() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.enable_trace(3);
        for i in 0..5 {
            eng.schedule(SimTime::from_ns(i), r, i as u32);
        }
        eng.run();
        let trace = eng.take_trace();
        assert_eq!(trace.len(), 3, "bounded to capacity");
        assert_eq!(trace[0].event, "2");
        assert_eq!(trace[2].event, "4");
        assert_eq!(trace[0].component, "recorder");
    }

    /// Regression: `take_trace` drains but must NOT disable the recorder.
    /// (It previously `take`d the whole `Option`, so the first drain
    /// silently switched tracing off.)
    #[test]
    fn take_trace_drains_and_keeps_recording() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.enable_trace(8);
        eng.schedule(SimTime::ZERO, r, 1);
        eng.run();
        assert_eq!(eng.take_trace().len(), 1);
        assert_eq!(eng.take_trace().len(), 0, "drained");
        // Still enabled: later deliveries are recorded.
        eng.schedule(SimTime::ZERO, r, 2);
        eng.run();
        assert_eq!(eng.trace().count(), 1);
        let trace = eng.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].event, "2");
        // disable_trace is the off switch.
        eng.schedule(SimTime::ZERO, r, 3);
        eng.run();
        assert_eq!(eng.disable_trace().len(), 1);
        eng.schedule(SimTime::ZERO, r, 4);
        eng.run();
        assert_eq!(eng.trace().count(), 0, "off after disable_trace");
        assert_eq!(eng.take_trace().len(), 0);
    }

    /// `enable_trace(0)` clamps to one slot rather than panicking or
    /// recording nothing, and survives repeated drains.
    #[test]
    fn enable_trace_zero_capacity_keeps_latest_event() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.enable_trace(0);
        for i in 0..4u32 {
            eng.schedule(SimTime::from_ns(u64::from(i)), r, i);
        }
        eng.run();
        let trace = eng.take_trace();
        assert_eq!(trace.len(), 1, "capacity clamped to 1");
        assert_eq!(trace[0].event, "3", "keeps the most recent event");
        eng.schedule(SimTime::ZERO, r, 7);
        eng.run();
        let trace = eng.take_trace();
        assert_eq!(trace.len(), 1, "still recording after the drain");
        assert_eq!(trace[0].event, "7");
    }

    /// Property: the recorded trace order IS the engine's documented
    /// `(at, seq)` delivery order, including dense same-instant ties, and
    /// every entry carries the sequence number that proves it.
    #[test]
    fn trace_order_matches_at_seq_delivery_order() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.enable_trace(1000);
        let mut rng = crate::SimRng::new(7);
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for i in 0..400u64 {
            let at = rng.range(25); // picoseconds: lots of exact ties
            eng.schedule(SimTime::from_ps(at), r, i as u32);
            expected.push((at, i));
        }
        expected.sort(); // stable (at, seq) lexicographic reference
        eng.run();
        let trace = eng.take_trace();
        assert_eq!(trace.len(), 400);
        let got: Vec<(u64, u64)> = trace.iter().map(|e| (e.at.as_ps(), e.seq)).collect();
        assert_eq!(got, expected, "trace order == (at, seq) delivery order");
        // Redundant but explicit: (at, seq) is strictly increasing, so ties
        // on `at` are broken by schedule order.
        for w in trace.windows(2) {
            assert!(
                (w[0].at, w[0].seq) < (w[1].at, w[1].seq),
                "trace must be strictly ordered by (at, seq)"
            );
        }
    }

    #[test]
    fn delivery_hook_sees_every_delivery_and_uninstalls() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        let seen: Rc<RefCell<Vec<(u64, u64)>>> = Rc::default();
        let sink = Rc::clone(&seen);
        eng.set_delivery_hook(Box::new(move |at, seq, _dst| {
            sink.borrow_mut().push((at.as_ps(), seq));
        }));
        for i in 0..5u32 {
            eng.schedule(SimTime::from_ns(1), r, i);
        }
        eng.run();
        assert_eq!(seen.borrow().len(), 5);
        assert!(seen.borrow().windows(2).all(|w| w[0] < w[1]));
        eng.clear_delivery_hook();
        eng.schedule(SimTime::ZERO, r, 9);
        eng.run();
        assert_eq!(seen.borrow().len(), 5, "hook removed");
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut eng: Engine<u32> = Engine::new();
            let r = eng.add(Recorder { seen: Vec::new() });
            for i in 0..50u32 {
                eng.schedule(SimTime::from_ns((i as u64 * 7) % 13), r, i);
            }
            eng.run();
            eng.get::<Recorder>(r).unwrap().seen.clone()
        };
        assert_eq!(run(), run());
    }

    /// Pins the indexed heap to the old `BinaryHeap` semantics on a heavy
    /// adversarial mix: many components, duplicate instants, events
    /// scheduled from within deliveries. The expected order is recomputed
    /// with a stable sort by `(at, seq)` — the documented contract.
    #[test]
    fn delivery_order_matches_stable_sort_reference() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        let mut rng = crate::SimRng::new(2024);
        let mut expected: Vec<(u64, u64, u32)> = Vec::new();
        for i in 0..500u32 {
            let at = rng.range(40); // dense ties
            eng.schedule(SimTime::from_ps(at), r, i);
            expected.push((at, u64::from(i), i));
        }
        expected.sort(); // stable, (at, seq) lexicographic
        eng.run();
        let want: Vec<u32> = expected.iter().map(|&(_, _, v)| v).collect();
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, want);
    }

    #[test]
    fn run_events_resumes_where_it_stopped() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        for i in 0..10u32 {
            eng.schedule(SimTime::from_ns(u64::from(i)), r, i);
        }
        assert_eq!(eng.run_events(4), RunLimit::EventBudget);
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, vec![0, 1, 2, 3]);
        assert_eq!(eng.pending_events(), 6);
        assert_eq!(eng.run_events(100), RunLimit::Drained);
        let expect: Vec<u32> = (0..10).collect();
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, expect);
    }

    #[test]
    fn run_until_then_run_events_preserves_order() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        for i in 0..10u32 {
            eng.schedule(SimTime::from_ns(u64::from(i) * 10), r, i);
        }
        assert_eq!(eng.run_until(SimTime::from_ns(35)), RunLimit::Deadline);
        assert_eq!(eng.get::<Recorder>(r).unwrap().seen, vec![0, 1, 2, 3]);
        // New events landing between the deadline and the rest interleave
        // correctly with what was already queued.
        eng.schedule(SimTime::from_ns(10), r, 100); // now + 10ns = 45ns
        assert_eq!(eng.run(), RunLimit::Drained);
        assert_eq!(
            eng.get::<Recorder>(r).unwrap().seen,
            vec![0, 1, 2, 3, 4, 100, 5, 6, 7, 8, 9]
        );
    }

    #[test]
    fn per_component_stats_track_destinations() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.add(Recorder { seen: Vec::new() });
        let b = eng.add(Recorder { seen: Vec::new() });
        for _ in 0..3 {
            eng.schedule(SimTime::ZERO, a, 0);
        }
        eng.schedule(SimTime::ZERO, b, 0);
        eng.run();
        let cs = eng.component_stats();
        assert_eq!(cs[a.index()].scheduled, 3);
        assert_eq!(cs[a.index()].delivered, 3);
        assert_eq!(cs[b.index()].scheduled, 1);
        assert_eq!(cs[b.index()].delivered, 1);
        let named: Vec<_> = eng.component_stats_named().collect();
        assert_eq!(named.len(), 2);
        assert_eq!(named[0].0, "recorder");
        assert_eq!(named[0].1.delivered, 3);
    }

    #[test]
    fn wall_time_accumulates_and_rate_is_finite() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        for i in 0..100u32 {
            eng.schedule(SimTime::from_ns(u64::from(i)), r, i);
        }
        assert_eq!(eng.stats().events_per_wall_second(), 0.0);
        eng.run();
        let s = eng.stats();
        assert!(s.wall_nanos > 0);
        assert!(s.events_per_wall_second() > 0.0);
        assert!(s.events_per_wall_second().is_finite());
    }

    /// The clock can only go backwards through a bug (`step`'s guard is a
    /// hard `assert!` in every profile); the reachable edge is scheduling
    /// into the past, which must be refused at the API boundary.
    #[test]
    #[should_panic(expected = "past")]
    fn schedule_at_into_the_past_panics() {
        let mut eng: Engine<u32> = Engine::new();
        let r = eng.add(Recorder { seen: Vec::new() });
        eng.schedule(SimTime::from_ns(10), r, 1);
        eng.run();
        eng.schedule_at(SimTime::from_ns(10), r, 2); // at `now`: legal
        eng.run();
        eng.schedule_at(SimTime::from_ns(5), r, 3); // before `now`: refused
    }
}
