//! The pending-event priority queue: an indexed 4-ary min-heap.
//!
//! The engine's hot path is pop-deliver-push, so the queue is the single
//! most performance-sensitive structure in the repository. A 4-ary heap
//! stored in one flat `Vec` is roughly half as deep as a binary heap and
//! keeps all four children of a node on the same cache line pair, which
//! measurably beats `std::collections::BinaryHeap` on the engine's
//! ping-pong microbenchmark.
//!
//! Ordering is by a single packed `u128` key — the delivery instant in the
//! high 64 bits and the scheduling sequence number in the low 64 — so the
//! comparison is one wide integer compare and the engine's tie-break
//! contract (same instant ⇒ schedule order) is structural rather than
//! relying on a hand-written `Ord`.

use crate::time::SimTime;

/// A queue entry: the packed `(at, seq)` key plus an opaque payload.
///
/// Shared by both queue implementations ([`EventHeap`] here and
/// [`CalendarQueue`](crate::calendar::CalendarQueue)), so migrating entries
/// between them preserves keys exactly.
#[derive(Clone, Debug)]
pub(crate) struct Entry<T> {
    /// Packed `(at, seq)`: delivery instant in the high 64 bits, schedule
    /// sequence in the low 64, so one wide compare orders entries.
    pub(crate) key: u128,
    /// The payload (the engine stores destination + message here).
    pub(crate) item: T,
}

impl<T> Entry<T> {
    /// Packs `(at, seq)` so that `u128` order equals lexicographic
    /// `(at, seq)` order.
    #[inline]
    pub(crate) fn new(at: SimTime, seq: u64, item: T) -> Self {
        Entry {
            key: (u128::from(at.as_ps()) << 64) | u128::from(seq),
            item,
        }
    }

    /// The delivery instant encoded in the key.
    pub(crate) fn at(&self) -> SimTime {
        SimTime::from_ps((self.key >> 64) as u64)
    }

    /// The scheduling sequence number encoded in the key.
    pub(crate) fn seq(&self) -> u64 {
        self.key as u64
    }

    /// The delivery instant as raw picoseconds (the calendar queue's
    /// bucket hash works on this).
    pub(crate) fn at_ps(&self) -> u64 {
        (self.key >> 64) as u64
    }
}

const ARITY: usize = 4;

/// An indexed d-ary (d = 4) min-heap over packed-key entries.
#[derive(Clone, Debug)]
pub(crate) struct EventHeap<T> {
    items: Vec<Entry<T>>,
}

impl<T> EventHeap<T> {
    pub(crate) fn new() -> Self {
        EventHeap { items: Vec::new() }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// The minimum entry, if any.
    #[inline]
    pub(crate) fn peek(&self) -> Option<&Entry<T>> {
        self.items.first()
    }

    /// Inserts an entry in O(log₄ n).
    #[inline]
    pub(crate) fn push(&mut self, entry: Entry<T>) {
        self.items.push(entry);
        self.sift_up(self.items.len() - 1);
    }

    /// Removes and returns the minimum entry in O(4·log₄ n).
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry<T>> {
        let len = self.items.len();
        match len {
            0 => None,
            1 => self.items.pop(),
            _ => {
                let top = self.items.swap_remove(0);
                self.sift_down(0);
                Some(top)
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.items[i].key >= self.items[parent].key {
                break;
            }
            self.items.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.items.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut min = first_child;
            for c in first_child + 1..last_child {
                if self.items[c].key < self.items[min].key {
                    min = c;
                }
            }
            if self.items[min].key >= self.items[i].key {
                break;
            }
            self.items.swap(i, min);
            i = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(h: &mut EventHeap<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push((e.at(), e.item));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for (seq, ns) in [30u64, 10, 20, 25, 5].into_iter().enumerate() {
            h.push(Entry::new(SimTime::from_ns(ns), seq as u64, ns as u32));
        }
        let times: Vec<u64> = drain(&mut h).iter().map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut h = EventHeap::new();
        // Push in shuffled sequence order at one instant.
        for seq in [3u64, 0, 4, 1, 2] {
            h.push(Entry::new(SimTime::from_ns(7), seq, seq as u32));
        }
        let items: Vec<u32> = drain(&mut h).iter().map(|&(_, v)| v).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn key_roundtrips_time() {
        let e = Entry::new(SimTime::MAX, u64::MAX, ());
        assert_eq!(e.at(), SimTime::MAX);
        let e = Entry::new(SimTime::from_ps(123), 9, ());
        assert_eq!(e.at(), SimTime::from_ps(123));
    }

    /// Model check against a sorted reference over an adversarial mix of
    /// duplicate instants and interleaved push/pop. The harness lives in
    /// `queue::model` and runs against the calendar queue too, pinning
    /// both implementations to the identical pop order.
    #[test]
    fn matches_reference_ordering() {
        let mut h: EventHeap<()> = EventHeap::new();
        crate::queue::model::check_against_reference(&mut h, 42, 50);
    }
}
