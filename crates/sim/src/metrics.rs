//! A small counters/gauges/time-series registry for simulation metrics.
//!
//! The engine's [`EngineStats`](crate::EngineStats) and per-component
//! counters describe the *scheduler*; this registry is for the *simulated
//! hardware*: link utilization, FIFO depths, credit-stall time, per-node
//! operation mixes. Instruments are named once (get-or-create by name) and
//! then updated through cheap integer ids, so hot paths never hash or
//! allocate.
//!
//! Three instrument kinds:
//!
//! - **counter** — a monotonically increasing `u64` (packets forwarded,
//!   picoseconds stalled).
//! - **gauge** — a last-written `f64` with a tracked maximum (current
//!   queue depth, utilization).
//! - **series** — `(SimTime, f64)` samples appended by a periodic
//!   sampler, for post-run plotting and export.
//!
//! Iteration order is registration order everywhere, keeping reports and
//! exported JSON deterministic across runs.

use std::collections::HashMap;
use std::fmt;

use crate::time::SimTime;

/// Handle of a registered counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GaugeId(usize);

/// Handle of a registered time series.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SeriesId(usize);

/// One time-series observation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Sample {
    /// Simulated instant of the observation.
    pub at: SimTime,
    /// Observed value.
    pub value: f64,
}

#[derive(Debug)]
struct Gauge {
    value: f64,
    max: f64,
}

/// The registry. See the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<Box<str>>,
    counters: Vec<u64>,
    gauge_names: Vec<Box<str>>,
    gauges: Vec<Gauge>,
    series_names: Vec<Box<str>>,
    series: Vec<Vec<Sample>>,
    lookup: HashMap<Box<str>, Instrument>,
}

/// What a name resolves to (each namespace is separate per kind, but one
/// name may only be used for one kind — re-registering as another kind
/// panics, catching copy-paste mistakes early).
#[derive(Clone, Copy, Debug)]
enum Instrument {
    Counter(usize),
    Gauge(usize),
    Series(usize),
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.lookup.get(name) {
            Some(Instrument::Counter(i)) => CounterId(*i),
            Some(other) => panic!("metric {name:?} already registered as {other:?}"),
            None => {
                let i = self.counters.len();
                self.counter_names.push(name.into());
                self.counters.push(0);
                self.lookup.insert(name.into(), Instrument::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Adds `delta` to a counter.
    pub fn inc(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Gets or creates the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.lookup.get(name) {
            Some(Instrument::Gauge(i)) => GaugeId(*i),
            Some(other) => panic!("metric {name:?} already registered as {other:?}"),
            None => {
                let i = self.gauges.len();
                self.gauge_names.push(name.into());
                self.gauges.push(Gauge {
                    value: 0.0,
                    max: f64::NEG_INFINITY,
                });
                self.lookup.insert(name.into(), Instrument::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Sets a gauge's current value (its maximum is tracked automatically).
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0];
        g.value = value;
        if value > g.max {
            g.max = value;
        }
    }

    /// Last value written to a gauge (0.0 before the first write).
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Largest value ever written to a gauge (0.0 before the first write).
    pub fn gauge_max(&self, id: GaugeId) -> f64 {
        let m = self.gauges[id.0].max;
        if m == f64::NEG_INFINITY {
            0.0
        } else {
            m
        }
    }

    /// Gets or creates the time series named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument kind.
    pub fn series(&mut self, name: &str) -> SeriesId {
        match self.lookup.get(name) {
            Some(Instrument::Series(i)) => SeriesId(*i),
            Some(other) => panic!("metric {name:?} already registered as {other:?}"),
            None => {
                let i = self.series.len();
                self.series_names.push(name.into());
                self.series.push(Vec::new());
                self.lookup.insert(name.into(), Instrument::Series(i));
                SeriesId(i)
            }
        }
    }

    /// Appends one sample to a series.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last recorded sample — the
    /// sampler drives forward in simulated time, so a regression is a bug.
    pub fn record(&mut self, id: SeriesId, at: SimTime, value: f64) {
        let s = &mut self.series[id.0];
        if let Some(last) = s.last() {
            assert!(at >= last.at, "series sample time went backwards");
        }
        s.push(Sample { at, value });
    }

    /// The samples of a series, in recording order.
    pub fn samples(&self, id: SeriesId) -> &[Sample] {
        &self.series[id.0]
    }

    /// Looks up a counter's value by name.
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.lookup.get(name) {
            Some(Instrument::Counter(i)) => Some(self.counters[*i]),
            _ => None,
        }
    }

    /// Looks up a gauge's `(last, max)` by name.
    pub fn gauge_by_name(&self, name: &str) -> Option<(f64, f64)> {
        match self.lookup.get(name) {
            Some(Instrument::Gauge(i)) => {
                let g = &self.gauges[*i];
                let max = if g.max == f64::NEG_INFINITY {
                    0.0
                } else {
                    g.max
                };
                Some((g.value, max))
            }
            _ => None,
        }
    }

    /// Looks up a series' samples by name.
    pub fn series_by_name(&self, name: &str) -> Option<&[Sample]> {
        match self.lookup.get(name) {
            Some(Instrument::Series(i)) => Some(&self.series[*i]),
            _ => None,
        }
    }

    /// All counters as `(name, value)`, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(|n| &**n)
            .zip(self.counters.iter().copied())
    }

    /// All gauges as `(name, last, max)`, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64, f64)> {
        self.gauge_names
            .iter()
            .zip(self.gauges.iter())
            .map(|(n, g)| {
                let max = if g.max == f64::NEG_INFINITY {
                    0.0
                } else {
                    g.max
                };
                (&**n, g.value, max)
            })
    }

    /// All series as `(name, samples)`, in registration order.
    pub fn all_series(&self) -> impl Iterator<Item = (&str, &[Sample])> {
        self.series_names
            .iter()
            .zip(self.series.iter())
            .map(|(n, s)| (&**n, s.as_slice()))
    }

    /// Total number of registered instruments.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.series.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.counters() {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v, max) in self.gauges() {
            writeln!(f, "gauge   {name} = {v} (max {max})")?;
        }
        for (name, s) in self.all_series() {
            writeln!(f, "series  {name}: {} samples", s.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("fabric.packets");
        let a2 = m.counter("fabric.packets");
        assert_eq!(a, a2, "same name, same id");
        m.inc(a, 3);
        m.inc(a2, 4);
        assert_eq!(m.counter_value(a), 7);
        assert_eq!(m.counter_by_name("fabric.packets"), Some(7));
        assert_eq!(m.counter_by_name("absent"), None);
    }

    #[test]
    fn gauges_track_last_and_max() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("fifo.depth");
        assert_eq!(m.gauge_value(g), 0.0);
        assert_eq!(m.gauge_max(g), 0.0);
        m.set_gauge(g, 4.0);
        m.set_gauge(g, 9.0);
        m.set_gauge(g, 2.0);
        assert_eq!(m.gauge_value(g), 2.0);
        assert_eq!(m.gauge_max(g), 9.0);
    }

    #[test]
    fn series_append_in_time_order() {
        let mut m = MetricsRegistry::new();
        let s = m.series("link.util");
        m.record(s, SimTime::from_ns(10), 0.5);
        m.record(s, SimTime::from_ns(10), 0.6); // equal instants allowed
        m.record(s, SimTime::from_ns(20), 0.7);
        let samples = m.samples(s);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2].at, SimTime::from_ns(20));
        assert_eq!(m.series_by_name("link.util").unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn series_reject_time_regressions() {
        let mut m = MetricsRegistry::new();
        let s = m.series("x");
        m.record(s, SimTime::from_ns(10), 1.0);
        m.record(s, SimTime::from_ns(5), 2.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let mut m = MetricsRegistry::new();
        m.counter("x");
        m.gauge("x");
    }

    #[test]
    fn iteration_is_registration_order() {
        let mut m = MetricsRegistry::new();
        m.counter("b");
        m.counter("a");
        m.gauge("z");
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        let rendered = m.to_string();
        assert!(rendered.contains("counter b = 0"));
        assert!(rendered.contains("gauge   z = 0"));
    }
}
