//! E8: alarm-driven page replication (§2.2.6).

use std::fmt;

use telegraphos::{ClusterBuilder, ReplicatePolicy};
use tg_sim::SimTime;
use tg_workloads::hot_page_reader;

/// One policy measurement.
#[derive(Clone, Debug)]
pub struct ReplicationRow {
    /// Policy label.
    pub policy: String,
    /// Mean latency over all data reads (µs).
    pub mean_read_us: f64,
    /// Remote reads performed.
    pub remote_reads: u64,
    /// Local reads performed.
    pub local_reads: u64,
    /// Pages replicated.
    pub replications: u64,
    /// Workload completion (µs).
    pub total_us: f64,
}

/// Result of [`access_counter_replication`].
#[derive(Clone, Debug)]
pub struct ReplicationSweep {
    /// Static policies plus one row per alarm threshold.
    pub rows: Vec<ReplicationRow>,
}

/// E8: a hot-page reader under (a) never replicate, (b) alarm-based
/// replication at several thresholds — the §2.2.6 policy the paper's
/// companion studies (\[21, 22\]) evaluate.
pub fn access_counter_replication(reads: u64, thresholds: &[u16]) -> ReplicationSweep {
    let mut rows = Vec::new();
    rows.push(run(reads, None));
    for &t in thresholds {
        rows.push(run(reads, Some(t)));
    }
    ReplicationSweep { rows }
}

fn run(reads: u64, threshold: Option<u16>) -> ReplicationRow {
    let policy = match threshold {
        None => ReplicatePolicy::Never,
        Some(_) => ReplicatePolicy::OnAlarm,
    };
    let mut cluster = ClusterBuilder::new(2).replicate_policy(policy).build();
    let page = cluster.alloc_shared(1);
    if let Some(t) = threshold {
        cluster.arm_counters(0, &page, t, u16::MAX);
    }
    cluster.set_process(0, hot_page_reader(&page, reads, SimTime::from_us(20)));
    cluster.run();
    let stats = cluster.node(0).stats();
    let mut all_reads = stats.local_reads.clone();
    all_reads.merge(&stats.remote_reads);
    ReplicationRow {
        policy: match threshold {
            None => "never (always remote)".into(),
            Some(t) => format!("alarm at {t} accesses"),
        },
        mean_read_us: all_reads.mean(),
        remote_reads: stats.remote_reads.count(),
        local_reads: stats.local_reads.count(),
        replications: stats.replications,
        total_us: cluster.now().as_us_f64(),
    }
}

impl fmt::Display for ReplicationSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E8 / §2.2.6 — page-access counters and alarm-based replication"
        )?;
        writeln!(
            f,
            "{:<24} {:>10} {:>8} {:>8} {:>6} {:>12}",
            "policy", "read (us)", "remote", "local", "repl", "total (us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:>10.2} {:>8} {:>8} {:>6} {:>12.1}",
                r.policy, r.mean_read_us, r.remote_reads, r.local_reads, r.replications, r.total_us
            )?;
        }
        Ok(())
    }
}
