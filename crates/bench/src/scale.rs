//! Extension experiments: remote-memory paging (E11, ref \[21\]), network
//! scaling (E12), and synchronization contention (E13).

use std::fmt;

use telegraphos::sync::{LockAcquire, LockRelease, SyncStep, TicketAcquire, TicketRelease};
use telegraphos::{Action, Backing, ClusterBuilder, Process, Resume, Script};
use tg_net::Topology;
use tg_wire::NodeId;
use tg_workloads::stream_reads;

/// One paging measurement.
#[derive(Clone, Debug)]
pub struct PagingRow {
    /// Backing-store label.
    pub backing: String,
    /// Total workload time (µs).
    pub total_us: f64,
    /// Page faults taken.
    pub faults: u64,
    /// Mean cost per fault (µs).
    pub per_fault_us: f64,
}

/// Result of [`remote_paging`].
#[derive(Clone, Debug)]
pub struct PagingSweep {
    /// Disk vs remote-memory rows.
    pub rows: Vec<PagingRow>,
}

/// E11 / ref \[21\]: a thrashing sweep over `pages` pages with `capacity`
/// resident slots, paged against a disk and against remote memory.
pub fn remote_paging(pages: u32, capacity: usize, passes: u32) -> PagingSweep {
    let run = |backing: Backing, label: &str| -> PagingRow {
        let nodes = if matches!(backing, Backing::Disk) {
            1
        } else {
            2
        };
        let mut cluster = ClusterBuilder::new(nodes).build();
        let vas = cluster.make_paged(0, backing, pages, capacity);
        let mut actions = Vec::new();
        for _ in 0..passes {
            for va in &vas {
                actions.push(Action::Read(*va));
            }
        }
        cluster.set_process(0, Script::new(actions));
        cluster.run();
        let faults = cluster.node(0).stats().faults;
        let total_us = cluster.now().as_us_f64();
        PagingRow {
            backing: label.to_string(),
            total_us,
            faults,
            per_fault_us: if faults > 0 {
                total_us / faults as f64
            } else {
                0.0
            },
        }
    };
    PagingSweep {
        rows: vec![
            run(Backing::Disk, "disk (15 ms/page)"),
            run(
                Backing::RemoteMemory {
                    server: NodeId::new(1),
                },
                "remote memory (Telegraphos)",
            ),
        ],
    }
}

impl fmt::Display for PagingSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E11 / ref [21] — paging a thrashing working set: disk vs remote memory"
        )?;
        writeln!(
            f,
            "{:<30} {:>12} {:>8} {:>14}",
            "backing", "total (us)", "faults", "per fault (us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>12.0} {:>8} {:>14.1}",
                r.backing, r.total_us, r.faults, r.per_fault_us
            )?;
        }
        if self.rows.len() == 2 && self.rows[1].total_us > 0.0 {
            writeln!(
                f,
                "speedup: {:.0}x",
                self.rows[0].total_us / self.rows[1].total_us
            )?;
        }
        Ok(())
    }
}

/// One hop-count measurement.
#[derive(Clone, Copy, Debug)]
pub struct HopRow {
    /// Switches between the endpoints.
    pub switches: u16,
    /// Remote read latency (µs).
    pub read_us: f64,
}

/// Result of [`hop_scaling`].
#[derive(Clone, Debug)]
pub struct HopScaling {
    /// One row per chain length.
    pub rows: Vec<HopRow>,
}

/// E12: remote-read latency as the fabric grows — each switch adds its
/// cut-through latency plus serialization twice (request + response).
pub fn hop_scaling(max_switches: u16) -> HopScaling {
    let rows = (1..=max_switches)
        .map(|n| {
            let (topo, dst) = if n == 1 {
                (Topology::star(2), 1u16)
            } else {
                (Topology::chain(n), n - 1)
            };
            let nodes = topo.endpoint_count() as u16;
            let mut cluster = ClusterBuilder::new(nodes).topology(topo).build();
            // Page on the far node.
            let page = cluster.alloc_shared(dst);
            cluster.set_process(0, stream_reads(&page, 200));
            cluster.run();
            HopRow {
                switches: n,
                read_us: cluster.node(0).stats().remote_reads.mean(),
            }
        })
        .collect();
    HopScaling { rows }
}

impl fmt::Display for HopScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E12 — remote-read latency vs switch count")?;
        writeln!(f, "{:>10} {:>12}", "switches", "read (us)")?;
        for r in &self.rows {
            writeln!(f, "{:>10} {:>12.2}", r.switches, r.read_us)?;
        }
        Ok(())
    }
}

/// One contention measurement.
#[derive(Clone, Copy, Debug)]
pub struct LockRow {
    /// Contending nodes.
    pub nodes: u16,
    /// Total critical sections completed.
    pub sections: u64,
    /// Mean time per critical section, test-and-set lock (µs).
    pub per_section_us: f64,
    /// Mean time per critical section, ticket lock (µs).
    pub ticket_us: f64,
}

/// Result of [`lock_contention`].
#[derive(Clone, Debug)]
pub struct LockContention {
    /// One row per cluster size.
    pub rows: Vec<LockRow>,
}

/// A looping locked-increment worker (acquire, increment, release).
struct LockWorker {
    lock: tg_mem::VAddr,
    data: tg_mem::VAddr,
    remaining: u32,
    state: LwState,
    acq: LockAcquire,
    rel: LockRelease,
    temp: u64,
}

enum LwState {
    Acquire,
    Read,
    Write,
    Release(u8),
}

impl LockWorker {
    fn new(lock: tg_mem::VAddr, data: tg_mem::VAddr, n: u32) -> Self {
        LockWorker {
            lock,
            data,
            remaining: n,
            state: LwState::Acquire,
            acq: LockAcquire::new(lock),
            rel: LockRelease::new(lock),
            temp: 0,
        }
    }
}

impl Process for LockWorker {
    fn resume(&mut self, r: Resume) -> Action {
        match self.state {
            LwState::Acquire => match self.acq.step(r) {
                SyncStep::Do(a) => a,
                SyncStep::Ready => {
                    self.state = LwState::Read;
                    Action::Read(self.data)
                }
            },
            LwState::Read => {
                self.temp = r.value();
                self.state = LwState::Write;
                Action::Write(self.data, self.temp + 1)
            }
            LwState::Write => {
                self.state = LwState::Release(0);
                self.rel = LockRelease::new(self.lock);
                match self.rel.step(Resume::Start) {
                    SyncStep::Do(a) => a,
                    SyncStep::Ready => unreachable!("release starts with a fence"),
                }
            }
            LwState::Release(step) => {
                if step == 0 {
                    self.state = LwState::Release(1);
                    match self.rel.step(r) {
                        SyncStep::Do(a) => a,
                        SyncStep::Ready => unreachable!("two-step release"),
                    }
                } else {
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        return Action::Halt;
                    }
                    self.state = LwState::Acquire;
                    self.acq = LockAcquire::new(self.lock);
                    self.resume(Resume::Start)
                }
            }
        }
    }
}

/// E13: lock throughput under contention — `per_node` critical sections
/// per node, cluster sizes 2..=`max_nodes`, for both the test-and-set
/// spinlock and the FIFO ticket lock.
pub fn lock_contention(max_nodes: u16, per_node: u32) -> LockContention {
    let rows = (2..=max_nodes)
        .map(|n| {
            let sections = u64::from(per_node) * u64::from(n - 1);
            let tas = {
                let mut cluster = ClusterBuilder::new(n).build();
                let page = cluster.alloc_shared(0);
                for i in 1..n {
                    cluster.set_process(i, LockWorker::new(page.va(0), page.va(8), per_node));
                }
                cluster.run();
                cluster.now().as_us_f64() / sections as f64
            };
            let ticket = {
                let mut cluster = ClusterBuilder::new(n).build();
                let page = cluster.alloc_shared(0);
                for i in 1..n {
                    cluster.set_process(
                        i,
                        TicketWorker::new(page.va(0), page.va(8), page.va(16), per_node),
                    );
                }
                cluster.run();
                assert!(cluster.all_halted(), "ticket workers deadlocked");
                cluster.now().as_us_f64() / sections as f64
            };
            LockRow {
                nodes: n,
                sections,
                per_section_us: tas,
                ticket_us: ticket,
            }
        })
        .collect();
    LockContention { rows }
}

/// A looping ticket-locked increment worker.
struct TicketWorker {
    ticket_word: tg_mem::VAddr,
    serving_word: tg_mem::VAddr,
    data: tg_mem::VAddr,
    remaining: u32,
    state: TwState,
    acq: TicketAcquire,
    rel: TicketRelease,
    temp: u64,
}

enum TwState {
    Acquire,
    Read,
    Write,
    Release(u8),
}

impl TicketWorker {
    fn new(
        ticket_word: tg_mem::VAddr,
        serving_word: tg_mem::VAddr,
        data: tg_mem::VAddr,
        n: u32,
    ) -> Self {
        TicketWorker {
            ticket_word,
            serving_word,
            data,
            remaining: n,
            state: TwState::Acquire,
            acq: TicketAcquire::new(ticket_word, serving_word),
            rel: TicketRelease::new(serving_word, 0),
            temp: 0,
        }
    }
}

impl Process for TicketWorker {
    fn resume(&mut self, r: Resume) -> Action {
        match self.state {
            TwState::Acquire => match self.acq.step(r) {
                SyncStep::Do(a) => a,
                SyncStep::Ready => {
                    self.state = TwState::Read;
                    Action::Read(self.data)
                }
            },
            TwState::Read => {
                self.temp = r.value();
                self.state = TwState::Write;
                Action::Write(self.data, self.temp + 1)
            }
            TwState::Write => {
                self.state = TwState::Release(0);
                self.rel = TicketRelease::new(self.serving_word, self.acq.ticket());
                match self.rel.step(Resume::Start) {
                    SyncStep::Do(a) => a,
                    SyncStep::Ready => unreachable!("release starts with a fence"),
                }
            }
            TwState::Release(step) => {
                if step == 0 {
                    self.state = TwState::Release(1);
                    match self.rel.step(r) {
                        SyncStep::Do(a) => a,
                        SyncStep::Ready => unreachable!("two-step release"),
                    }
                } else {
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        return Action::Halt;
                    }
                    self.state = TwState::Acquire;
                    self.acq = TicketAcquire::new(self.ticket_word, self.serving_word);
                    self.resume(Resume::Start)
                }
            }
        }
    }
}

impl fmt::Display for LockContention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E13 — fetch&store spinlock under contention (fence-embedding UNLOCK)"
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>18} {:>14}",
            "nodes", "sections", "test&set (us)", "ticket (us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>10} {:>18.2} {:>14.2}",
                r.nodes, r.sections, r.per_section_us, r.ticket_us
            )?;
        }
        Ok(())
    }
}

/// One multiprogramming measurement.
#[derive(Clone, Debug)]
pub struct OverlapRow {
    /// Configuration label.
    pub config: String,
    /// Completion time (µs).
    pub total_us: f64,
}

/// Result of [`multiprogramming_overlap`].
#[derive(Clone, Debug)]
pub struct MultiprogrammingOverlap {
    /// Measured configurations.
    pub rows: Vec<OverlapRow>,
    /// Sum of the two single-process runs (no overlap baseline).
    pub serial_sum_us: f64,
}

/// E15: multiprogramming on one workstation — a paging-bound process and a
/// compute-bound process. OS-level blocks (pager faults) let the scheduler
/// overlap them; the §2.2.4 contexts let both use the HIB without any
/// state save/restore.
pub fn multiprogramming_overlap(faults: u32, compute_chunks: u32) -> MultiprogrammingOverlap {
    let pager_run = |add_compute: bool| {
        let mut cluster = ClusterBuilder::new(2).build();
        let pages = cluster.make_paged(
            0,
            telegraphos::Backing::RemoteMemory {
                server: NodeId::new(1),
            },
            faults,
            1,
        );
        let acts: Vec<Action> = pages.iter().map(|va| Action::Read(*va)).collect();
        cluster.set_process(0, Script::new(acts));
        if add_compute {
            cluster.add_process(
                0,
                Script::new(
                    (0..compute_chunks)
                        .map(|_| Action::Compute(tg_sim::SimTime::from_us(10)))
                        .collect(),
                ),
            );
        }
        cluster.run();
        assert!(cluster.all_halted(), "overlap run deadlocked");
        cluster.now().as_us_f64()
    };
    let paging_only = pager_run(false);
    let compute_only = f64::from(compute_chunks) * 10.0;
    let together = pager_run(true);
    MultiprogrammingOverlap {
        rows: vec![
            OverlapRow {
                config: "paging process alone".into(),
                total_us: paging_only,
            },
            OverlapRow {
                config: "compute process alone".into(),
                total_us: compute_only,
            },
            OverlapRow {
                config: "both (multiprogrammed)".into(),
                total_us: together,
            },
        ],
        serial_sum_us: paging_only + compute_only,
    }
}

impl fmt::Display for MultiprogrammingOverlap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E15 — multiprogramming with per-process contexts (§2.2.4)"
        )?;
        writeln!(f, "{:<26} {:>12}", "configuration", "total (us)")?;
        for r in &self.rows {
            writeln!(f, "{:<26} {:>12.0}", r.config, r.total_us)?;
        }
        writeln!(f, "{:<26} {:>12.0}", "serial sum", self.serial_sum_us)?;
        let together = self.rows.last().map(|r| r.total_us).unwrap_or(0.0);
        if together > 0.0 {
            writeln!(
                f,
                "overlap recovered: {:.0}% of the shorter job",
                (self.serial_sum_us - together)
                    / self.rows[..2]
                        .iter()
                        .map(|r| r.total_us)
                        .fold(f64::INFINITY, f64::min)
                    * 100.0
            )?;
        }
        Ok(())
    }
}

/// One incast measurement.
#[derive(Clone, Copy, Debug)]
pub struct IncastRow {
    /// Concurrent senders.
    pub senders: u16,
    /// Aggregate delivered write throughput (writes/µs).
    pub throughput: f64,
    /// Worst/best sender completion ratio (1.0 = perfectly fair).
    pub fairness: f64,
}

/// Result of [`incast_congestion`].
#[derive(Clone, Debug)]
pub struct IncastCongestion {
    /// One row per sender count.
    pub rows: Vec<IncastRow>,
}

/// E16: incast — many senders blast remote writes at one home node. The
/// credit back-pressure must saturate aggregate throughput at the
/// receiver's service rate without starving anyone.
///
/// Fairness note: the simulator is deterministic, and in a perfectly
/// symmetric incast every contention decision is a timestamp tie, broken
/// the same way every cycle — so issue-completion times skew toward the
/// earlier-registered senders even though every sender makes continuous
/// progress. Real systems see jitter that randomizes these ties.
pub fn incast_congestion(max_senders: u16, writes_each: u64) -> IncastCongestion {
    let rows = (1..=max_senders)
        .map(|s| {
            let n = s + 1;
            let mut cluster = ClusterBuilder::new(n).build();
            let page = cluster.alloc_shared(0);
            for i in 1..n {
                // Disjoint word ranges per sender.
                let base = u64::from(i) * 128;
                let acts: Vec<Action> = (0..writes_each)
                    .map(|k| Action::Write(page.va((base + (k % 128)) * 8), k + 1))
                    .collect();
                cluster.set_process(i, Script::new(acts));
            }
            cluster.run();
            assert!(cluster.all_halted(), "incast deadlocked at {s} senders");
            let total_us = cluster.now().as_us_f64();
            let done: Vec<f64> = (1..n)
                .map(|i| {
                    cluster
                        .node(i)
                        .stats()
                        .halted_at
                        .expect("halted")
                        .as_us_f64()
                })
                .collect();
            let worst = done.iter().cloned().fold(0.0_f64, f64::max);
            let best = done.iter().cloned().fold(f64::INFINITY, f64::min);
            IncastRow {
                senders: s,
                throughput: (u64::from(s) * writes_each) as f64 / total_us,
                fairness: if worst > 0.0 { best / worst } else { 1.0 },
            }
        })
        .collect();
    IncastCongestion { rows }
}

impl fmt::Display for IncastCongestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E16 — incast: senders blasting one home node (credit back-pressure)"
        )?;
        writeln!(
            f,
            "{:>9} {:>22} {:>10}",
            "senders", "throughput (wr/us)", "fairness"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>9} {:>22.2} {:>10.2}",
                r.senders, r.throughput, r.fairness
            )?;
        }
        Ok(())
    }
}
