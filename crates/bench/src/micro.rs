//! Micro-benchmark experiments: Table 1, the §3.2 latency table, the
//! batch-write sweep, fence consistency, and the messaging comparison.

use std::fmt;

use telegraphos::{Action, ClusterBuilder, Script};
use tg_hw::HwConfig;
use tg_net::Topology;
use tg_sim::SimTime;
use tg_wire::{NodeId, TimingConfig};
use tg_workloads::{message_ping, message_pong, stream_reads, stream_writes};

/// E1: regenerates Table 1 from the hardware-cost model.
pub fn table1() -> Table1 {
    Table1 {
        built: HwConfig::telegraphos_i().inventory(),
        with_cam: HwConfig::telegraphos_i().with_cam(16).inventory(),
    }
}

/// Result of [`table1`].
#[derive(Debug)]
pub struct Table1 {
    /// Telegraphos I as built.
    pub built: tg_hw::Inventory,
    /// With the proposed 16-entry pending-write CAM.
    pub with_cam: tg_hw::Inventory,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E1 / Table 1 — gate count for Telegraphos I HIB")?;
        writeln!(f, "{}", self.built)?;
        writeln!(
            f,
            "paper: message subtotal 3300 gates / 4.5 Kbit; shared-memory"
        )?;
        writeln!(
            f,
            "       subtotal 2700 gates / ~2500 Kbit; MPM 128 Mbit DRAM"
        )?;
        writeln!(f)?;
        writeln!(f, "ablation — §2.3.4 pending-write CAM added:")?;
        writeln!(f, "{}", self.with_cam)
    }
}

/// E2: the §3.2 basic-latency table on the two-workstation testbed.
pub fn basic_latency(timing: TimingConfig) -> BasicLatency {
    let ops = 2_000u64;
    let mut cluster = ClusterBuilder::new(2).timing(timing.clone()).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(0, stream_writes(&page, ops));
    cluster.run();
    let write_us = cluster.node(0).stats().remote_writes.mean();

    let mut cluster = ClusterBuilder::new(2).timing(timing).build();
    let page = cluster.alloc_shared(1);
    cluster.set_process(0, stream_reads(&page, 500));
    cluster.run();
    let read_us = cluster.node(0).stats().remote_reads.mean();
    BasicLatency { read_us, write_us }
}

/// Result of [`basic_latency`].
#[derive(Clone, Copy, Debug)]
pub struct BasicLatency {
    /// Measured remote-read latency (µs).
    pub read_us: f64,
    /// Measured sustained remote-write cost (µs).
    pub write_us: f64,
}

impl fmt::Display for BasicLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E2 / §3.2 — basic operation latency (2 nodes, 1 switch)")?;
        writeln!(f, "{:<16} {:>10} {:>10}", "Operation", "paper", "measured")?;
        writeln!(
            f,
            "{:<16} {:>8.1}us {:>8.2}us",
            "Remote Read", 7.2, self.read_us
        )?;
        writeln!(
            f,
            "{:<16} {:>8.2}us {:>8.2}us",
            "Remote Write", 0.70, self.write_us
        )
    }
}

/// E3: write bursts of various sizes; short bursts issue at TurboChannel
/// speed (< 0.5 µs/write, §3.2), long streams at the network service rate.
pub fn batch_writes(sizes: &[u64]) -> BatchWrites {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut cluster = ClusterBuilder::new(2).build();
        let page = cluster.alloc_shared(1);
        cluster.set_process(0, stream_writes(&page, n));
        cluster.run();
        let issued = cluster
            .node(0)
            .stats()
            .halted_at
            .expect("writer halted")
            .as_us_f64();
        rows.push(BatchRow {
            n,
            total_us: issued,
            per_write_us: issued / n as f64,
        });
    }
    BatchWrites { rows }
}

/// One burst size measurement.
#[derive(Clone, Copy, Debug)]
pub struct BatchRow {
    /// Writes in the burst.
    pub n: u64,
    /// CPU-side time to issue the whole burst (µs).
    pub total_us: f64,
    /// Per-write issue cost (µs).
    pub per_write_us: f64,
}

/// Result of [`batch_writes`].
#[derive(Clone, Debug)]
pub struct BatchWrites {
    /// One row per burst size.
    pub rows: Vec<BatchRow>,
}

impl BatchWrites {
    /// The row for a given burst size, if measured.
    pub fn row(&self, n: u64) -> Option<&BatchRow> {
        self.rows.iter().find(|r| r.n == n)
    }
}

impl fmt::Display for BatchWrites {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E3 / §3.2 — remote-write bursts (paper: 100 writes < 50us;"
        )?;
        writeln!(f, "long streams at the network rate, ~0.70us each)")?;
        writeln!(
            f,
            "{:>8} {:>12} {:>12}",
            "writes", "total (us)", "per write"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12.1} {:>12.3}",
                r.n, r.total_us, r.per_write_us
            )?;
        }
        Ok(())
    }
}

/// E9: the §2.3.5 flag/data race — stale reads without a fence, safety
/// with one — plus the measured fence cost.
pub fn fence_consistency() -> FenceConsistency {
    let run = |with_fence: bool| -> (u64, f64) {
        let topo = Topology::chain(6);
        let mut cluster = ClusterBuilder::new(6).topology(topo).build();
        let data = cluster.alloc_shared(5);
        let flag = cluster.alloc_shared(1);
        let out = cluster.alloc_shared(2);
        cluster.make_coherent(&data, &[0, 2]);
        cluster.make_coherent(&flag, &[0, 2]);
        let mut producer = vec![Action::Write(data.va(0), 42)];
        if with_fence {
            producer.push(Action::Fence);
        }
        producer.push(Action::Write(flag.va(0), 1));
        cluster.set_process(0, Script::new(producer));
        cluster.set_process(2, SpinReadOut::new(flag.va(0), data.va(0), out.va(0)));
        cluster.run();
        let observed = cluster.read_shared(&out, 0);
        let fence_us = cluster.node(0).stats().fences.mean();
        (observed, fence_us)
    };
    let (unfenced_value, _) = run(false);
    let (fenced_value, fence_us) = run(true);
    FenceConsistency {
        unfenced_value,
        fenced_value,
        fence_us,
    }
}

/// Result of [`fence_consistency`].
#[derive(Clone, Copy, Debug)]
pub struct FenceConsistency {
    /// What the consumer read without the producer fencing (0 = stale).
    pub unfenced_value: u64,
    /// What it read with the fence (must be 42).
    pub fenced_value: u64,
    /// Measured fence stall (µs).
    pub fence_us: f64,
}

impl fmt::Display for FenceConsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E9 / §2.3.5 — MEMORY_BARRIER and the flag/data race")?;
        writeln!(
            f,
            "unfenced producer: consumer read {} (stale: {})",
            self.unfenced_value,
            self.unfenced_value != 42
        )?;
        writeln!(
            f,
            "fenced producer:   consumer read {} (correct)",
            self.fenced_value
        )?;
        writeln!(f, "fence stall: {:.2}us", self.fence_us)
    }
}

struct SpinReadOut {
    flag: tg_mem::VAddr,
    data: tg_mem::VAddr,
    out: tg_mem::VAddr,
    phase: u8,
}

impl SpinReadOut {
    fn new(flag: tg_mem::VAddr, data: tg_mem::VAddr, out: tg_mem::VAddr) -> Self {
        SpinReadOut {
            flag,
            data,
            out,
            phase: 0,
        }
    }
}

impl telegraphos::Process for SpinReadOut {
    fn resume(&mut self, r: telegraphos::Resume) -> Action {
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Read(self.flag)
            }
            1 => {
                if matches!(r, telegraphos::Resume::Value(1)) {
                    self.phase = 2;
                    Action::Read(self.data)
                } else {
                    self.phase = 0;
                    Action::Compute(SimTime::from_ns(200))
                }
            }
            2 => {
                self.phase = 3;
                Action::Write(self.out, r.value())
            }
            _ => Action::Halt,
        }
    }
}

/// E10: one-way message delivery measured at the *receiver* — OS-trap
/// (PVM-style) messaging versus user-level remote writes into the
/// receiver's memory, across message sizes.
pub fn messaging_comparison(sizes: &[u32]) -> MessagingComparison {
    let mut rows = Vec::new();
    for &bytes in sizes {
        // OS path: one message; the receiver halts when Recv returns.
        let mut cluster = ClusterBuilder::new(2).build();
        cluster.set_process(0, message_ping(NodeId::new(1), bytes, 1));
        cluster.set_process(1, message_pong(NodeId::new(0), bytes, 1));
        cluster.run();
        // One-way delivery = the sender's trap/copy before any wire
        // activity plus the receiver's blocked time in Recv.
        let os_us = cluster.node(0).stats().sends.mean() + cluster.node(1).stats().recvs.mean();

        // User-level path: payload and flag live in the receiver's memory;
        // the sender streams plain stores, the receiver spins locally and
        // reads the payload locally.
        let words = u64::from(bytes.div_ceil(8)).max(1);
        let mut cluster = ClusterBuilder::new(2).build();
        let data = cluster.alloc_shared(1);
        let flag = cluster.alloc_shared(1);
        let mut actions: Vec<Action> = (0..words)
            .map(|w| Action::Write(data.va((w % tg_wire::PAGE_WORDS) * 8), w + 1))
            .collect();
        actions.push(Action::Write(flag.va(0), 1));
        cluster.set_process(0, Script::new(actions));
        cluster.set_process(
            1,
            ReceiveBurst {
                flag: flag.va(0),
                data,
                words,
                read: 0,
                phase: 0,
            },
        );
        cluster.run();
        let tg_us = cluster
            .node(1)
            .stats()
            .halted_at
            .expect("receiver done")
            .as_us_f64();
        rows.push(MessagingRow {
            bytes,
            os_trap_us: os_us,
            telegraphos_us: tg_us,
        });
    }
    MessagingComparison { rows }
}

/// Receiver for the user-level path: spin on the local flag, then read the
/// payload from local shared memory.
struct ReceiveBurst {
    flag: tg_mem::VAddr,
    data: telegraphos::SharedPage,
    words: u64,
    read: u64,
    phase: u8,
}

impl telegraphos::Process for ReceiveBurst {
    fn resume(&mut self, r: telegraphos::Resume) -> Action {
        use telegraphos::Resume;
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Read(self.flag)
            }
            1 => {
                if matches!(r, Resume::Value(1)) {
                    self.phase = 2;
                    self.read = 0;
                    Action::Read(self.data.va(0))
                } else {
                    self.phase = 0;
                    Action::Compute(SimTime::from_ns(300))
                }
            }
            2 => {
                self.read += 1;
                if self.read < self.words {
                    Action::Read(self.data.va((self.read % tg_wire::PAGE_WORDS) * 8))
                } else {
                    Action::Halt
                }
            }
            _ => Action::Halt,
        }
    }
}

/// One message-size measurement.
#[derive(Clone, Copy, Debug)]
pub struct MessagingRow {
    /// Message size.
    pub bytes: u32,
    /// One-way latency through the OS-trap path (µs).
    pub os_trap_us: f64,
    /// Delivery via user-level remote writes + fence (µs).
    pub telegraphos_us: f64,
}

/// Result of [`messaging_comparison`].
#[derive(Clone, Debug)]
pub struct MessagingComparison {
    /// One row per message size.
    pub rows: Vec<MessagingRow>,
}

impl fmt::Display for MessagingComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E10 / §1 — message delivery: OS-trap sockets vs user-level writes"
        )?;
        writeln!(
            f,
            "{:>10} {:>14} {:>16} {:>8}",
            "bytes", "OS path (us)", "user-level (us)", "speedup"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>14.1} {:>16.1} {:>7.1}x",
                r.bytes,
                r.os_trap_us,
                r.telegraphos_us,
                r.os_trap_us / r.telegraphos_us
            )?;
        }
        Ok(())
    }
}
