//! # tg-bench — the experiment harness
//!
//! One runner per experiment in DESIGN.md's index (E1–E10). Each runner
//! builds the cluster(s), executes the workload, and returns a structured
//! result with a `Display` that prints the paper-style table including the
//! paper's reference numbers where they exist. The `benches/` targets are
//! thin wrappers (`harness = false`) so `cargo bench` regenerates every
//! table and figure; the repository tests assert the *shapes* (who wins,
//! rough factors) on the same runners.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coherence;
pub mod micro;
pub mod replication;
pub mod scale;

pub use coherence::{
    cam_sweep, fig2_inconsistency, galactica_anomaly, trace_driven, update_vs_invalidate,
    write_policy_ablation,
};
pub use micro::{basic_latency, batch_writes, fence_consistency, messaging_comparison, table1};
pub use replication::access_counter_replication;
pub use scale::{
    hop_scaling, incast_congestion, lock_contention, multiprogramming_overlap, remote_paging,
};
