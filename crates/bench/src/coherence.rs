//! Coherence experiments: the Figure 2 race, the Galactica contrast, the
//! update-vs-invalidate comparison, and the counter-CAM sweep.

use std::fmt;

use telegraphos::{ClusterBuilder, SharedPage};
use tg_hib::HibConfig;
use tg_proto::{galactica::GalacticaRing, naive::NaiveMulticast, owner::OwnerSerialized, Scenario};
use tg_sim::SimTime;
use tg_workloads::{
    bursty_scatter, synthetic_trace, Consumer, Migratory, PcConfig, Producer, TraceConfig,
};

/// E4 / Figure 2: run the two-writer race over many interleavings under
/// naive multicast and under the owner-serialized protocol.
pub fn fig2_inconsistency(seeds: u64) -> Fig2 {
    let mut naive_diverged = 0;
    let mut owner_diverged = 0;
    let mut owner_violations = 0;
    for seed in 0..seeds {
        let s = Scenario::figure2(seed);
        if !NaiveMulticast::run(&s).converged() {
            naive_diverged += 1;
        }
        let out = OwnerSerialized::run(&s);
        if !out.converged() {
            owner_diverged += 1;
        }
        if !out.subsequence_violations().is_empty() || !out.anomalies().is_empty() {
            owner_violations += 1;
        }
    }
    Fig2 {
        seeds,
        naive_diverged,
        owner_diverged,
        owner_violations,
    }
}

/// Result of [`fig2_inconsistency`].
#[derive(Clone, Copy, Debug)]
pub struct Fig2 {
    /// Interleavings tried.
    pub seeds: u64,
    /// Naive-multicast runs that ended with divergent copies.
    pub naive_diverged: u64,
    /// Owner-protocol runs that diverged (must be 0).
    pub owner_diverged: u64,
    /// Owner-protocol runs with sequence violations (must be 0).
    pub owner_violations: u64,
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E4 / Figure 2 — two concurrent writers, one observer")?;
        writeln!(
            f,
            "naive eager multicast: {}/{} interleavings end inconsistent",
            self.naive_diverged, self.seeds
        )?;
        writeln!(
            f,
            "owner-serialized (§2.3.3): {}/{} diverged, {}/{} invalid sequences",
            self.owner_diverged, self.seeds, self.owner_violations, self.seeds
        )
    }
}

/// E5 / §2.4: Galactica's ring shows "1,2,1" revisit anomalies; the
/// owner protocol never does, over the same scenarios.
pub fn galactica_anomaly(seeds: u64) -> Galactica {
    let mut ring_anomalies = 0;
    let mut ring_diverged = 0;
    let mut owner_anomalies = 0;
    for seed in 0..seeds {
        let s = Scenario {
            nodes: 5,
            writes: vec![
                tg_proto::ScriptedWrite { node: 0, value: 1 },
                tg_proto::ScriptedWrite { node: 2, value: 2 },
            ],
            seed,
        };
        let ring = GalacticaRing::run(&s);
        if !ring.anomalies().is_empty() {
            ring_anomalies += 1;
        }
        if !ring.converged() {
            ring_diverged += 1;
        }
        if !OwnerSerialized::run(&s).anomalies().is_empty() {
            owner_anomalies += 1;
        }
    }
    Galactica {
        seeds,
        ring_anomalies,
        ring_diverged,
        owner_anomalies,
    }
}

/// Result of [`galactica_anomaly`].
#[derive(Clone, Copy, Debug)]
pub struct Galactica {
    /// Interleavings tried.
    pub seeds: u64,
    /// Ring runs where some node observed a "1,2,1"-style revisit.
    pub ring_anomalies: u64,
    /// Ring runs that failed to converge (back-off must prevent this).
    pub ring_diverged: u64,
    /// Owner-protocol runs with revisit anomalies (must be 0).
    pub owner_anomalies: u64,
}

impl fmt::Display for Galactica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E5 / §2.4 — Galactica ring vs owner serialization")?;
        writeln!(
            f,
            "Galactica ring: {}/{} interleavings show a 1,2,1 revisit ({} diverged)",
            self.ring_anomalies, self.seeds, self.ring_diverged
        )?;
        writeln!(
            f,
            "Telegraphos owner protocol: {}/{} revisits (guaranteed none)",
            self.owner_anomalies, self.seeds
        )
    }
}

/// Data-page sharing modes compared in E6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SharingMode {
    /// Owner-serialized coherent update replication (the paper's hardware).
    Update,
    /// Page-fault-driven invalidate VSM (the software baseline).
    Invalidate,
    /// No replication: every consumer access is a remote read.
    RemoteOnly,
}

impl fmt::Display for SharingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SharingMode::Update => "update",
            SharingMode::Invalidate => "invalidate",
            SharingMode::RemoteOnly => "remote-only",
        };
        f.write_str(s)
    }
}

/// One E6 measurement row.
#[derive(Clone, Copy, Debug)]
pub struct SharingRow {
    /// The sharing mode.
    pub mode: SharingMode,
    /// Completion time of the whole workload (µs).
    pub total_us: f64,
    /// Mean consumer-side data read latency (µs).
    pub read_us: f64,
    /// Fabric traffic (bytes).
    pub bytes: u64,
    /// Page faults taken (VSM only).
    pub faults: u64,
}

/// Result of [`update_vs_invalidate`].
#[derive(Clone, Debug)]
pub struct UpdateVsInvalidate {
    /// Producer/consumer rows.
    pub producer_consumer: Vec<SharingRow>,
    /// Migratory rows.
    pub migratory: Vec<SharingRow>,
}

impl UpdateVsInvalidate {
    /// Looks up a producer/consumer row.
    pub fn pc(&self, mode: SharingMode) -> &SharingRow {
        self.producer_consumer
            .iter()
            .find(|r| r.mode == mode)
            .expect("measured mode")
    }

    /// Looks up a migratory row.
    pub fn mig(&self, mode: SharingMode) -> &SharingRow {
        self.migratory
            .iter()
            .find(|r| r.mode == mode)
            .expect("measured mode")
    }
}

/// E6 / §2.3.6: producer/consumer favors update-based coherence (lower
/// latency *and* less traffic); long migratory read-modify-write phases
/// favor invalidation on traffic — one page move amortizes over the whole
/// burst, while eager updates pay per store.
pub fn update_vs_invalidate(words: u64, rounds: u64, burst: u64) -> UpdateVsInvalidate {
    let pc = [
        SharingMode::Update,
        SharingMode::Invalidate,
        SharingMode::RemoteOnly,
    ]
    .into_iter()
    .map(|mode| run_pc(mode, words, rounds))
    .collect();
    let mig = [
        SharingMode::Update,
        SharingMode::Invalidate,
        SharingMode::RemoteOnly,
    ]
    .into_iter()
    .map(|mode| run_migratory(mode, burst, rounds.max(2)))
    .collect();
    UpdateVsInvalidate {
        producer_consumer: pc,
        migratory: mig,
    }
}

fn setup_data_page(
    cluster: &mut telegraphos::Cluster,
    mode: SharingMode,
    home: u16,
    sharers: &[u16],
) -> SharedPage {
    let data = cluster.alloc_shared(home);
    match mode {
        SharingMode::Update => cluster.make_coherent(&data, sharers),
        SharingMode::Invalidate => cluster.make_vsm(&data),
        SharingMode::RemoteOnly => {}
    }
    data
}

fn run_pc(mode: SharingMode, words: u64, rounds: u64) -> SharingRow {
    let mut cluster = ClusterBuilder::new(2).build();
    let data = setup_data_page(&mut cluster, mode, 0, &[1]);
    let flag = cluster.alloc_shared(1);
    let ack = cluster.alloc_shared(0);
    let cfg = PcConfig {
        data,
        flag,
        ack,
        words,
        rounds,
        poll: SimTime::from_us(2),
        fence: true,
    };
    cluster.set_process(0, Producer::new(cfg));
    cluster.set_process(1, Consumer::new(cfg));
    cluster.run();
    assert!(
        cluster.all_halted(),
        "producer/consumer deadlocked ({mode})"
    );
    let consumer = cluster.node(1).stats();
    let reads = {
        // Data reads are whichever class dominates under this mode.
        let mut s = consumer.local_reads.clone();
        s.merge(&consumer.remote_reads);
        s
    };
    SharingRow {
        mode,
        total_us: cluster.now().as_us_f64(),
        read_us: reads.mean(),
        bytes: cluster.fabric_bytes(),
        faults: consumer.faults + cluster.node(0).stats().faults,
    }
}

fn run_migratory(mode: SharingMode, burst: u64, turns: u64) -> SharingRow {
    let n = 3u16;
    let mut cluster = ClusterBuilder::new(n).build();
    let sharers: Vec<u16> = (1..n).collect();
    let data = setup_data_page(&mut cluster, mode, 0, &sharers);
    let token = cluster.alloc_shared(0);
    for i in 0..n {
        cluster.set_process(
            i,
            Migratory::new(
                data,
                token,
                u64::from(i),
                u64::from(n),
                turns,
                burst,
                // A lazy token poll keeps spin traffic from drowning the
                // coherence traffic this experiment measures.
                SimTime::from_us(25),
            ),
        );
    }
    cluster.run();
    assert!(cluster.all_halted(), "migratory deadlocked ({mode})");
    let faults: u64 = (0..n).map(|i| cluster.node(i).stats().faults).sum();
    let mut reads = tg_sim::Summary::new();
    for i in 0..n {
        reads.merge(&cluster.node(i).stats().local_reads);
        reads.merge(&cluster.node(i).stats().remote_reads);
    }
    SharingRow {
        mode,
        total_us: cluster.now().as_us_f64(),
        read_us: reads.mean(),
        bytes: cluster.fabric_bytes(),
        faults,
    }
}

impl fmt::Display for UpdateVsInvalidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E6 / §2.3.6 — update vs invalidate coherence")?;
        for (name, rows) in [
            ("producer/consumer", &self.producer_consumer),
            ("migratory", &self.migratory),
        ] {
            writeln!(f, "\n{name}:")?;
            writeln!(
                f,
                "{:<14} {:>12} {:>12} {:>12} {:>8}",
                "mode", "total (us)", "read (us)", "bytes", "faults"
            )?;
            for r in rows {
                writeln!(
                    f,
                    "{:<14} {:>12.1} {:>12.2} {:>12} {:>8}",
                    r.mode.to_string(),
                    r.total_us,
                    r.read_us,
                    r.bytes,
                    r.faults
                )?;
            }
        }
        Ok(())
    }
}

/// One CAM-size measurement.
#[derive(Clone, Copy, Debug)]
pub struct CamRow {
    /// CAM entries.
    pub entries: usize,
    /// Write stalls for want of a free entry.
    pub stalls: u64,
    /// Peak simultaneous non-zero counters.
    pub high_water: usize,
    /// Workload completion (µs).
    pub total_us: f64,
}

/// Result of [`cam_sweep`].
#[derive(Clone, Debug)]
pub struct CamSweep {
    /// One row per CAM size.
    pub rows: Vec<CamRow>,
}

/// E7 / §2.3.4: scatter coherent writes over many words and sweep the CAM
/// size; the paper expects 16–32 entries to eliminate stalls.
pub fn cam_sweep(sizes: &[usize]) -> CamSweep {
    let rows = sizes
        .iter()
        .map(|&entries| {
            let hib = HibConfig {
                cam_entries: entries,
                ..HibConfig::telegraphos_i()
            };
            let mut cluster = ClusterBuilder::new(2).hib_config(hib).build();
            // Node 1 owns the page; node 0 writes its replica in bursts of
            // 12 back-to-back stores (the realistic peak of pending writes
            // between synchronization points).
            let data = cluster.alloc_shared(1);
            cluster.make_coherent(&data, &[0]);
            cluster.set_process(0, bursty_scatter(&data, 64, 12, SimTime::from_us(40), 120));
            cluster.run();
            let cam = cluster.node(0).cam();
            CamRow {
                entries,
                stalls: cam.stall_events(),
                high_water: cam.high_water(),
                total_us: cluster.now().as_us_f64(),
            }
        })
        .collect();
    CamSweep { rows }
}

impl fmt::Display for CamSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7 / §2.3.4 — pending-write CAM sizing (paper: 16-32 entries suffice)"
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>12} {:>12}",
            "entries", "stalls", "high water", "total (us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>10} {:>12} {:>12.1}",
                r.entries, r.stalls, r.high_water, r.total_us
            )?;
        }
        Ok(())
    }
}

/// One trace-driven measurement (E14).
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Write fraction of the traces.
    pub write_fraction: f64,
    /// Data alignment (false = false sharing).
    pub aligned: bool,
    /// Update-mode completion (µs).
    pub update_us: f64,
    /// Invalidate-mode completion (µs).
    pub invalidate_us: f64,
    /// Update-mode wire bytes.
    pub update_bytes: u64,
    /// Invalidate-mode wire bytes.
    pub invalidate_bytes: u64,
}

/// Result of [`trace_driven`].
#[derive(Clone, Debug)]
pub struct TraceDriven {
    /// One row per (write fraction, alignment) point.
    pub rows: Vec<TraceRow>,
}

/// E14 / ref \[22\]: trace-driven comparison of update vs invalidate
/// coherence over write fraction and data alignment. "Aligned" data gives
/// each node its own page (each mostly private); "unaligned" data makes
/// every node roam all pages — page-level false sharing, the factor ref
/// \[22\] isolates.
pub fn trace_driven(write_fracs: &[f64], ops: u64) -> TraceDriven {
    let mut rows = Vec::new();
    for &wf in write_fracs {
        for aligned in [true, false] {
            let run = |mode: SharingMode| -> (f64, u64) {
                let n = 3u16;
                let mut cluster = ClusterBuilder::new(n).build();
                let sharers: Vec<u16> = (1..n).collect();
                // One data page per node, all shareable under `mode`.
                let pages: Vec<_> = (0..n)
                    .map(|_| setup_data_page(&mut cluster, mode, 0, &sharers))
                    .collect();
                for node in 0..n {
                    let my_pages: Vec<_> = if aligned {
                        vec![pages[node as usize]]
                    } else {
                        pages.clone()
                    };
                    let cfg = TraceConfig {
                        ops,
                        write_fraction: wf,
                        aligned,
                        writer: (u64::from(node), u64::from(n)),
                        seed: 7 + u64::from(node),
                        ..TraceConfig::default()
                    };
                    cluster.set_process(node, synthetic_trace(&my_pages, cfg));
                }
                cluster.run();
                (cluster.now().as_us_f64(), cluster.fabric_bytes())
            };
            let (update_us, update_bytes) = run(SharingMode::Update);
            let (invalidate_us, invalidate_bytes) = run(SharingMode::Invalidate);
            rows.push(TraceRow {
                write_fraction: wf,
                aligned,
                update_us,
                invalidate_us,
                update_bytes,
                invalidate_bytes,
            });
        }
    }
    TraceDriven { rows }
}

impl fmt::Display for TraceDriven {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E14 / ref [22] — trace-driven update vs invalidate (3 sharers)"
        )?;
        writeln!(
            f,
            "{:>7} {:>9} {:>12} {:>12} {:>12} {:>12}",
            "writes", "aligned", "upd (us)", "inv (us)", "upd bytes", "inv bytes"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6.0}% {:>9} {:>12.0} {:>12.0} {:>12} {:>12}",
                r.write_fraction * 100.0,
                r.aligned,
                r.update_us,
                r.invalidate_us,
                r.update_bytes,
                r.invalidate_bytes
            )?;
        }
        Ok(())
    }
}

/// One write-policy measurement (the §2.3.2 ablation).
#[derive(Clone, Debug)]
pub struct WritePolicyRow {
    /// Policy label.
    pub policy: String,
    /// Mean CPU-observed cost of a coherent store (µs).
    pub write_us: f64,
    /// Workload completion (µs).
    pub total_us: f64,
}

/// Result of [`write_policy_ablation`].
#[derive(Clone, Debug)]
pub struct WritePolicyAblation {
    /// CountFiltered vs StallUntilReflected.
    pub rows: Vec<WritePolicyRow>,
}

/// E7b / §2.3.2: the paper rejects stalling each store until its reflected
/// write returns ("non-trivial performance cost") in favor of immediate
/// local application with counter filtering. Measure both.
pub fn write_policy_ablation(writes: u64) -> WritePolicyAblation {
    let run = |policy: tg_hib::LocalWritePolicy, label: &str| -> WritePolicyRow {
        let hib = HibConfig {
            local_write_policy: policy,
            ..HibConfig::telegraphos_i()
        };
        let mut cluster = ClusterBuilder::new(2).hib_config(hib).build();
        let data = cluster.alloc_shared(1);
        cluster.make_coherent(&data, &[0]);
        cluster.set_process(
            0,
            tg_workloads::bursty_scatter(&data, 64, 8, SimTime::from_us(30), (writes / 8).max(1)),
        );
        cluster.run();
        WritePolicyRow {
            policy: label.to_string(),
            write_us: cluster.node(0).stats().local_writes.mean(),
            total_us: cluster.now().as_us_f64(),
        }
    };
    WritePolicyAblation {
        rows: vec![
            run(
                tg_hib::LocalWritePolicy::CountFiltered,
                "count-filtered (§2.3.3)",
            ),
            run(
                tg_hib::LocalWritePolicy::StallUntilReflected,
                "stall-until-reflected",
            ),
        ],
    }
}

impl fmt::Display for WritePolicyAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7b / §2.3.2 — coherent-store policy ablation (2 nodes, bursts of 8)"
        )?;
        writeln!(
            f,
            "{:<26} {:>12} {:>12}",
            "policy", "store (us)", "total (us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<26} {:>12.2} {:>12.1}",
                r.policy, r.write_us, r.total_us
            )?;
        }
        Ok(())
    }
}
