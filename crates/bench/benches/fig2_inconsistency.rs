//! E4: the Figure 2 inconsistency, naive multicast vs owner serialization.

fn main() {
    println!("{}", tg_bench::fig2_inconsistency(2000));
}
