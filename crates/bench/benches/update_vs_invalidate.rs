//! E6: update-based vs invalidate-based coherence across sharing patterns.

fn main() {
    println!("{}", tg_bench::update_vs_invalidate(32, 8, 256));
}
