//! E10: OS-trap message passing vs user-level remote writes.

fn main() {
    println!(
        "{}",
        tg_bench::messaging_comparison(&[8, 64, 256, 1024, 4096, 8192, 65536])
    );
}
