//! E3: remote-write burst sweep (the §3.2 batching measurement).

fn main() {
    println!(
        "{}",
        tg_bench::batch_writes(&[1, 5, 10, 25, 50, 100, 200, 500, 1000, 2000, 5000, 10000])
    );
}
