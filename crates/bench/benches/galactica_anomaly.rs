//! E5: Galactica Net "1,2,1" anomalies vs the Telegraphos owner protocol.

fn main() {
    println!("{}", tg_bench::galactica_anomaly(2000));
}
