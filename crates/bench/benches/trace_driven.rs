//! E14: trace-driven update vs invalidate comparison (ref \[22\] style).

fn main() {
    println!("{}", tg_bench::trace_driven(&[0.05, 0.2, 0.5], 300));
}
