//! Micro-benchmarks of the simulator itself: event-engine throughput,
//! network forwarding, protocol steps, and a full cluster run. These
//! measure the *simulator's* wall-clock performance, not simulated time —
//! useful for keeping the experiment harness fast.
//!
//! Timing uses plain `std::time::Instant` (no criterion) so the target
//! builds in offline/vendored environments; for the JSON-reporting perf
//! harness see the `simbench` binary.

use std::time::Instant;

use telegraphos::ClusterBuilder;
use tg_proto::{owner::OwnerSerialized, Scenario};
use tg_sim::{Component, Ctx, Engine, SimTime};
use tg_workloads::stream_writes;

struct Relay {
    peer: Option<tg_sim::CompId>,
    remaining: u64,
}

impl Component<u64> for Relay {
    fn on_event(&mut self, v: u64, ctx: &mut Ctx<'_, u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let dst = self.peer.unwrap_or(ctx.self_id());
            ctx.send(dst, SimTime::from_ns(10), v + 1);
        }
    }
    fn name(&self) -> &str {
        "relay"
    }
}

/// Runs `f` a few times and reports the best wall time alongside a
/// caller-provided work counter.
fn bench<F: FnMut() -> u64>(name: &str, iters: u32, mut f: F) {
    let mut best = f64::INFINITY;
    let mut work = 0;
    for _ in 0..iters {
        let t0 = Instant::now();
        work = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let rate = work as f64 / best;
    println!("{name:<28} {best:>10.4}s  ({work} units, {rate:.0}/s)");
}

fn engine_throughput() {
    bench("engine_1M_events", 3, || {
        let mut eng: Engine<u64> = Engine::new();
        let a = eng.add(Relay {
            peer: None,
            remaining: 0,
        });
        let x = eng.add(Relay {
            peer: Some(a),
            remaining: 500_000,
        });
        eng.get_mut::<Relay>(a).unwrap().peer = Some(x);
        eng.get_mut::<Relay>(a).unwrap().remaining = 500_000;
        eng.schedule(SimTime::ZERO, a, 0);
        eng.run();
        eng.stats().events_delivered
    });
}

fn cluster_write_stream() {
    for &n in &[100u64, 1000] {
        bench(&format!("cluster_write_stream/{n}"), 3, || {
            let mut cluster = ClusterBuilder::new(2).build();
            let page = cluster.alloc_shared(1);
            cluster.set_process(0, stream_writes(&page, n));
            cluster.run();
            cluster.fabric_packets()
        });
    }
}

fn owner_protocol_step() {
    bench("owner_protocol_scenario", 3, || {
        let mut messages = 0;
        for seed in 0..64u64 {
            messages += OwnerSerialized::run(&Scenario::random(4, 8, 2, seed)).messages;
        }
        messages
    });
}

fn main() {
    engine_throughput();
    cluster_write_stream();
    owner_protocol_step();
}
