//! Criterion micro-benchmarks of the simulator itself: event-engine
//! throughput, network forwarding, protocol steps, and a full cluster run.
//! These measure the *simulator's* wall-clock performance, not simulated
//! time — useful for keeping the experiment harness fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use telegraphos::ClusterBuilder;
use tg_proto::{owner::OwnerSerialized, Scenario};
use tg_sim::{Component, Ctx, Engine, SimTime};
use tg_workloads::stream_writes;

struct Relay {
    peer: Option<tg_sim::CompId>,
    remaining: u64,
}

impl Component<u64> for Relay {
    fn on_event(&mut self, v: u64, ctx: &mut Ctx<'_, u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let dst = self.peer.unwrap_or(ctx.self_id());
            ctx.send(dst, SimTime::from_ns(10), v + 1);
        }
    }
    fn name(&self) -> &str {
        "relay"
    }
}

fn engine_throughput(c: &mut Criterion) {
    c.bench_function("engine_1M_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            let a = eng.add(Relay {
                peer: None,
                remaining: 0,
            });
            let x = eng.add(Relay {
                peer: Some(a),
                remaining: 500_000,
            });
            eng.get_mut::<Relay>(a).unwrap().peer = Some(x);
            eng.get_mut::<Relay>(a).unwrap().remaining = 500_000;
            eng.schedule(SimTime::ZERO, a, 0);
            eng.run();
            eng.stats().events_delivered
        })
    });
}

fn cluster_write_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_write_stream");
    for &n in &[100u64, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cluster = ClusterBuilder::new(2).build();
                let page = cluster.alloc_shared(1);
                cluster.set_process(0, stream_writes(&page, n));
                cluster.run();
                cluster.fabric_packets()
            })
        });
    }
    group.finish();
}

fn owner_protocol_step(c: &mut Criterion) {
    c.bench_function("owner_protocol_scenario", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            OwnerSerialized::run(&Scenario::random(4, 8, 2, seed)).messages
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = engine_throughput, cluster_write_stream, owner_protocol_step
}
criterion_main!(benches);
