//! E13: spinlock throughput under contention.

fn main() {
    println!("{}", tg_bench::lock_contention(8, 20));
}
