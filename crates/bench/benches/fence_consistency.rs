//! E9: the §2.3.5 MEMORY_BARRIER experiment.

fn main() {
    println!("{}", tg_bench::fence_consistency());
}
