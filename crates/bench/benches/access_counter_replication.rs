//! E8: page-access counters driving alarm-based replication (§2.2.6).

fn main() {
    println!(
        "{}",
        tg_bench::access_counter_replication(200, &[4, 8, 16, 32, 64])
    );
}
