//! E7b: immediate-apply + counter filtering vs stall-until-reflected.

fn main() {
    println!("{}", tg_bench::write_policy_ablation(400));
}
