//! E2: regenerate the §3.2 latency table, plus the prototype and
//! memory-bus ablations.

use tg_wire::TimingConfig;

fn main() {
    println!("{}", tg_bench::basic_latency(TimingConfig::telegraphos_i()));
    println!("ablation — Telegraphos II calibration:");
    println!(
        "{}",
        tg_bench::basic_latency(TimingConfig::telegraphos_ii())
    );
    println!("ablation — HIB on the memory bus (§2.1 hypothetical):");
    println!("{}", tg_bench::basic_latency(TimingConfig::memory_bus()));
}
