//! E1: regenerate Table 1 (gate counts of the Telegraphos I HIB).

fn main() {
    println!("{}", tg_bench::table1());
}
