//! E7: pending-write counter CAM sizing (§2.3.4: 16-32 entries suffice).

fn main() {
    println!("{}", tg_bench::cam_sweep(&[1, 2, 4, 8, 16, 32, 64]));
}
