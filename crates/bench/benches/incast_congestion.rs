//! E16: incast congestion and back-pressure fairness.

fn main() {
    println!("{}", tg_bench::incast_congestion(7, 300));
}
