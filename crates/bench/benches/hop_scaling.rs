//! E12: remote-read latency vs fabric depth.

fn main() {
    println!("{}", tg_bench::hop_scaling(8));
}
