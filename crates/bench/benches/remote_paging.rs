//! E11: disk paging vs remote-memory paging (ref \[21\]).

fn main() {
    println!("{}", tg_bench::remote_paging(8, 3, 4));
}
