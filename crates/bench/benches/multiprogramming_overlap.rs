//! E15: overlapping a paging-bound and a compute-bound process on one
//! workstation via the per-process context machinery.

fn main() {
    println!("{}", tg_bench::multiprogramming_overlap(8, 250));
}
