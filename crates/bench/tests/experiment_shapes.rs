//! Shape assertions for every experiment: who wins, by roughly what
//! factor, and where the crossovers fall — the reproduction criteria from
//! DESIGN.md §3.

use tg_bench::coherence::SharingMode;
use tg_bench::*;
use tg_wire::TimingConfig;

#[test]
fn e1_table1_matches_paper() {
    let t = table1();
    assert_eq!(t.built.gates(tg_hw::BlockClass::Message), 3300);
    assert_eq!(t.built.gates(tg_hw::BlockClass::SharedMemory), 2700);
    assert_eq!(t.built.mpm_mbits(), 128);
    assert!(t.with_cam.total_gates() > t.built.total_gates());
    let s = t.to_string();
    assert!(s.contains("Page Access Counters"));
}

#[test]
fn e2_basic_latency_matches_paper() {
    let r = basic_latency(TimingConfig::telegraphos_i());
    assert!(
        (6.7..7.7).contains(&r.read_us),
        "read {:.2}us vs paper 7.2us",
        r.read_us
    );
    assert!(
        (0.6..0.8).contains(&r.write_us),
        "write {:.2}us vs paper 0.70us",
        r.write_us
    );
    // The read/write gap is about an order of magnitude.
    assert!(r.read_us / r.write_us > 8.0);
}

#[test]
fn e2_memory_bus_ablation() {
    let io = basic_latency(TimingConfig::telegraphos_i());
    let mem = basic_latency(TimingConfig::memory_bus());
    // Reads shed the whole I/O-bus overhead.
    assert!(mem.read_us < io.read_us - 2.0);
    // Sustained writes are network-service-bound in both designs (§2.1's
    // trade-off buys latency, not write bandwidth).
    assert!(mem.write_us <= io.write_us + 0.01);
    // The bus advantage shows on short bursts: per-write issue cost drops
    // to the bus latch time.
    let burst = {
        let mut cluster = telegraphos::ClusterBuilder::new(2)
            .timing(TimingConfig::memory_bus())
            .build();
        let page = cluster.alloc_shared(1);
        cluster.set_process(0, tg_workloads::stream_writes(&page, 50));
        cluster.run();
        cluster.node(0).stats().halted_at.unwrap().as_us_f64() / 50.0
    };
    assert!(burst < 0.2, "memory-bus burst writes cost {burst:.2}us");
}

#[test]
fn e3_batch_crossover() {
    let b = batch_writes(&[1, 10, 100, 1000, 5000]);
    let small = b.row(100).unwrap();
    assert!(
        small.total_us < 50.0,
        "paper: 100 writes < 50us, got {:.1}",
        small.total_us
    );
    assert!(small.per_write_us < 0.5, "paper: < 0.5us per write");
    let large = b.row(5000).unwrap();
    assert!(
        (0.6..0.8).contains(&large.per_write_us),
        "long streams run at the network rate, got {:.3}",
        large.per_write_us
    );
    // Monotone: longer bursts can only slow down per-write.
    for w in b.rows.windows(2) {
        assert!(w[1].per_write_us >= w[0].per_write_us - 1e-9);
    }
}

#[test]
fn e4_fig2_shapes() {
    let r = fig2_inconsistency(256);
    assert!(
        r.naive_diverged > 25,
        "naive should diverge often, got {}/{}",
        r.naive_diverged,
        r.seeds
    );
    assert_eq!(r.owner_diverged, 0);
    assert_eq!(r.owner_violations, 0);
}

#[test]
fn e5_galactica_shapes() {
    let r = galactica_anomaly(256);
    assert!(r.ring_anomalies > 0, "ring should show 1,2,1 revisits");
    assert_eq!(r.ring_diverged, 0, "back-off must converge");
    assert_eq!(r.owner_anomalies, 0);
}

#[test]
fn e6_update_wins_producer_consumer() {
    let r = update_vs_invalidate(32, 6, 256);
    let upd = r.pc(SharingMode::Update);
    let inv = r.pc(SharingMode::Invalidate);
    let rem = r.pc(SharingMode::RemoteOnly);
    assert!(
        upd.total_us < inv.total_us,
        "update {:.0}us should beat invalidate {:.0}us on producer/consumer",
        upd.total_us,
        inv.total_us
    );
    assert!(
        upd.read_us < rem.read_us / 2.0,
        "replicated reads should be much cheaper than remote reads"
    );
    assert!(inv.faults > 0, "VSM must fault");
    assert_eq!(upd.faults, 0);
}

#[test]
fn e6_invalidate_wins_migratory_on_traffic() {
    let r = update_vs_invalidate(32, 6, 256);
    let upd = r.mig(SharingMode::Update);
    let inv = r.mig(SharingMode::Invalidate);
    // §2.3.6: eager updates pay network traffic on *every* store; one page
    // migration amortizes over the whole burst. Update never loses on
    // store latency (stores are non-blocking), so traffic is the honest
    // crossover metric.
    assert!(
        inv.bytes < upd.bytes,
        "invalidate should move fewer bytes on migratory: {} vs {}",
        inv.bytes,
        upd.bytes
    );
    // And producer/consumer goes the other way (update moves less).
    let pc_upd = r.pc(SharingMode::Update);
    let pc_inv = r.pc(SharingMode::Invalidate);
    assert!(pc_upd.bytes < pc_inv.bytes);
}

#[test]
fn e7_cam_sweep_shapes() {
    let r = cam_sweep(&[1, 2, 4, 8, 16, 32, 64]);
    let tiny = &r.rows[0];
    let paper_size = r.rows.iter().find(|x| x.entries == 32).unwrap();
    assert!(tiny.stalls > 0, "a 1-entry CAM must stall");
    assert_eq!(
        paper_size.stalls, 0,
        "the paper's 16-32 entry CAM should not stall (got {} stalls)",
        paper_size.stalls
    );
    // Stalls are monotonically non-increasing with size.
    for w in r.rows.windows(2) {
        assert!(w[1].stalls <= w[0].stalls);
    }
    // And a stalling CAM slows the workload down.
    assert!(tiny.total_us >= paper_size.total_us);
}

#[test]
fn e8_alarm_replication_shapes() {
    let r = access_counter_replication(150, &[8, 32]);
    let never = &r.rows[0];
    let alarm8 = &r.rows[1];
    let alarm32 = &r.rows[2];
    assert_eq!(never.replications, 0);
    assert!(alarm8.replications >= 1);
    assert!(
        alarm8.mean_read_us < never.mean_read_us / 2.0,
        "alarm replication should slash mean read latency: {:.2} vs {:.2}",
        alarm8.mean_read_us,
        never.mean_read_us
    );
    // A lower threshold replicates earlier: fewer remote reads.
    assert!(alarm8.remote_reads <= alarm32.remote_reads);
}

#[test]
fn e9_fence_shapes() {
    let r = fence_consistency();
    assert_eq!(r.fenced_value, 42);
    assert_ne!(r.unfenced_value, 42, "the race should bite without a fence");
    assert!(r.fence_us > 0.0);
}

#[test]
fn e10_messaging_shapes() {
    let r = messaging_comparison(&[8, 64, 256, 8192]);
    // Small messages: user-level remote writes win by a large factor (the
    // paper's motivation — no OS on the critical path).
    let small = &r.rows[0];
    assert!(
        small.os_trap_us / small.telegraphos_us > 5.0,
        "expected >5x at 8B, got {:.1}x",
        small.os_trap_us / small.telegraphos_us
    );
    assert!(
        r.rows[1].telegraphos_us < r.rows[1].os_trap_us,
        "64B still wins"
    );
    // Bulk messages cross over: per-word stores cannot beat DMA streaming,
    // which is why Telegraphos also offers remote copy for bulk data.
    let bulk = r.rows.last().unwrap();
    assert!(
        bulk.telegraphos_us > bulk.os_trap_us,
        "expected the DMA crossover at {} bytes",
        bulk.bytes
    );
}

#[test]
fn e11_remote_paging_shapes() {
    let r = remote_paging(6, 2, 3);
    let disk = &r.rows[0];
    let remote = &r.rows[1];
    assert_eq!(disk.faults, remote.faults, "same fault pattern");
    assert!(
        disk.total_us / remote.total_us > 20.0,
        "remote paging should be >20x faster (ref [21]): {:.0} vs {:.0}",
        disk.total_us,
        remote.total_us
    );
    // A remote fault costs a few hundred microseconds (traps + page wire
    // time), not milliseconds.
    assert!(remote.per_fault_us < 1_000.0);
    assert!(disk.per_fault_us > 14_000.0);
}

#[test]
fn e12_latency_grows_linearly_with_hops() {
    let r = hop_scaling(6);
    // Strictly increasing.
    for w in r.rows.windows(2) {
        assert!(w[1].read_us > w[0].read_us);
    }
    // Roughly constant per-switch increment (linearity).
    let d1 = r.rows[1].read_us - r.rows[0].read_us;
    let d4 = r.rows[5].read_us - r.rows[4].read_us;
    assert!(
        (d1 - d4).abs() < 0.3,
        "per-switch increments diverge: {d1:.2} vs {d4:.2}"
    );
}

#[test]
fn e13_lock_contention_shapes() {
    let r = lock_contention(5, 10);
    // Every configuration completes all its critical sections (no lost
    // wakeups / livelock), and per-section cost stays bounded: the
    // test-and-set + backoff protocol degrades gracefully.
    for row in &r.rows {
        assert!(row.per_section_us > 5.0, "a section needs multiple RTTs");
        assert!(
            row.per_section_us < 200.0,
            "contention collapse at {} nodes: {:.1} us",
            row.nodes,
            row.per_section_us
        );
        // The FIFO ticket lock also completes and stays bounded; its
        // hand-off adds spin-notice latency, so it may run somewhat slower.
        assert!(row.ticket_us > 5.0 && row.ticket_us < 300.0);
    }
}

#[test]
fn e14_trace_driven_shapes() {
    let r = trace_driven(&[0.2], 150);
    let aligned = r.rows.iter().find(|x| x.aligned).unwrap();
    let unaligned = r.rows.iter().find(|x| !x.aligned).unwrap();
    // Aligned data: invalidate is competitive (within ~2x of update).
    assert!(
        aligned.invalidate_us < aligned.update_us * 3.0,
        "aligned invalidate should be competitive: {:.0} vs {:.0}",
        aligned.invalidate_us,
        aligned.update_us
    );
    // Page-level false sharing wrecks invalidate (ref [22]'s factor).
    assert!(
        unaligned.invalidate_us > aligned.invalidate_us * 3.0,
        "false sharing should hurt invalidate: {:.0} vs {:.0}",
        unaligned.invalidate_us,
        aligned.invalidate_us
    );
    // Update-based coherence is insensitive to alignment (word granular).
    let ratio = unaligned.update_us / aligned.update_us;
    assert!(
        (0.5..2.0).contains(&ratio),
        "update should be alignment-insensitive, ratio {ratio:.2}"
    );
}

#[test]
fn e7b_stalling_writes_cost_more() {
    let r = write_policy_ablation(200);
    let filtered = &r.rows[0];
    let stalled = &r.rows[1];
    // §2.3.2: stalling each store for the owner round trip is the
    // "non-trivial performance cost" the counter protocol removes.
    assert!(
        stalled.write_us > filtered.write_us * 4.0,
        "stall-until-reflected should cost several RTTs per store: \
         {:.2} vs {:.2} us",
        stalled.write_us,
        filtered.write_us
    );
    assert!(stalled.total_us > filtered.total_us);
}

#[test]
fn e15_multiprogramming_overlap_shapes() {
    let r = multiprogramming_overlap(6, 150);
    let paging = r.rows[0].total_us;
    let compute = r.rows[1].total_us;
    let together = r.rows[2].total_us;
    // Overlap recovers a large share of the shorter job.
    assert!(
        together < (paging + compute) * 0.8,
        "no overlap: {together:.0} vs serial {:.0}",
        paging + compute
    );
    // But never finishes before the longer one.
    assert!(together >= paging.max(compute) - 1.0);
}

#[test]
fn e16_incast_shapes() {
    let r = incast_congestion(5, 150);
    // Aggregate throughput saturates near the receiver's service rate
    // (~1.4 writes/us) and never collapses.
    let single = r.rows[0].throughput;
    let five = r.rows.last().unwrap().throughput;
    assert!(
        five >= single * 0.9,
        "throughput collapsed under incast: {five:.2} vs {single:.2}"
    );
    assert!(five < 2.5, "throughput cannot exceed the service rate");
    // Every sender completes (the runner asserts all_halted), and the
    // fairness column is reported for inspection: deterministic
    // tie-breaking serializes issue completion under perfect symmetry, an
    // artifact the bench documents. Conservation is the hard guarantee:
    for row in &r.rows {
        assert!(row.fairness > 0.0 && row.fairness <= 1.0);
        assert!(row.throughput > 1.0, "throughput collapsed");
    }
}
