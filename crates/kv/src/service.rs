//! Deployment and drive: wiring the service onto a cluster.
//!
//! [`deploy`] allocates the shared pages, seeds the directory, and
//! installs one [`KvServer`](crate::KvServer) per replica node and one
//! [`KvClient`](crate::KvClient) per client node. [`drive`] then runs
//! the cluster in two phases: slices until every client resolved its
//! whole schedule (clients always terminate — every request has an
//! attempt budget), then raises the stop flag so the servers — which
//! otherwise poll their mailboxes forever — halt, and drains.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use telegraphos::{Cluster, SharedPage};
use tg_proto::RangeMap;
use tg_sim::{RunLimit, SimRng, SimTime};
use tg_wire::{NodeId, PageNum};

use crate::client::KvClient;
use crate::config::KvConfig;
use crate::layout::OpKindKv;
use crate::server::KvServer;

/// Why a request stopped: its terminal state at the client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Acked `Ok` by a replica — for a put this means the write was
    /// applied and fenced to every live replica *before* the ack left.
    Committed,
    /// The admission controller shed it `busy_budget` times; the client
    /// gave up (backpressure made visible to the workload).
    RejectedBusy,
    /// Every route was exhausted: the attempt budget ran out with no
    /// reachable owner.
    FailedUnreachable,
}

/// One request's full life at its client, for the audit.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// Client index (0-based; node id is `1 + replicas + client`).
    pub client: u16,
    /// Request id (1-based, per client).
    pub req: u32,
    /// Put or get.
    pub op: OpKindKv,
    /// Target key.
    pub key: u32,
    /// Open-loop scheduled arrival.
    pub arrival: SimTime,
    /// When the terminal outcome was reached.
    pub resolved: SimTime,
    /// Transmissions (1 = first try succeeded).
    pub attempts: u32,
    /// Ownership failovers this request drove.
    pub failovers: u32,
    /// Terminal state.
    pub outcome: Outcome,
    /// For committed gets: the merged stamp served (0 = unwritten key).
    pub get_stamp: u32,
}

/// One apply decision at a server, for the audit.
#[derive(Clone, Copy, Debug)]
pub struct ApplyEvent {
    /// Replica index of the applying server.
    pub server: u16,
    /// Client index the request came from.
    pub client: u16,
    /// Request id.
    pub req: u32,
    /// Key written.
    pub key: u32,
    /// True if this apply wrote the store; false if the idempotence
    /// guard recognised a duplicate and only re-acked.
    pub fresh: bool,
    /// Simulated instant of the decision.
    pub at: SimTime,
}

/// Per-server counters and the apply log.
#[derive(Default, Debug)]
pub struct ServerLog {
    /// Every apply decision (fresh and dedup), in order.
    pub applies: Vec<ApplyEvent>,
    /// Requests shed with `Busy` by admission control.
    pub busy_acks: u64,
    /// Duplicate puts recognised by the idempotence guard.
    pub dedup_hits: u64,
    /// Requests refused because the directory says the range moved.
    pub not_owner_acks: u64,
    /// Requests parked because the directory was unreachable (the
    /// split-brain guard: never commit without an ownership check).
    pub parked: u64,
    /// Gets served.
    pub gets_served: u64,
    /// Mailbox sweep passes.
    pub sweeps: u64,
}

/// Per-client counters and the request log.
#[derive(Default, Debug)]
pub struct ClientLog {
    /// Terminal record per request, in issue order.
    pub requests: Vec<RequestRecord>,
    /// Adaptive-timeout expiries.
    pub timeouts: u64,
    /// `Busy` acks absorbed (each backs off and retries).
    pub busy_acks: u64,
    /// Re-routes where the blocking reachability probe failed fast at
    /// issue time instead of waiting out a timeout.
    pub fail_fast_reroutes: u64,
    /// Acks observed for a request other than the live one (stale).
    pub stale_acks: u64,
    /// Directory re-reads after a `NotOwner` ack.
    pub dir_refreshes: u64,
    /// Directory operations that failed structurally.
    pub dir_failures: u64,
}

/// The page subset a process carries (pages are `Copy`; each process
/// keeps its own vector).
#[derive(Clone)]
pub(crate) struct KvPagesLite {
    pub mailboxes: Vec<SharedPage>,
    pub acks: Vec<SharedPage>,
    pub stores: Vec<SharedPage>,
    pub dir: SharedPage,
}

/// The service's shared pages.
pub struct KvPages {
    /// Request mailboxes, one per replica (homed on it).
    pub mailboxes: Vec<SharedPage>,
    /// Ack pages, one per client (homed on it).
    pub acks: Vec<SharedPage>,
    /// Store pages, one per replica (homed on it, eager-mapped to the
    /// rest of the replica set).
    pub stores: Vec<SharedPage>,
    /// Per store page: the consumer replicas' local frames, for audits
    /// that inspect replica copies directly.
    pub store_copies: Vec<Vec<(NodeId, PageNum)>>,
    /// The ownership directory on node 0.
    pub dir: SharedPage,
}

/// Everything a campaign needs to drive and audit a deployment.
pub struct KvHandles {
    /// The deployed configuration.
    pub cfg: KvConfig,
    /// The shared pages.
    pub pages: KvPages,
    /// The ownership map (identical at every participant).
    pub map: RangeMap,
    /// One log per replica server.
    pub server_logs: Vec<Rc<RefCell<ServerLog>>>,
    /// One log per client.
    pub client_logs: Vec<Rc<RefCell<ClientLog>>>,
    /// Raised by [`drive`] once every client resolved; servers halt at
    /// their next wake.
    pub stop: Rc<Cell<bool>>,
}

/// Allocates the pages, seeds the directory, and installs the server
/// and client processes. The cluster must already be built (and its
/// heartbeats enabled by the caller — the failover path depends on
/// conviction verdicts).
///
/// # Panics
///
/// Panics if `cfg` fails [`KvConfig::validate`] or the cluster has
/// fewer than [`KvConfig::nodes_required`] nodes.
pub fn deploy(cluster: &mut Cluster, cfg: &KvConfig) -> KvHandles {
    if let Err(e) = cfg.validate() {
        panic!("invalid KvConfig: {e}");
    }
    assert!(
        cluster.node_count() >= cfg.nodes_required(),
        "cluster too small: {} nodes, need {}",
        cluster.node_count(),
        cfg.nodes_required()
    );
    let replica_nodes = cfg.replica_nodes();
    let map = RangeMap::new(cfg.ranges, &replica_nodes);

    // Directory: owner word per range (seeded with the static homes),
    // epoch word per range (seeded 0).
    let dir = cluster.alloc_shared(0);
    for g in 0..cfg.ranges {
        cluster.write_shared(&dir, u64::from(g), u64::from(map.home_of(g).raw()));
    }

    let mut mailboxes = Vec::new();
    let mut stores = Vec::new();
    let mut store_copies = Vec::new();
    for (ri, &rn) in replica_nodes.iter().enumerate() {
        mailboxes.push(cluster.alloc_shared(rn.raw()));
        let store = cluster.alloc_shared(rn.raw());
        let consumers: Vec<u16> = replica_nodes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != ri)
            .map(|(_, n)| n.raw())
            .collect();
        store_copies.push(cluster.make_eager(&store, &consumers));
        stores.push(store);
    }
    let acks: Vec<SharedPage> = cfg
        .client_nodes()
        .iter()
        .map(|cn| cluster.alloc_shared(cn.raw()))
        .collect();

    let stop = Rc::new(Cell::new(false));
    let mut server_logs = Vec::new();
    for (ri, rn) in replica_nodes.iter().enumerate() {
        let log = Rc::new(RefCell::new(ServerLog::default()));
        server_logs.push(Rc::clone(&log));
        let server = KvServer::new(
            ri as u16,
            cfg,
            &map,
            &mailboxes,
            &acks,
            &stores,
            &dir,
            Rc::clone(&log),
            Rc::clone(&stop),
        );
        cluster.set_process(rn.raw(), server);
    }

    let mut client_logs = Vec::new();
    let mut base_rng = SimRng::new(cfg.seed);
    for (ci, cn) in cfg.client_nodes().into_iter().enumerate() {
        let log = Rc::new(RefCell::new(ClientLog::default()));
        client_logs.push(Rc::clone(&log));
        let client = KvClient::new(
            ci as u16,
            cfg,
            &map,
            &mailboxes,
            &acks[ci],
            &dir,
            base_rng.fork(ci as u64),
            Rc::clone(&log),
        );
        cluster.set_process(cn.raw(), client);
    }

    KvHandles {
        cfg: cfg.clone(),
        pages: KvPages {
            mailboxes,
            acks,
            stores,
            store_copies,
            dir,
        },
        map,
        server_logs,
        client_logs,
        stop,
    }
}

/// Drives a deployed service to completion: slices until every client
/// halted (or `limit` passes), then raises the stop flag and drains the
/// servers via [`Cluster::run_to_quiescence`]. Returns
/// [`RunLimit::Deadline`] if the clients did not finish in time.
pub fn drive(
    cluster: &mut Cluster,
    handles: &KvHandles,
    step: SimTime,
    limit: SimTime,
) -> RunLimit {
    assert!(!step.is_zero(), "zero drive step");
    let clients = handles.cfg.client_nodes();
    let mut clients_done = false;
    while cluster.now() < limit {
        let deadline = (cluster.now() + step).min(limit);
        cluster.run_until(deadline);
        if clients.iter().all(|&cn| cluster.node(cn.raw()).halted()) {
            clients_done = true;
            break;
        }
    }
    handles.stop.set(true);
    let rest = cluster.run_to_quiescence(step, limit);
    if clients_done {
        rest
    } else {
        RunLimit::Deadline
    }
}
