//! Post-run verification: the service-level contract, checked exactly.
//!
//! The campaign's value is not that the service *usually* works — it is
//! that after any run, crash-scarred or not, these gates hold:
//!
//! 1. **Completeness** — every scheduled request reached a terminal
//!    outcome; nothing hung.
//! 2. **At-most-once** — per `(client, request)`, at most one *fresh*
//!    apply across every never-silenced server: retries and failovers
//!    never double-apply anywhere a client could observe. A replica
//!    that is crash-silenced *mid-commit* may log a fresh apply whose
//!    eager fan-out died with it (its fence resolves against convicted
//!    peers and its ack is swallowed) — that apply was never
//!    acknowledged and the replica is never re-promoted, so it is
//!    unobservable; the gate therefore scopes to never-silenced
//!    servers, which is exactly the client-visible contract.
//! 3. **Apply consistency** — every apply decision for a request names
//!    the same key (no torn or corrupted request was ever applied).
//! 4. **Acked-implies-applied** — every committed put has an apply.
//! 5. **Durability** — for every committed put, every replica that was
//!    never crash-silenced holds the write (merged stamp ≥ the request
//!    id) in its local copies. This is the ack-after-fence invariant
//!    made falsifiable: the ack only left after the eager update was
//!    fenced to every live replica. Ever-crashed replicas are exempt —
//!    they missed updates while silenced and re-syncing them is
//!    anti-entropy work this service deliberately does not do (they are
//!    also never re-promoted; see the client's sticky suspicion).
//! 6. **Attribution** — every nonzero stamp in the final merged store
//!    is a request some server logged as a fresh apply of that key.
//! 7. **Get sanity** — every committed get returned a stamp that is
//!    either 0 (unwritten) or an applied write of that key.
//!
//! [`fingerprint`] folds the complete observable history (every request
//! record, every apply, the final store) into one hash; two runs of the
//! same seed must produce the same value bit-for-bit, which is how the
//! campaign proves the robustness layer kept the simulation
//! deterministic.

use std::collections::{BTreeMap, BTreeSet};

use telegraphos::Cluster;
use tg_wire::NodeId;

use crate::config::KvConfig;
use crate::layout::OpKindKv;
use crate::service::{KvHandles, Outcome};

/// The audit's verdict and the headline service metrics.
#[derive(Debug)]
pub struct AuditReport {
    /// Every gate violation, human-readable. Empty = the contract held.
    pub violations: Vec<String>,
    /// Committed puts.
    pub committed_puts: u64,
    /// Committed gets.
    pub committed_gets: u64,
    /// Requests shed terminally by admission control.
    pub rejected_busy: u64,
    /// Requests that exhausted every route.
    pub failed_unreachable: u64,
    /// Fresh applies across all servers.
    pub fresh_applies: u64,
    /// Duplicate transmissions recognised and suppressed.
    pub dedup_hits: u64,
    /// Client-observed timeouts.
    pub timeouts: u64,
    /// Ownership failovers driven by clients.
    pub failovers: u64,
    /// Committed-request latencies (resolved − scheduled arrival), in
    /// nanoseconds, unsorted (schedule order).
    pub latencies_ns: Vec<u64>,
    /// The determinism fingerprint of the whole observable history.
    pub fingerprint: u64,
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The merged stamp replica `ri` holds for `key`, across its local
/// copies of every store page (its own home page plus the eager copies
/// it consumes).
fn merged_stamp_at(cluster: &Cluster, h: &KvHandles, ri: usize, key: u32) -> u64 {
    let my_node = NodeId::new(1 + ri as u16);
    let mut best = cluster.read_shared(&h.pages.stores[ri], u64::from(key));
    for (src, copies) in h.pages.store_copies.iter().enumerate() {
        if src == ri {
            continue;
        }
        for &(node, frame) in copies {
            if node == my_node {
                best = best.max(cluster.read_local_frame(node.raw(), frame, u64::from(key)));
            }
        }
    }
    best
}

/// Runs every gate against a finished deployment. `ever_crashed` names
/// the replica nodes the fault plan silenced at any point (exempt from
/// the durability gate, as documented in the module header).
pub fn audit(cluster: &Cluster, h: &KvHandles, ever_crashed: &[NodeId]) -> AuditReport {
    let cfg: &KvConfig = &h.cfg;
    let mut violations = Vec::new();
    let crashed: BTreeSet<u16> = ever_crashed.iter().map(|n| n.raw()).collect();

    // Gate 1: completeness.
    for (ci, log) in h.client_logs.iter().enumerate() {
        let n = log.borrow().requests.len();
        if n != cfg.requests_per_client as usize {
            violations.push(format!(
                "client {ci}: {n} of {} requests resolved",
                cfg.requests_per_client
            ));
        }
    }

    // Collect applies per (client, req).
    let mut fresh: BTreeMap<(u16, u32), Vec<(u16, u32)>> = BTreeMap::new();
    let mut all_applies: BTreeMap<(u16, u32), Vec<u32>> = BTreeMap::new();
    let mut applied_keys: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut fresh_applies = 0u64;
    let mut dedup_hits = 0u64;
    for log in &h.server_logs {
        let log = log.borrow();
        dedup_hits += log.dedup_hits;
        for a in &log.applies {
            all_applies
                .entry((a.client, a.req))
                .or_default()
                .push(a.key);
            if a.fresh {
                fresh_applies += 1;
                fresh
                    .entry((a.client, a.req))
                    .or_default()
                    .push((a.server, a.key));
                applied_keys.entry(a.key).or_default().insert(a.req);
            }
        }
    }

    // Gate 2: at-most-once among never-silenced servers (a silenced
    // replica's mid-commit apply is unacknowledged and unobservable —
    // see the module docs).
    for (&(ci, req), sites) in &fresh {
        let observable: Vec<_> = sites
            .iter()
            .filter(|(server, _)| !crashed.contains(&(1 + server)))
            .collect();
        if observable.len() > 1 {
            violations.push(format!(
                "request c{ci}/r{req} applied fresh {} times: {observable:?}",
                observable.len()
            ));
        }
    }

    // Gate 3: apply consistency.
    for (&(ci, req), keys) in &all_applies {
        if keys.windows(2).any(|w| w[0] != w[1]) {
            violations.push(format!(
                "request c{ci}/r{req} applies disagree on key: {keys:?}"
            ));
        }
    }

    let live_replicas: Vec<usize> = (0..cfg.replicas as usize)
        .filter(|ri| !crashed.contains(&(1 + *ri as u16)))
        .collect();

    let mut committed_puts = 0u64;
    let mut committed_gets = 0u64;
    let mut rejected_busy = 0u64;
    let mut failed_unreachable = 0u64;
    let mut timeouts = 0u64;
    let mut failovers = 0u64;
    let mut latencies_ns = Vec::new();
    for log in &h.client_logs {
        let log = log.borrow();
        timeouts += log.timeouts;
        for r in &log.requests {
            failovers += u64::from(r.failovers);
            match r.outcome {
                Outcome::Committed => {
                    latencies_ns.push((r.resolved.saturating_sub(r.arrival)).as_ns());
                    match r.op {
                        OpKindKv::Put => {
                            committed_puts += 1;
                            // Gate 4: acked-implies-applied.
                            if !all_applies.contains_key(&(r.client, r.req)) {
                                violations.push(format!(
                                    "committed put c{}/r{} has no apply record",
                                    r.client, r.req
                                ));
                            }
                            // Gate 5: durability on never-crashed replicas.
                            for &ri in &live_replicas {
                                let stamp = merged_stamp_at(cluster, h, ri, r.key);
                                if stamp < u64::from(r.req) {
                                    violations.push(format!(
                                        "lost acked write: c{}/r{} key {} absent on \
                                         never-crashed replica {} (stamp {stamp})",
                                        r.client, r.req, r.key, ri
                                    ));
                                }
                            }
                        }
                        OpKindKv::Get => {
                            committed_gets += 1;
                            // Gate 7: get sanity.
                            if r.get_stamp != 0
                                && !applied_keys
                                    .get(&r.key)
                                    .is_some_and(|reqs| reqs.contains(&r.get_stamp))
                            {
                                violations.push(format!(
                                    "get c{}/r{} key {} returned unapplied stamp {}",
                                    r.client, r.req, r.key, r.get_stamp
                                ));
                            }
                        }
                    }
                }
                Outcome::RejectedBusy => rejected_busy += 1,
                Outcome::FailedUnreachable => failed_unreachable += 1,
            }
        }
    }

    // Gate 6: attribution of the final merged store.
    for key in 0..cfg.total_keys() {
        let mut final_stamp = 0u64;
        for &ri in &live_replicas {
            final_stamp = final_stamp.max(merged_stamp_at(cluster, h, ri, key));
        }
        if final_stamp != 0
            && !applied_keys
                .get(&key)
                .is_some_and(|reqs| reqs.contains(&(final_stamp as u32)))
        {
            violations.push(format!(
                "final store stamp {final_stamp} on key {key} matches no fresh apply"
            ));
        }
    }

    AuditReport {
        violations,
        committed_puts,
        committed_gets,
        rejected_busy,
        failed_unreachable,
        fresh_applies,
        dedup_hits,
        timeouts,
        failovers,
        latencies_ns,
        fingerprint: fingerprint(cluster, h),
    }
}

/// Folds the complete observable history — every request record, every
/// apply decision, every server counter, and the final store words at
/// every replica — into one 64-bit hash. Same seed ⇒ same fingerprint,
/// bit-for-bit; the campaign runs each configuration twice and compares.
pub fn fingerprint(cluster: &Cluster, h: &KvHandles) -> u64 {
    let mut hash = 0u64;
    for (ci, log) in h.client_logs.iter().enumerate() {
        let log = log.borrow();
        hash = fnv1a(hash, format!("c{ci}").as_bytes());
        for r in &log.requests {
            hash = fnv1a(
                hash,
                format!(
                    "r{}:{:?}:{}:{}:{}:{}:{}:{:?}:{}",
                    r.req,
                    r.op,
                    r.key,
                    r.arrival.as_ps(),
                    r.resolved.as_ps(),
                    r.attempts,
                    r.failovers,
                    r.outcome,
                    r.get_stamp,
                )
                .as_bytes(),
            );
        }
        hash = fnv1a(
            hash,
            format!(
                "t{}b{}f{}s{}d{}x{}",
                log.timeouts,
                log.busy_acks,
                log.fail_fast_reroutes,
                log.stale_acks,
                log.dir_refreshes,
                log.dir_failures
            )
            .as_bytes(),
        );
    }
    for (ri, log) in h.server_logs.iter().enumerate() {
        let log = log.borrow();
        hash = fnv1a(hash, format!("s{ri}").as_bytes());
        for a in &log.applies {
            hash = fnv1a(
                hash,
                format!(
                    "a{}:{}:{}:{}:{}:{}",
                    a.server,
                    a.client,
                    a.req,
                    a.key,
                    a.fresh,
                    a.at.as_ps()
                )
                .as_bytes(),
            );
        }
        hash = fnv1a(
            hash,
            format!(
                "b{}d{}n{}p{}g{}w{}",
                log.busy_acks,
                log.dedup_hits,
                log.not_owner_acks,
                log.parked,
                log.gets_served,
                log.sweeps
            )
            .as_bytes(),
        );
    }
    for ri in 0..h.cfg.replicas as usize {
        for key in 0..h.cfg.total_keys() {
            hash = fnv1a(hash, &merged_stamp_at(cluster, h, ri, key).to_le_bytes());
        }
    }
    hash
}
