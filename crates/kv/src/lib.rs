//! A replicated key-value service built on the Telegraphos primitives.
//!
//! This crate is the paper's "what the hardware buys you" argument run
//! end-to-end: a small replicated KV service whose *entire* data path is
//! the fabric's user-level memory operations — no OS messaging, no
//! sockets:
//!
//! - **Requests** ride posted remote writes into per-replica mailbox
//!   pages (the paper's cheap user-level communication).
//! - **Replication** is the eager-update multicast of shared pages: a
//!   committed put is one local store that the hardware fans out to the
//!   replica set, fenced before the ack (§ eager sharing).
//! - **Ownership** is arbitrated with remote fetch-and-Φ atomics on a
//!   directory page (§2.3.4), so racing clients converge on one owner
//!   per key range without a lock server.
//!
//! On top of that data path sits the *robustness layer* this crate
//! exists to measure, with every mechanism scoped to what a real
//! workstation cluster of the era could do: per-request adaptive
//! deadlines (Jacobson/Karn in integer picoseconds), bounded
//! exponential-backoff retries that re-route on structural failure
//! signals, idempotent request ids with exact duplicate suppression,
//! directory-published failover driven by the heartbeat detector's
//! verdicts, and explicit admission control at the servers.
//!
//! The crash campaign (`simkv`) drives the service through crash,
//! crash+restart, switch-outage, and control-plane-fault scenarios and
//! audits the logs for the service-level contract: **no acknowledged
//! write is ever lost, no retried request is ever applied twice**, and
//! the whole run replays byte-identically from the same seed.

#![warn(missing_docs)]

pub mod audit;
pub mod client;
pub mod config;
pub mod layout;
pub mod server;
pub mod service;

pub use audit::{audit, fingerprint, AuditReport};
pub use client::KvClient;
pub use config::KvConfig;
pub use layout::{
    dec_ack, dec_req, enc_ack, enc_req, value_of, AckCode, AckWord, OpKindKv, ReqWord,
};
pub use server::KvServer;
pub use service::{
    deploy, drive, ApplyEvent, ClientLog, KvHandles, KvPages, Outcome, RequestRecord, ServerLog,
};
