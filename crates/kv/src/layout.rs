//! Shared-page layouts and single-word message encodings.
//!
//! Every protocol message is **one 64-bit word**. Remote writes on the
//! fabric are single-word packets, so a one-word message is applied
//! atomically at the destination; a multi-word message could tear if the
//! words raced each other through a route recomputation. Packing the
//! whole request (and the whole ack) into one word removes every
//! ordering assumption beyond what the memory system itself gives us —
//! which is exactly the robustness posture this service is for.
//!
//! The pages:
//!
//! - **Mailbox** `M_r`, one per replica, homed on the replica: word `c`
//!   is client `c`'s request slot. Clients post requests with remote
//!   writes; the server sweeps the page locally.
//! - **Ack page** `A_c`, one per client, homed on the client: word `r`
//!   is replica `r`'s ack slot. Servers post acks with remote writes;
//!   the client polls locally.
//! - **Store** `E_r`, one per replica, homed on the replica and
//!   eager-update mapped to the other replicas: word `k` is key `k`'s
//!   **stamp** — the request id of the put that wrote it. Put payloads
//!   are the deterministic function [`value_of`]`(client, req)`, so the
//!   stamp *is* the value; carrying an opaque payload word would ride
//!   the same posted-write path and prove nothing further, while
//!   reintroducing the torn-write hazard.
//! - **Directory**, one page on node 0: word `g` is range `g`'s owner
//!   (raw node id), word `ranges + g` its failover epoch. Clients move
//!   ownership with remote atomics; servers validate it with remote
//!   reads before committing.

/// Bits in a request id (per client). ~1M requests per client.
pub const REQ_BITS: u32 = 20;
/// Bits in a key. 64Ki keys service-wide.
pub const KEY_BITS: u32 = 16;
/// Bits in an attempt counter (saturating; only freshness matters).
pub const ATTEMPT_BITS: u32 = 6;

const REQ_MASK: u64 = (1 << REQ_BITS) - 1;
const KEY_MASK: u64 = (1 << KEY_BITS) - 1;
const ATTEMPT_MASK: u64 = (1 << ATTEMPT_BITS) - 1;

/// Request kind carried in a request word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKindKv {
    /// Write `value_of(client, req)` to the key.
    Put,
    /// Read the key's current stamp.
    Get,
}

/// Ack status carried in an ack word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AckCode {
    /// Committed (put) or served (get; stamp field holds the result).
    Ok,
    /// Shed by admission control: retry after backoff.
    Busy,
    /// The serving replica no longer owns the key's range: refresh the
    /// directory and re-route.
    NotOwner,
}

/// A decoded request word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReqWord {
    /// Per-client request id, starting at 1 (0 is "empty slot").
    pub req: u32,
    /// Attempt number of this transmission (0 = first send).
    pub attempt: u32,
    /// Put or get.
    pub op: OpKindKv,
    /// Target key.
    pub key: u32,
}

/// A decoded ack word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AckWord {
    /// The request this ack answers.
    pub req: u32,
    /// Outcome code.
    pub code: AckCode,
    /// The attempt of the request transmission this ack answers, echoed
    /// from the request word. `Ok` is terminal and accepted regardless,
    /// but `Busy`/`NotOwner` only steer the client when they answer the
    /// *latest* transmission — without the echo, a fresh shed of attempt
    /// `k+1` would be bit-identical to the stale shed of attempt `k`.
    pub attempt: u32,
    /// For `Ok` gets: the key's merged stamp (0 = never written). For
    /// `Ok` puts: the committed stamp (== `req`). Otherwise 0.
    pub stamp: u32,
}

/// Encodes a request into its slot word. Bit 0 is a presence flag so an
/// empty (zeroed) slot can never decode as a request.
pub fn enc_req(r: ReqWord) -> u64 {
    let op = match r.op {
        OpKindKv::Put => 0u64,
        OpKindKv::Get => 1u64,
    };
    1 | (op << 1)
        | ((u64::from(r.attempt) & ATTEMPT_MASK) << 2)
        | ((u64::from(r.req) & REQ_MASK) << 8)
        | ((u64::from(r.key) & KEY_MASK) << 28)
}

/// Decodes a request slot word; `None` for an empty slot.
pub fn dec_req(w: u64) -> Option<ReqWord> {
    if w & 1 == 0 {
        return None;
    }
    Some(ReqWord {
        req: ((w >> 8) & REQ_MASK) as u32,
        attempt: ((w >> 2) & ATTEMPT_MASK) as u32,
        op: if (w >> 1) & 1 == 0 {
            OpKindKv::Put
        } else {
            OpKindKv::Get
        },
        key: ((w >> 28) & KEY_MASK) as u32,
    })
}

/// Encodes an ack into its slot word (bit 0 = presence, as for requests).
pub fn enc_ack(a: AckWord) -> u64 {
    let code = match a.code {
        AckCode::Ok => 1u64,
        AckCode::Busy => 2,
        AckCode::NotOwner => 3,
    };
    1 | (code << 1)
        | ((u64::from(a.attempt) & ATTEMPT_MASK) << 3)
        | ((u64::from(a.req) & REQ_MASK) << 9)
        | ((u64::from(a.stamp) & REQ_MASK) << 29)
}

/// Decodes an ack slot word; `None` for an empty slot or a corrupt code.
pub fn dec_ack(w: u64) -> Option<AckWord> {
    if w & 1 == 0 {
        return None;
    }
    let code = match (w >> 1) & 0b11 {
        1 => AckCode::Ok,
        2 => AckCode::Busy,
        3 => AckCode::NotOwner,
        _ => return None,
    };
    Some(AckWord {
        req: ((w >> 9) & REQ_MASK) as u32,
        code,
        attempt: ((w >> 3) & ATTEMPT_MASK) as u32,
        stamp: ((w >> 29) & REQ_MASK) as u32,
    })
}

/// The deterministic put payload for `(client, req)`. The audit (and a
/// get's caller) reconstructs the value a stamp denotes without the wire
/// ever carrying it; distinct `(client, req)` pairs map to distinct
/// values, so a wrong apply is always detectable.
pub fn value_of(client: u16, req: u32) -> u64 {
    (u64::from(req) << 17) | (u64::from(client) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_words_round_trip() {
        for (req, attempt, op, key) in [
            (1, 0, OpKindKv::Put, 0),
            (0xF_FFFF, 63, OpKindKv::Get, 0xFFFF),
            (512, 7, OpKindKv::Get, 31),
        ] {
            let w = enc_req(ReqWord {
                req,
                attempt,
                op,
                key,
            });
            assert_eq!(
                dec_req(w),
                Some(ReqWord {
                    req,
                    attempt,
                    op,
                    key
                })
            );
        }
        assert_eq!(dec_req(0), None, "a zeroed slot is empty");
    }

    #[test]
    fn ack_words_round_trip_and_reject_corruption() {
        for (req, code, attempt, stamp) in [
            (1, AckCode::Ok, 0, 1),
            (77, AckCode::Busy, 5, 0),
            (0xF_FFFF, AckCode::NotOwner, 63, 0),
            (9, AckCode::Ok, 12, 0xF_FFFF),
        ] {
            let w = enc_ack(AckWord {
                req,
                code,
                attempt,
                stamp,
            });
            assert_eq!(
                dec_ack(w),
                Some(AckWord {
                    req,
                    code,
                    attempt,
                    stamp
                })
            );
        }
        assert_eq!(dec_ack(0), None);
        assert_eq!(dec_ack(1), None, "code 0 with the flag set is corrupt");
        let fresh = enc_ack(AckWord {
            req: 4,
            code: AckCode::Busy,
            attempt: 1,
            stamp: 0,
        });
        let stale = enc_ack(AckWord {
            req: 4,
            code: AckCode::Busy,
            attempt: 0,
            stamp: 0,
        });
        assert_ne!(fresh, stale, "retransmission sheds are distinguishable");
    }

    #[test]
    fn payloads_are_distinct_per_writer_and_request() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..4u16 {
            for r in 1..64u32 {
                assert!(seen.insert(value_of(c, r)));
            }
        }
        assert_ne!(value_of(0, 1), 0, "payloads never collide with 'unwritten'");
    }
}
