//! The replica server: sweep, admit, validate ownership, apply, fence,
//! ack.
//!
//! A server is a poll-style state machine on its replica node. Each
//! cycle it sweeps its mailbox page (local reads — clients deposited
//! requests with remote writes), admits up to `queue_cap` new requests
//! (shedding the rest with explicit `Busy` acks — admission control,
//! not silent drops), then processes the queue one request at a time:
//!
//! 1. **Ownership check** (split-brain guard): a *blocking remote read*
//!    of the directory word for the key's range. If the directory
//!    disagrees, ack `NotOwner`; if the directory is unreachable —
//!    which is exactly the situation of a crashed or partitioned
//!    replica that hasn't noticed yet — the request is *parked*, never
//!    committed. An isolated replica can therefore never acknowledge a
//!    write the rest of the cluster won't see.
//! 2. **Idempotence guard**: the per-client applied-request watermark
//!    (fast path), then the key's merged stamp across every replica's
//!    store copy (all local reads — eager updates keep the copies
//!    warm). Keys are single-writer and requests per client are
//!    monotonic, so `merged stamp >= req` identifies a duplicate
//!    exactly; duplicates are re-acked but never re-applied.
//! 3. **Apply + fence**: a fresh put writes the stamp into the server's
//!    own eager-mapped store page — the eager-update machinery fans the
//!    word out to the other replicas — and then issues a `Fence`, which
//!    blocks until every *live* replica acknowledged the update. Only
//!    then does the ack leave. This ordering is the durability
//!    invariant the campaign audits: an acknowledged write is already
//!    replicated on every live replica at ack time, so no single crash
//!    can lose it.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use telegraphos::{Action, Process, Resume, SharedPage};
use tg_proto::RangeMap;
use tg_sim::SimTime;
use tg_wire::NodeId;

use crate::config::KvConfig;
use crate::layout::{dec_req, enc_ack, AckCode, AckWord, OpKindKv, ReqWord};
use crate::service::{ApplyEvent, KvPagesLite, ServerLog};

/// The request being processed.
#[derive(Clone, Copy)]
struct Current {
    ci: u16,
    spec: ReqWord,
    stamp_max: u32,
}

enum SState {
    /// Reading mailbox slot `ci` during a sweep.
    Sweep { ci: u16 },
    /// Waiting out the posted `Busy` ack written while sweeping slot `ci`.
    ShedAck { ci: u16 },
    /// Re-reading the slot of the queue head (freshest attempt word).
    ReRead { ci: u16 },
    /// Waiting on the blocking directory read for `cur`.
    DirCheck,
    /// Merging store copies: waiting on the read of copy `i`.
    Merge { i: usize },
    /// Waiting out the fresh apply's store write.
    Apply,
    /// Waiting on the fence that makes the apply durable.
    FenceWait,
    /// Waiting out the posted ack for `cur` (then back to the queue).
    Ack,
    /// Sleeping `poll_every` between sweeps.
    Sleep,
}

/// One replica's server process. See the module docs for the protocol.
pub struct KvServer {
    me: u16,
    me_node: NodeId,
    clients: u16,
    queue_cap: usize,
    poll_every: SimTime,
    map: RangeMap,
    pages: KvPagesLite,
    /// Last slot word seen per client; a slot is new when it differs.
    last_slot: Vec<u64>,
    /// Per-client applied-request watermark (fast-path idempotence).
    applied_watermark: Vec<u32>,
    /// Admitted requests (client indexes), bounded by `queue_cap`.
    pending: VecDeque<u16>,
    in_pending: Vec<bool>,
    cur: Option<Current>,
    state: SState,
    log: Rc<RefCell<ServerLog>>,
    stop: Rc<Cell<bool>>,
}

impl KvServer {
    /// Builds the server for replica `me` (0-based index into the
    /// replica set).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: u16,
        cfg: &KvConfig,
        map: &RangeMap,
        mailboxes: &[SharedPage],
        acks: &[SharedPage],
        stores: &[SharedPage],
        dir: &SharedPage,
        log: Rc<RefCell<ServerLog>>,
        stop: Rc<Cell<bool>>,
    ) -> Self {
        KvServer {
            me,
            me_node: NodeId::new(1 + me),
            clients: cfg.clients,
            queue_cap: cfg.queue_cap,
            poll_every: cfg.poll_every,
            map: map.clone(),
            pages: KvPagesLite {
                mailboxes: mailboxes.to_vec(),
                acks: acks.to_vec(),
                stores: stores.to_vec(),
                dir: *dir,
            },
            last_slot: vec![0; cfg.clients as usize],
            applied_watermark: vec![0; cfg.clients as usize],
            pending: VecDeque::new(),
            in_pending: vec![false; cfg.clients as usize],
            cur: None,
            state: SState::Sleep,
            log,
            stop,
        }
    }

    fn my_mailbox(&self) -> &SharedPage {
        &self.pages.mailboxes[self.me as usize]
    }

    fn read_slot(&mut self, ci: u16) -> Action {
        Action::Read(self.my_mailbox().va(8 * u64::from(ci)))
    }

    fn post_ack(&mut self, ci: u16, ack: AckWord) -> Action {
        let page = self.pages.acks[ci as usize];
        Action::Write(page.va(8 * u64::from(self.me)), enc_ack(ack))
    }

    /// Next action after finishing slot `ci` of a sweep.
    fn sweep_next(&mut self, ci: u16) -> Action {
        let next = ci + 1;
        if next < self.clients {
            self.state = SState::Sweep { ci: next };
            self.read_slot(next)
        } else {
            self.queue_step()
        }
    }

    /// Pops the queue or goes back to sleep.
    fn queue_step(&mut self) -> Action {
        if let Some(ci) = self.pending.pop_front() {
            self.in_pending[ci as usize] = false;
            self.state = SState::ReRead { ci };
            return self.read_slot(ci);
        }
        if self.stop.get() {
            return Action::Halt;
        }
        self.state = SState::Sleep;
        Action::Compute(self.poll_every)
    }

    /// Finishes `cur` with an ack and returns to the queue.
    fn finish(&mut self, code: AckCode, stamp: u32) -> Action {
        let cur = self.cur.expect("finishing without a request");
        self.state = SState::Ack;
        self.post_ack(
            cur.ci,
            AckWord {
                req: cur.spec.req,
                code,
                attempt: cur.spec.attempt,
                stamp,
            },
        )
    }

    fn log_apply(&mut self, cur: Current, fresh: bool, at: SimTime) {
        self.log.borrow_mut().applies.push(ApplyEvent {
            server: self.me,
            client: cur.ci,
            req: cur.spec.req,
            key: cur.spec.key,
            fresh,
            at,
        });
    }
}

impl Process for KvServer {
    fn resume(&mut self, r: Resume) -> Action {
        self.resume_at(r, SimTime::ZERO)
    }

    fn resume_at(&mut self, r: Resume, now: SimTime) -> Action {
        match std::mem::replace(&mut self.state, SState::Sleep) {
            SState::Sleep => {
                // Start of life (Resume::Start) or end of a poll nap:
                // begin a sweep.
                if self.stop.get() && self.pending.is_empty() {
                    return Action::Halt;
                }
                self.log.borrow_mut().sweeps += 1;
                self.state = SState::Sweep { ci: 0 };
                self.read_slot(0)
            }
            SState::Sweep { ci } => {
                let word = match r {
                    Resume::Value(w) => w,
                    _ => 0,
                };
                let idx = ci as usize;
                if word != 0 && word != self.last_slot[idx] && !self.in_pending[idx] {
                    if self.pending.len() < self.queue_cap {
                        self.pending.push_back(ci);
                        self.in_pending[idx] = true;
                        // The slot word is consumed at ReRead time so the
                        // freshest attempt is the one processed.
                    } else {
                        // Admission control: shed with an explicit Busy.
                        self.last_slot[idx] = word;
                        if let Some(spec) = dec_req(word) {
                            self.log.borrow_mut().busy_acks += 1;
                            self.state = SState::ShedAck { ci };
                            return self.post_ack(
                                ci,
                                AckWord {
                                    req: spec.req,
                                    code: AckCode::Busy,
                                    attempt: spec.attempt,
                                    stamp: 0,
                                },
                            );
                        }
                    }
                }
                self.sweep_next(ci)
            }
            SState::ShedAck { ci } => self.sweep_next(ci),
            SState::ReRead { ci } => {
                let word = match r {
                    Resume::Value(w) => w,
                    _ => 0,
                };
                let idx = ci as usize;
                if word == 0 || word == self.last_slot[idx] {
                    return self.queue_step();
                }
                self.last_slot[idx] = word;
                let Some(spec) = dec_req(word) else {
                    return self.queue_step();
                };
                let range = self.map.range_of(u64::from(spec.key));
                self.cur = Some(Current {
                    ci,
                    spec,
                    stamp_max: 0,
                });
                self.state = SState::DirCheck;
                Action::Read(self.pages.dir.va(8 * u64::from(range)))
            }
            SState::DirCheck => match r {
                Resume::Value(owner_raw) => {
                    let cur = self.cur.expect("dir check without a request");
                    if owner_raw != u64::from(self.me_node.raw()) {
                        self.log.borrow_mut().not_owner_acks += 1;
                        return self.finish(AckCode::NotOwner, 0);
                    }
                    self.state = SState::Merge { i: 0 };
                    Action::Read(self.pages.stores[0].va(8 * u64::from(cur.spec.key)))
                }
                _ => {
                    // Directory unreachable: this replica may be the one
                    // that is cut off. Park — the client's retry will
                    // land wherever the directory says.
                    self.log.borrow_mut().parked += 1;
                    self.cur = None;
                    self.queue_step()
                }
            },
            SState::Merge { i } => {
                let mut cur = self.cur.expect("merge without a request");
                if let Resume::Value(stamp) = r {
                    cur.stamp_max = cur.stamp_max.max(stamp as u32);
                }
                let next = i + 1;
                if next < self.pages.stores.len() {
                    self.cur = Some(cur);
                    self.state = SState::Merge { i: next };
                    return Action::Read(self.pages.stores[next].va(8 * u64::from(cur.spec.key)));
                }
                self.cur = Some(cur);
                match cur.spec.op {
                    OpKindKv::Get => {
                        self.log.borrow_mut().gets_served += 1;
                        self.finish(AckCode::Ok, cur.stamp_max)
                    }
                    OpKindKv::Put => {
                        let watermark = self.applied_watermark[cur.ci as usize];
                        if cur.spec.req <= watermark || cur.stamp_max >= cur.spec.req {
                            // Idempotence guard: already applied (here or
                            // by a previous owner whose eager update we
                            // hold). Re-ack, never re-apply.
                            self.log.borrow_mut().dedup_hits += 1;
                            self.log_apply(cur, false, now);
                            return self.finish(AckCode::Ok, cur.spec.req);
                        }
                        self.state = SState::Apply;
                        Action::Write(
                            self.pages.stores[self.me as usize].va(8 * u64::from(cur.spec.key)),
                            u64::from(cur.spec.req),
                        )
                    }
                }
            }
            SState::Apply => {
                // The store word is written locally and fanning out to
                // the replica set; the fence makes it durable before the
                // ack can leave.
                self.state = SState::FenceWait;
                Action::Fence
            }
            SState::FenceWait => {
                let cur = self.cur.expect("fence without a request");
                let idx = cur.ci as usize;
                self.applied_watermark[idx] = self.applied_watermark[idx].max(cur.spec.req);
                self.log_apply(cur, true, now);
                self.finish(AckCode::Ok, cur.spec.req)
            }
            SState::Ack => {
                self.cur = None;
                self.queue_step()
            }
        }
    }
}
