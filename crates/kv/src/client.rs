//! The client: open-loop load, adaptive timeouts, retries, failover.
//!
//! Each client precomputes a heavy-tailed open-loop request schedule
//! (inter-arrival gaps are `arrival_gap << k` with `P(k) = 2^-(k+1)`,
//! capped — a power-of-two Pareto approximation that needs no floating
//! point) and then works it one request at a time:
//!
//! - **Send**: the request is a single posted remote write into its
//!   slot of the target replica's mailbox. Posted writes carry no
//!   failure signal (a crashed destination swallows them silently), so
//!   the client supervises itself with a deadline.
//! - **Ack poll**: replicas answer with a posted write into the
//!   client's own ack page; the client polls it with cheap local reads.
//! - **Adaptive timeout**: the deadline is a Jacobson/Karn estimator in
//!   integer picoseconds — `srtt`/`rttvar` EWMAs from un-retransmitted
//!   requests only, `rto = clamp(srtt + 4·rttvar)`, doubled per retry.
//! - **Fail-fast retries**: a retransmission is preceded by a *blocking*
//!   read of the mailbox slot. Blocking reads do carry a failure
//!   signal ([`Resume::Failed`]) once the HIB convicts the peer, so a
//!   retry against a crashed replica re-routes in one step instead of
//!   burning the whole timeout ladder.
//! - **Failover**: `retries_per_target` timeouts (or one failed probe)
//!   convict the target locally; the client promotes the smallest-id
//!   live replica, publishes the change in the directory (fetch-add
//!   the range's epoch, fetch-store the owner word — the remote atomics
//!   arbitrate racing clients), and resends. Suspicion is sticky: a
//!   convicted replica is never re-used by this client, which is what
//!   makes the one-fault campaign scenarios safe without anti-entropy.
//! - **Backpressure**: a `Busy` ack backs off exponentially and retries,
//!   up to `busy_budget`; then the request resolves `RejectedBusy`.
//!   Every request also has a global `attempt_budget`, so a client
//!   always terminates and the drive loop never hangs.

use std::cell::RefCell;
use std::rc::Rc;

use telegraphos::{Action, Process, Resume, SharedPage};
use tg_proto::RangeMap;
use tg_sim::{SimRng, SimTime};
use tg_wire::NodeId;

use crate::config::KvConfig;
use crate::layout::{dec_ack, enc_req, AckCode, OpKindKv, ReqWord, ATTEMPT_BITS};
use crate::service::{ClientLog, Outcome, RequestRecord};

/// One scheduled request.
#[derive(Clone, Copy)]
struct ReqSpec {
    arrival: SimTime,
    op: OpKindKv,
    key: u32,
    req: u32,
}

enum CState {
    /// Waiting out the gap to the next scheduled arrival.
    WaitArrival,
    /// Blocking reachability probe of the target's mailbox slot.
    Probe,
    /// Posted request write in flight (resumes almost immediately).
    SendReq,
    /// Napping between ack polls.
    PollNap,
    /// Local read of the ack slot.
    PollRead,
    /// Re-reading the directory after a `NotOwner` ack.
    DirRefresh,
    /// Fetch-add of the range epoch (failover, step 1).
    FoEpoch { new_owner: NodeId },
    /// Fetch-store of the range owner word (failover, step 2).
    FoSwap { new_owner: NodeId },
    /// Backing off after a `Busy` ack or a stale directory answer.
    Backoff,
    /// Schedule exhausted.
    Finished,
}

/// One client node's load generator. See the module docs.
pub struct KvClient {
    ci: u16,
    replicas: u16,
    map: RangeMap,
    mailboxes: Vec<SharedPage>,
    ack: SharedPage,
    dir: SharedPage,
    retries_per_target: u32,
    attempt_budget: u32,
    busy_budget: u32,
    rto_init_ps: u64,
    rto_min_ps: u64,
    rto_max_ps: u64,
    poll_every: SimTime,
    /// Local liveness verdicts per replica index (sticky).
    live: Vec<bool>,
    /// Cached directory owner (raw node id) per range.
    dir_cache: Vec<u16>,
    schedule: Vec<ReqSpec>,
    idx: usize,
    // Live-request state.
    target: u16,
    attempts: u32,
    target_fails: u32,
    busy_left: u32,
    failovers: u32,
    rto_cur_ps: u64,
    deadline: SimTime,
    send_time: SimTime,
    // Jacobson/Karn estimator.
    srtt_ps: u64,
    rttvar_ps: u64,
    have_sample: bool,
    state: CState,
    log: Rc<RefCell<ClientLog>>,
}

impl KvClient {
    /// Builds client `ci` with its own forked workload stream.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ci: u16,
        cfg: &KvConfig,
        map: &RangeMap,
        mailboxes: &[SharedPage],
        ack: &SharedPage,
        dir: &SharedPage,
        mut rng: SimRng,
        log: Rc<RefCell<ClientLog>>,
    ) -> Self {
        let mut schedule = Vec::with_capacity(cfg.requests_per_client as usize);
        let mut t = SimTime::ZERO;
        for j in 0..cfg.requests_per_client {
            let shift = rng.next_u64().trailing_zeros().min(cfg.tail_shift_max);
            t += cfg.arrival_gap * (1u64 << shift);
            let op = if rng.range(100) < u64::from(cfg.write_ratio_pct) {
                OpKindKv::Put
            } else {
                OpKindKv::Get
            };
            let key = match op {
                OpKindKv::Put => {
                    u32::from(ci) * cfg.keys_per_client
                        + rng.range(u64::from(cfg.keys_per_client)) as u32
                }
                OpKindKv::Get => rng.range(u64::from(cfg.total_keys())) as u32,
            };
            schedule.push(ReqSpec {
                arrival: t,
                op,
                key,
                req: j + 1,
            });
        }
        let dir_cache = (0..cfg.ranges).map(|g| map.home_of(g).raw()).collect();
        KvClient {
            ci,
            replicas: cfg.replicas,
            map: map.clone(),
            mailboxes: mailboxes.to_vec(),
            ack: *ack,
            dir: *dir,
            retries_per_target: cfg.retries_per_target,
            attempt_budget: cfg.attempt_budget,
            busy_budget: cfg.busy_budget,
            rto_init_ps: cfg.rto_init.as_ps(),
            rto_min_ps: cfg.rto_min.as_ps(),
            rto_max_ps: cfg.rto_max.as_ps(),
            poll_every: cfg.poll_every,
            live: vec![true; cfg.replicas as usize],
            dir_cache,
            schedule,
            idx: 0,
            target: 0,
            attempts: 0,
            target_fails: 0,
            busy_left: 0,
            failovers: 0,
            rto_cur_ps: cfg.rto_init.as_ps(),
            deadline: SimTime::MAX,
            send_time: SimTime::ZERO,
            srtt_ps: 0,
            rttvar_ps: 0,
            have_sample: false,
            state: CState::Finished,
            log,
        }
    }

    fn spec(&self) -> ReqSpec {
        self.schedule[self.idx]
    }

    fn range(&self) -> u32 {
        self.map.range_of(u64::from(self.spec().key))
    }

    /// Replica index for a raw node id, if it names a replica.
    fn replica_idx(&self, raw: u16) -> Option<u16> {
        (1..=self.replicas).contains(&raw).then(|| raw - 1)
    }

    fn attempt_field(&self) -> u32 {
        (self.attempts.saturating_sub(1)).min((1 << ATTEMPT_BITS) - 1)
    }

    fn base_rto_ps(&self) -> u64 {
        if self.have_sample {
            (self.srtt_ps + 4 * self.rttvar_ps).clamp(self.rto_min_ps, self.rto_max_ps)
        } else {
            self.rto_init_ps
        }
    }

    fn rtt_sample(&mut self, rtt: SimTime) {
        let rtt = rtt.as_ps();
        if self.have_sample {
            let delta = self.srtt_ps.abs_diff(rtt);
            self.rttvar_ps = (3 * self.rttvar_ps + delta) / 4;
            self.srtt_ps = (7 * self.srtt_ps + rtt) / 8;
        } else {
            self.srtt_ps = rtt;
            self.rttvar_ps = rtt / 2;
            self.have_sample = true;
        }
    }

    fn backoff_rto(&mut self) {
        self.rto_cur_ps = (self.rto_cur_ps * 2).min(self.rto_max_ps);
    }

    /// Starts the next scheduled request (or finishes).
    fn start_next(&mut self, now: SimTime) -> Action {
        if self.idx >= self.schedule.len() {
            self.state = CState::Finished;
            return Action::Halt;
        }
        self.attempts = 0;
        self.target_fails = 0;
        self.busy_left = self.busy_budget;
        self.failovers = 0;
        self.rto_cur_ps = self.base_rto_ps();
        let arrival = self.spec().arrival;
        if now < arrival {
            self.state = CState::WaitArrival;
            return Action::Compute(arrival - now);
        }
        self.route_and_issue(now)
    }

    /// Routes by the cached directory entry and issues an attempt,
    /// starting a failover if the cached owner is already convicted.
    fn route_and_issue(&mut self, now: SimTime) -> Action {
        let owner = self.dir_cache[self.range() as usize];
        match self.replica_idx(owner) {
            Some(t) if self.live[t as usize] => {
                self.target = t;
                self.issue(now)
            }
            _ => self.failover(now),
        }
    }

    /// One transmission: bounded by the attempt budget, probed when it
    /// is a retry.
    fn issue(&mut self, now: SimTime) -> Action {
        if self.attempts >= self.attempt_budget {
            return self.resolve(Outcome::FailedUnreachable, 0, now);
        }
        self.attempts += 1;
        if self.attempts > 1 {
            self.state = CState::Probe;
            return Action::Read(self.mailboxes[self.target as usize].va(8 * u64::from(self.ci)));
        }
        self.send(now)
    }

    fn send(&mut self, _now: SimTime) -> Action {
        let spec = self.spec();
        self.state = CState::SendReq;
        Action::Write(
            self.mailboxes[self.target as usize].va(8 * u64::from(self.ci)),
            enc_req(ReqWord {
                req: spec.req,
                attempt: self.attempt_field(),
                op: spec.op,
                key: spec.key,
            }),
        )
    }

    /// Promotes the smallest-id live replica and publishes the change
    /// in the directory before resending.
    fn failover(&mut self, now: SimTime) -> Action {
        let live = &self.live;
        let promoted = self
            .map
            .promote(|n| matches!(self.replica_idx(n.raw()), Some(i) if live[i as usize]));
        let Some(new_owner) = promoted else {
            return self.resolve(Outcome::FailedUnreachable, 0, now);
        };
        self.failovers += 1;
        self.state = CState::FoEpoch { new_owner };
        let g = self.range();
        Action::FetchAdd(self.dir.va(8 * u64::from(self.map.ranges() + g)), 1)
    }

    fn resolve(&mut self, outcome: Outcome, get_stamp: u32, now: SimTime) -> Action {
        let spec = self.spec();
        self.log.borrow_mut().requests.push(RequestRecord {
            client: self.ci,
            req: spec.req,
            op: spec.op,
            key: spec.key,
            arrival: spec.arrival,
            resolved: now,
            attempts: self.attempts,
            failovers: self.failovers,
            outcome,
            get_stamp,
        });
        self.idx += 1;
        self.start_next(now)
    }

    fn poll_nap(&mut self) -> Action {
        self.state = CState::PollNap;
        Action::Compute(self.poll_every)
    }

    fn on_timeout(&mut self, now: SimTime) -> Action {
        self.log.borrow_mut().timeouts += 1;
        self.backoff_rto();
        self.target_fails += 1;
        if self.target_fails >= self.retries_per_target {
            self.live[self.target as usize] = false;
            self.target_fails = 0;
            return self.failover(now);
        }
        self.issue(now)
    }
}

impl Process for KvClient {
    fn resume(&mut self, r: Resume) -> Action {
        self.resume_at(r, SimTime::ZERO)
    }

    fn resume_at(&mut self, r: Resume, now: SimTime) -> Action {
        match std::mem::replace(&mut self.state, CState::Finished) {
            CState::Finished => {
                // First activation (Resume::Start).
                self.start_next(now)
            }
            CState::WaitArrival => self.route_and_issue(now),
            CState::Probe => match r {
                Resume::Failed(err) => {
                    // Fail-fast re-route: the HIB already convicted the
                    // peer, no need to wait out another timeout.
                    self.log.borrow_mut().fail_fast_reroutes += 1;
                    let telegraphos::OpError::PeerUnreachable { peer } = err;
                    if let Some(i) = self.replica_idx(peer.raw()) {
                        self.live[i as usize] = false;
                    }
                    self.live[self.target as usize] = false;
                    self.target_fails = 0;
                    self.failover(now)
                }
                _ => self.send(now),
            },
            CState::SendReq => {
                self.send_time = now;
                self.deadline = now + SimTime::from_ps(self.rto_cur_ps);
                self.poll_nap()
            }
            CState::PollNap => {
                self.state = CState::PollRead;
                Action::Read(self.ack.va(8 * u64::from(self.target)))
            }
            CState::PollRead => {
                let word = match r {
                    Resume::Value(w) => w,
                    _ => 0,
                };
                let spec = self.spec();
                if let Some(a) = dec_ack(word) {
                    if a.req == spec.req {
                        match a.code {
                            AckCode::Ok => {
                                // Terminal whatever attempt it answers.
                                if self.attempts == 1 {
                                    self.rtt_sample(now - self.send_time);
                                }
                                return self.resolve(Outcome::Committed, a.stamp, now);
                            }
                            AckCode::Busy if a.attempt == self.attempt_field() => {
                                self.log.borrow_mut().busy_acks += 1;
                                if self.busy_left == 0 {
                                    return self.resolve(Outcome::RejectedBusy, 0, now);
                                }
                                self.busy_left -= 1;
                                // The replica answered: it is alive, just
                                // loaded. Back off and try again.
                                self.target_fails = 0;
                                let wait = SimTime::from_ps(self.rto_cur_ps);
                                self.backoff_rto();
                                self.state = CState::Backoff;
                                return Action::Compute(wait);
                            }
                            AckCode::NotOwner if a.attempt == self.attempt_field() => {
                                self.log.borrow_mut().dir_refreshes += 1;
                                self.target_fails = 0;
                                self.state = CState::DirRefresh;
                                let g = self.range();
                                return Action::Read(self.dir.va(8 * u64::from(g)));
                            }
                            _ => {
                                self.log.borrow_mut().stale_acks += 1;
                            }
                        }
                    } else {
                        self.log.borrow_mut().stale_acks += 1;
                    }
                }
                if now >= self.deadline {
                    return self.on_timeout(now);
                }
                self.poll_nap()
            }
            CState::Backoff => self.issue(now),
            CState::DirRefresh => match r {
                Resume::Value(owner_raw) => {
                    let g = self.range() as usize;
                    let owner = owner_raw as u16;
                    let stale = self.dir_cache[g] == owner;
                    self.dir_cache[g] = owner;
                    match self.replica_idx(owner) {
                        Some(t) if self.live[t as usize] && !stale => {
                            self.target = t;
                            self.issue(now)
                        }
                        Some(_) if stale => {
                            // The directory still names the replica that
                            // just refused us — a transfer is in flight.
                            // Back off and re-route from the top.
                            let wait = SimTime::from_ps(self.rto_cur_ps);
                            self.backoff_rto();
                            self.state = CState::Backoff;
                            Action::Compute(wait)
                        }
                        _ => self.failover(now),
                    }
                }
                _ => {
                    self.log.borrow_mut().dir_failures += 1;
                    self.resolve(Outcome::FailedUnreachable, 0, now)
                }
            },
            CState::FoEpoch { new_owner } => match r {
                Resume::Value(_) => {
                    self.state = CState::FoSwap { new_owner };
                    let g = self.range();
                    Action::FetchStore(self.dir.va(8 * u64::from(g)), u64::from(new_owner.raw()))
                }
                _ => {
                    self.log.borrow_mut().dir_failures += 1;
                    self.resolve(Outcome::FailedUnreachable, 0, now)
                }
            },
            CState::FoSwap { new_owner } => match r {
                Resume::Value(_) => {
                    let g = self.range() as usize;
                    self.dir_cache[g] = new_owner.raw();
                    let t = self
                        .replica_idx(new_owner.raw())
                        .expect("promoted a non-replica");
                    self.target = t;
                    self.issue(now)
                }
                _ => {
                    self.log.borrow_mut().dir_failures += 1;
                    self.resolve(Outcome::FailedUnreachable, 0, now)
                }
            },
        }
    }
}
