//! Service configuration and node-role layout.

use tg_sim::SimTime;
use tg_wire::NodeId;

/// Static configuration of a deployed KV service.
///
/// Node roles are positional: node 0 is the **directory** (it holds the
/// ownership page and is never a replica — the campaign never crashes
/// it), nodes `1..=replicas` are the **replica set**, and the next
/// `clients` nodes are the load generators.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Replica-set size (nodes `1..=replicas`).
    pub replicas: u16,
    /// Number of client nodes (`replicas+1 ..`).
    pub clients: u16,
    /// Keys each client owns for writes (gets range over all keys).
    pub keys_per_client: u32,
    /// Requests each client issues (open-loop schedule length).
    pub requests_per_client: u32,
    /// Key ranges for ownership arbitration (homed round-robin).
    pub ranges: u32,
    /// Percentage of requests that are puts (rest are gets).
    pub write_ratio_pct: u32,
    /// Server admission bound: pending requests beyond this are shed
    /// with an explicit `Busy` ack instead of queueing.
    pub queue_cap: usize,
    /// `Busy` acks a client absorbs (with backoff) before resolving the
    /// request as [`Outcome::RejectedBusy`](crate::Outcome::RejectedBusy).
    pub busy_budget: u32,
    /// Timeouts against one target before the client suspects it and
    /// fails over.
    pub retries_per_target: u32,
    /// Total attempts across all targets before a request resolves as
    /// [`Outcome::FailedUnreachable`](crate::Outcome::FailedUnreachable).
    pub attempt_budget: u32,
    /// Initial request timeout before any RTT sample exists.
    pub rto_init: SimTime,
    /// Adaptive-timeout clamp floor.
    pub rto_min: SimTime,
    /// Adaptive-timeout clamp ceiling (also the per-retry backoff cap).
    pub rto_max: SimTime,
    /// Client ack-poll and server mailbox-sweep interval.
    pub poll_every: SimTime,
    /// Base inter-arrival gap of the open-loop schedule.
    pub arrival_gap: SimTime,
    /// Heavy-tail cap: gaps are `arrival_gap << k`, `P(k) = 2^-(k+1)`,
    /// `k` capped here — a capped power-of-two Pareto approximation that
    /// stays integer-deterministic.
    pub tail_shift_max: u32,
    /// Workload seed (each client forks its own stream from it).
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            replicas: 3,
            clients: 4,
            keys_per_client: 8,
            requests_per_client: 24,
            ranges: 6,
            write_ratio_pct: 70,
            queue_cap: 2,
            busy_budget: 8,
            retries_per_target: 3,
            attempt_budget: 30,
            rto_init: SimTime::from_us(60),
            rto_min: SimTime::from_us(20),
            rto_max: SimTime::from_ms(2),
            poll_every: SimTime::from_us(2),
            arrival_gap: SimTime::from_us(30),
            tail_shift_max: 6,
            seed: 0x5EED_4B5A,
        }
    }
}

impl KvConfig {
    /// Cluster size this deployment needs: directory + replicas + clients.
    pub fn nodes_required(&self) -> u16 {
        1 + self.replicas + self.clients
    }

    /// Total keys in the service (clients × keys each).
    pub fn total_keys(&self) -> u32 {
        u32::from(self.clients) * self.keys_per_client
    }

    /// The replica node ids, ascending.
    pub fn replica_nodes(&self) -> Vec<NodeId> {
        (1..=self.replicas).map(NodeId::new).collect()
    }

    /// The client node ids, ascending.
    pub fn client_nodes(&self) -> Vec<NodeId> {
        (self.replicas + 1..self.nodes_required())
            .map(NodeId::new)
            .collect()
    }

    /// Checks structural bounds: non-empty roles, the single-page layouts
    /// fit (mailbox slot per client, store word per key, 2 directory
    /// words per range), and the encodings' field widths hold.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("at least one replica required".into());
        }
        if self.clients == 0 {
            return Err("at least one client required".into());
        }
        if self.ranges == 0 {
            return Err("at least one key range required".into());
        }
        if self.keys_per_client == 0 || self.requests_per_client == 0 {
            return Err("keys_per_client and requests_per_client must be positive".into());
        }
        let words = u64::from(tg_wire::PAGE_BYTES as u32) / 8;
        if u64::from(self.total_keys()) > words {
            return Err(format!("{} keys exceed one store page", self.total_keys()));
        }
        if u64::from(self.clients) > words {
            return Err("more clients than mailbox slots".into());
        }
        if 2 * u64::from(self.ranges) > words {
            return Err("too many ranges for the directory page".into());
        }
        if u64::from(self.requests_per_client) >= (1 << crate::layout::REQ_BITS) {
            return Err("requests_per_client exceeds the request-id field".into());
        }
        if u64::from(self.total_keys()) >= (1 << crate::layout::KEY_BITS) {
            return Err("total keys exceed the key field".into());
        }
        if u64::from(self.attempt_budget) >= (1 << crate::layout::ATTEMPT_BITS) {
            return Err("attempt_budget exceeds the attempt field".into());
        }
        if self.write_ratio_pct > 100 {
            return Err("write_ratio_pct over 100".into());
        }
        if self.rto_min.is_zero() || self.rto_max < self.rto_min || self.poll_every.is_zero() {
            return Err("inverted or zero timeout configuration".into());
        }
        if self.arrival_gap.is_zero() {
            return Err("zero arrival gap".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_sized() {
        let c = KvConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.nodes_required(), 8);
        assert_eq!(c.total_keys(), 32);
        assert_eq!(c.replica_nodes().len(), 3);
        assert_eq!(c.client_nodes().first().map(|n| n.raw()), Some(4));
    }

    #[test]
    fn validation_rejects_oversized_layouts() {
        let too_many_keys = KvConfig {
            clients: 4,
            keys_per_client: 300,
            ..KvConfig::default()
        };
        assert!(too_many_keys.validate().is_err());
        let inverted = KvConfig {
            rto_min: SimTime::from_ms(5),
            rto_max: SimTime::from_us(10),
            ..KvConfig::default()
        };
        assert!(inverted.validate().is_err());
    }
}
