//! End-to-end service tests: the contract gates on a healthy cluster,
//! under a replica crash, and under crash+restart — in miniature (the
//! full sweep lives in the `simkv` campaign binary).

use telegraphos::{ClusterBuilder, DetectParams, FaultPlan, RelParams, Topology};
use tg_kv::{audit, deploy, drive, fingerprint, KvConfig};
use tg_sim::{RunLimit, SimTime};
use tg_wire::NodeId;

fn small_cfg() -> KvConfig {
    KvConfig {
        requests_per_client: 12,
        ..KvConfig::default()
    }
}

fn run_service(
    cfg: &KvConfig,
    plan: Option<FaultPlan>,
    crashed: &[NodeId],
) -> (tg_kv::AuditReport, u64) {
    let mut b = ClusterBuilder::new(cfg.nodes_required())
        .topology(Topology::ring(cfg.nodes_required()))
        .reliable_links(RelParams::default());
    if let Some(plan) = plan {
        b = b.with_faults(plan);
    }
    let mut cluster = b.build();
    cluster.enable_heartbeats(DetectParams::default());
    let handles = deploy(&mut cluster, cfg);
    let outcome = drive(
        &mut cluster,
        &handles,
        SimTime::from_us(50),
        SimTime::from_ms(200),
    );
    assert_ne!(outcome, RunLimit::Deadline, "service run never finished");
    let report = audit(&cluster, &handles, crashed);
    let fp = fingerprint(&cluster, &handles);
    (report, fp)
}

/// Fault-free: everything commits first try, nothing sheds terminally,
/// nothing fails over, and every gate holds.
#[test]
fn healthy_cluster_commits_everything_and_passes_every_gate() {
    let cfg = small_cfg();
    let (report, _) = run_service(&cfg, None, &[]);
    assert!(
        report.violations.is_empty(),
        "contract violated on a healthy cluster: {:?}",
        report.violations
    );
    let total = u64::from(cfg.clients) * u64::from(cfg.requests_per_client);
    assert_eq!(report.committed_puts + report.committed_gets, total);
    assert_eq!(report.failed_unreachable, 0);
    assert_eq!(report.failovers, 0, "failover on a healthy cluster");
    assert!(report.fresh_applies > 0, "no put ever applied");
}

/// A replica crash mid-run: requests re-route, ownership fails over, and
/// the contract still holds — in particular zero lost acknowledged
/// writes and zero duplicate applies.
#[test]
fn replica_crash_fails_over_without_losing_acked_writes() {
    let cfg = small_cfg();
    let victim = NodeId::new(1);
    let plan = FaultPlan::new(0x4B56_0001).node_crash(victim, SimTime::from_us(300));
    let (report, _) = run_service(&cfg, Some(plan), &[victim]);
    assert!(
        report.violations.is_empty(),
        "contract violated under a replica crash: {:?}",
        report.violations
    );
    assert!(
        report.failovers > 0,
        "the dead replica's ranges never moved"
    );
    assert!(
        report.committed_puts > 0,
        "nothing committed after the crash"
    );
}

/// Same seed, same faults ⇒ byte-identical observable history.
#[test]
fn same_seed_replays_to_an_identical_fingerprint() {
    let cfg = small_cfg();
    let victim = NodeId::new(2);
    let mk_plan = || FaultPlan::new(0xD15EA5E).node_crash(victim, SimTime::from_us(250));
    let (r1, fp1) = run_service(&cfg, Some(mk_plan()), &[victim]);
    let (r2, fp2) = run_service(&cfg, Some(mk_plan()), &[victim]);
    assert_eq!(fp1, fp2, "replay diverged");
    assert_eq!(r1.fingerprint, r2.fingerprint);
    assert_eq!(r1.committed_puts, r2.committed_puts);
    assert!(r1.violations.is_empty(), "{:?}", r1.violations);
}

/// Admission control under a deliberately strangled server queue: some
/// requests shed with explicit `Busy`, each shed is visible at both
/// ends, and shed requests are never applied.
#[test]
fn load_shedding_is_explicit_and_never_applies_shed_requests() {
    let cfg = KvConfig {
        queue_cap: 1,
        busy_budget: 0,
        arrival_gap: SimTime::from_us(2),
        tail_shift_max: 1,
        requests_per_client: 16,
        ..KvConfig::default()
    };
    let (report, _) = run_service(&cfg, None, &[]);
    assert!(
        report.violations.is_empty(),
        "shedding broke the contract: {:?}",
        report.violations
    );
    // With a queue of one, zero busy budget, and a hot arrival rate,
    // the shed path must actually exercise.
    assert!(report.rejected_busy > 0, "admission control never shed");
}
