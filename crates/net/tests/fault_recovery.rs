//! Fault-masking property tests: a reliable fabric under any seeded,
//! recoverable fault plan (drop/corrupt probabilities below one, finite
//! outages, lost credits) must deliver exactly the fault-free outcome —
//! every packet, in per-source order — and identical seeds must replay
//! bit-for-bit identical delivery streams.
//!
//! Hand-rolled seeded sweeps over [`tg_sim::SimRng`] stand in for a
//! property-testing framework: each case is fully determined by the sweep
//! seed, so failures reproduce exactly.

use std::collections::HashMap;

use tg_net::testing::{kick, Receipt, SourceSink};
use tg_net::{
    build_network_with, FaultInjector, FaultPlan, LinkId, NetConfig, RelParams, RetxMode, Topology,
};
use tg_sim::{CompId, Engine, RunLimit, SimRng, SimTime};
use tg_wire::trace::Site;
use tg_wire::{GOffset, NodeId, TimingConfig, WireMsg};

fn build_with(
    topo: &Topology,
    timing: &TimingConfig,
    config: &NetConfig,
) -> (Engine<tg_net::NetEvent>, Vec<CompId>, Vec<CompId>) {
    let mut engine = Engine::new();
    let n = topo.endpoint_count();
    let ids: Vec<CompId> = (0..n)
        .map(|i| engine.add(SourceSink::new(NodeId::new(i as u16), timing.clone())))
        .collect();
    let handles = build_network_with(&mut engine, topo, timing, &ids, config).expect("connected");
    for (id, w) in ids.iter().zip(handles.endpoints) {
        let ss = engine.get_mut::<SourceSink>(*id).unwrap();
        ss.wire(w.tx, w.rx_upstream);
        if let Some(inj) = config.injector.as_ref() {
            ss.set_injector(inj.clone());
        }
    }
    (engine, ids, handles.switches)
}

fn write(addr: u64, val: u64) -> WireMsg {
    WireMsg::WriteReq {
        addr: GOffset::new(addr),
        val,
        tag: 0,
    }
}

/// One deterministic workload: `n_sends` random (src, dst, val) triples
/// drawn from `seed`, enqueued on a given fabric. Returns the expected
/// per-(src, dst) value sequences.
fn load_workload(
    engine: &mut Engine<tg_net::NetEvent>,
    ids: &[CompId],
    seed: u64,
    n_sends: usize,
) -> HashMap<(u16, u16), Vec<u64>> {
    let mut rng = SimRng::new(seed);
    let n = ids.len() as u16;
    let mut expected: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
    for _ in 0..n_sends {
        let (src, dst) = (
            rng.range(u64::from(n)) as u16,
            rng.range(u64::from(n)) as u16,
        );
        if src == dst {
            continue;
        }
        let val = rng.range(1000);
        engine
            .get_mut::<SourceSink>(ids[src as usize])
            .unwrap()
            .enqueue(NodeId::new(dst), write(val * 8, val));
        expected.entry((src, dst)).or_default().push(val);
    }
    for &id in ids {
        kick(engine, id);
    }
    expected
}

/// Runs the workload to drain and reassembles observed per-pair sequences.
fn observe(engine: &Engine<tg_net::NetEvent>, ids: &[CompId]) -> HashMap<(u16, u16), Vec<u64>> {
    let mut observed: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
    for (dst, &id) in ids.iter().enumerate() {
        for r in &engine.get::<SourceSink>(id).unwrap().received {
            if let WireMsg::WriteReq { val, .. } = r.packet.msg {
                observed
                    .entry((r.packet.src.raw(), dst as u16))
                    .or_default()
                    .push(val);
            }
        }
    }
    observed
}

/// Property: any seeded fault plan with drop/corrupt probabilities below
/// one and only finite outages is fully masked by the link layer — the
/// run drains, and every endpoint observes exactly the fault-free
/// per-source in-order delivery.
#[test]
fn recoverable_faults_are_fully_masked() {
    let timing = TimingConfig::telegraphos_i();
    let mut sweep = SimRng::new(0xFA11_7E57);
    let mut total_retx = 0u64;
    for case in 0..10 {
        let nodes = sweep.range_between(2, 5) as u16;
        let n_sends = sweep.range_between(20, 120) as usize;
        let drop_p = sweep.range_between(1, 25) as f64 / 100.0;
        let corrupt_p = sweep.range_between(1, 15) as f64 / 100.0;
        let credit_p = sweep.range_between(0, 10) as f64 / 100.0;
        let ctrl_drop_p = sweep.range_between(0, 25) as f64 / 100.0;
        let ctrl_corrupt_p = sweep.range_between(0, 20) as f64 / 100.0;
        let case_seed = sweep.range(u64::MAX);
        // Alternate retransmit disciplines so the sweep proves the
        // masking guarantee for both.
        let mode = if case % 2 == 0 {
            RetxMode::GoBackN
        } else {
            RetxMode::Sack
        };
        let topo = Topology::star(nodes);

        // Fault-free reference.
        let reliable = NetConfig {
            reliability: Some(RelParams::with_mode(mode)),
            injector: None,
        };
        let (mut engine, ids, _) = build_with(&topo, &timing, &reliable);
        let expected = load_workload(&mut engine, &ids, case_seed, n_sends);
        assert_eq!(engine.run_events(4_000_000), RunLimit::Drained);
        let reference = observe(&engine, &ids);
        assert_eq!(reference, expected, "lossless baseline broke (case {case})");

        // The same workload under a seeded fault plan, including a finite
        // outage on the first node's uplink and a hostile control plane
        // (acks, nacks and resync frames dropped or corrupted).
        let victim = LinkId::new(Site::Node(NodeId::new(0)), Site::Switch(0));
        let plan = FaultPlan::new(case_seed ^ 0xD15EA5E)
            .drop(drop_p)
            .corrupt(corrupt_p)
            .credit_loss(credit_p)
            .ctrl_drop(ctrl_drop_p)
            .ctrl_corrupt(ctrl_corrupt_p)
            .outage(victim, SimTime::from_us(5), SimTime::from_us(30));
        let faulty = NetConfig {
            reliability: Some(RelParams::with_mode(mode)),
            injector: Some(FaultInjector::new(plan)),
        };
        let (mut engine, ids, _) = build_with(&topo, &timing, &faulty);
        let expected = load_workload(&mut engine, &ids, case_seed, n_sends);
        assert_eq!(
            engine.run_events(8_000_000),
            RunLimit::Drained,
            "faulted run wedged (case {case})"
        );
        assert_eq!(
            observe(&engine, &ids),
            expected,
            "faults leaked through the link layer (case {case})"
        );
        assert_eq!(
            observe(&engine, &ids),
            reference,
            "faulted outcome differs from fault-free outcome (case {case})"
        );
        for &id in &ids {
            let ss = engine.get::<SourceSink>(id).unwrap();
            assert!(
                !ss.link_dead(),
                "recoverable plan killed a link (case {case})"
            );
            assert!(ss.link_errors().is_empty(), "case {case}");
            total_retx += ss.retransmits();
        }
    }
    assert!(
        total_retx > 0,
        "the sweep never exercised a retransmission — faults too weak"
    );
}

/// Property: the same seed replays the exact same delivery stream —
/// every receipt, timestamp and payload, bit for bit.
#[test]
fn identical_seeds_replay_identical_delivery_streams() {
    let timing = TimingConfig::telegraphos_i();
    let run = || -> Vec<Vec<Receipt>> {
        let topo = Topology::star(4);
        let victim = LinkId::new(Site::Node(NodeId::new(1)), Site::Switch(0));
        let plan = FaultPlan::new(0x5EED_CAFE)
            .drop(0.15)
            .corrupt(0.10)
            .credit_loss(0.05)
            .outage(victim, SimTime::from_us(8), SimTime::from_us(40));
        let config = NetConfig {
            reliability: Some(RelParams::default()),
            injector: Some(FaultInjector::new(plan)),
        };
        let (mut engine, ids, _) = build_with(&topo, &timing, &config);
        load_workload(&mut engine, &ids, 0xB17F_0B17, 150);
        assert_eq!(engine.run_events(8_000_000), RunLimit::Drained);
        ids.iter()
            .map(|&id| engine.get::<SourceSink>(id).unwrap().received.clone())
            .collect()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "seeded replay diverged");
    assert!(
        first.iter().map(Vec::len).sum::<usize>() > 0,
        "nothing was delivered"
    );
}

/// A credit lost in flight starves the sender; the credit-resync
/// handshake must recover the allowance and let traffic finish.
#[test]
fn lost_credits_are_resynced() {
    let timing = TimingConfig::telegraphos_i();
    let topo = Topology::star(2).with_endpoint_fifo(2).with_switch_fifo(2);
    // Heavy credit loss, no frame faults: only the resync path recovers.
    let plan = FaultPlan::new(0xC4ED17).credit_loss(0.5);
    let config = NetConfig {
        reliability: Some(RelParams::default()),
        injector: Some(FaultInjector::new(plan)),
    };
    let (mut engine, ids, _) = build_with(&topo, &timing, &config);
    for i in 0..40u64 {
        engine
            .get_mut::<SourceSink>(ids[0])
            .unwrap()
            .enqueue(NodeId::new(1), write(i * 8, i));
    }
    kick(&mut engine, ids[0]);
    assert_eq!(engine.run_events(4_000_000), RunLimit::Drained);
    let rx = &engine.get::<SourceSink>(ids[1]).unwrap().received;
    assert_eq!(rx.len(), 40, "traffic wedged on lost credits");
    for (i, r) in rx.iter().enumerate() {
        assert_eq!(r.packet.inject_seq, i as u64, "reordered at {i}");
    }
    let injector = config.injector.as_ref().unwrap();
    if injector.stats().credits_lost > 0 {
        let resyncs: u64 = ids
            .iter()
            .map(|&id| engine.get::<SourceSink>(id).unwrap().resyncs())
            .sum();
        let sw_resyncs = tg_net_switch_resyncs(&engine);
        assert!(
            resyncs + sw_resyncs > 0,
            "credits were lost but no resync ran"
        );
    }
}

fn tg_net_switch_resyncs(_engine: &Engine<tg_net::NetEvent>) -> u64 {
    // Switch ids are not tracked in this harness; endpoint resyncs are
    // enough for the assertion above, so this stays zero.
    0
}

/// A permanent outage must not wedge the simulation: the retry budget
/// runs out, the link is declared dead with a structured error, and the
/// event queue still drains.
#[test]
fn permanent_outage_degrades_into_a_dead_link() {
    let timing = TimingConfig::telegraphos_i();
    let topo = Topology::star(2);
    let victim = LinkId::new(Site::Node(NodeId::new(0)), Site::Switch(0));
    let plan = FaultPlan::new(0xDEAD).permanent_outage(victim, SimTime::ZERO);
    let config = NetConfig {
        reliability: Some(RelParams::default()),
        injector: Some(FaultInjector::new(plan)),
    };
    let (mut engine, ids, _) = build_with(&topo, &timing, &config);
    for i in 0..5u64 {
        engine
            .get_mut::<SourceSink>(ids[0])
            .unwrap()
            .enqueue(NodeId::new(1), write(i * 8, i));
    }
    kick(&mut engine, ids[0]);
    assert_eq!(
        engine.run_events(4_000_000),
        RunLimit::Drained,
        "dead link left the engine spinning"
    );
    let src = engine.get::<SourceSink>(ids[0]).unwrap();
    assert!(src.link_dead(), "link should be declared dead");
    assert!(
        src.link_errors()
            .iter()
            .any(|e| matches!(e, tg_net::LinkError::RetryExhausted { .. })),
        "no structured dead-link error recorded"
    );
    assert!(
        engine
            .get::<SourceSink>(ids[1])
            .unwrap()
            .received
            .is_empty(),
        "nothing can cross a dead link"
    );
}

/// Property: selective retransmit and go-back-N are interchangeable at
/// the payload level. Under the same seeded fault plan — data faults,
/// lost credits, AND a hostile control plane — both disciplines must
/// drain and commit byte-identical per-pair payload sequences, while
/// SACK spends no more retransmitted frames than go-back-N.
#[test]
fn sack_and_gbn_commit_identical_payload_streams() {
    let timing = TimingConfig::telegraphos_i();
    let mut sweep = SimRng::new(0x5AC6_B47E);
    let (mut gbn_total_bytes, mut sack_total_bytes) = (0u64, 0u64);
    for case in 0..6 {
        let nodes = sweep.range_between(2, 5) as u16;
        let n_sends = sweep.range_between(40, 120) as usize;
        let drop_p = sweep.range_between(5, 25) as f64 / 100.0;
        let corrupt_p = sweep.range_between(1, 10) as f64 / 100.0;
        let ctrl_drop_p = sweep.range_between(5, 25) as f64 / 100.0;
        let ctrl_corrupt_p = sweep.range_between(1, 15) as f64 / 100.0;
        let case_seed = sweep.range(u64::MAX);
        let topo = Topology::star(nodes);

        let run = |mode: RetxMode| {
            let plan = FaultPlan::new(case_seed ^ 0x0DDB_A115)
                .drop(drop_p)
                .corrupt(corrupt_p)
                .credit_loss(0.05)
                .ctrl_drop(ctrl_drop_p)
                .ctrl_corrupt(ctrl_corrupt_p);
            let config = NetConfig {
                reliability: Some(RelParams::with_mode(mode)),
                injector: Some(FaultInjector::new(plan)),
            };
            let (mut engine, ids, _) = build_with(&topo, &timing, &config);
            let expected = load_workload(&mut engine, &ids, case_seed, n_sends);
            assert_eq!(
                engine.run_events(16_000_000),
                RunLimit::Drained,
                "{mode:?} wedged (case {case})"
            );
            let (mut retx, mut retx_bytes) = (0u64, 0u64);
            for &id in &ids {
                let ss = engine.get::<SourceSink>(id).unwrap();
                assert!(!ss.link_dead(), "{mode:?} killed a link (case {case})");
                retx += ss.retransmits();
                retx_bytes += ss.retx_bytes();
            }
            (observe(&engine, &ids), expected, retx, retx_bytes)
        };

        let (gbn, expected, _, gbn_bytes) = run(RetxMode::GoBackN);
        let (sack, _, _, sack_bytes) = run(RetxMode::Sack);
        assert_eq!(gbn, expected, "go-back-N leaked faults (case {case})");
        assert_eq!(
            sack, gbn,
            "SACK and go-back-N committed different payload streams (case {case})"
        );
        gbn_total_bytes += gbn_bytes;
        sack_total_bytes += sack_bytes;
    }
    // Aggregate wire efficiency: per-case fault realizations differ (the
    // two disciplines interleave events differently, so the injector dice
    // land differently), but across the sweep selective retransmit must
    // spend strictly fewer retransmitted bytes.
    assert!(
        sack_total_bytes < gbn_total_bytes,
        "selective retransmit did not beat go-back-N across the sweep \
         ({sack_total_bytes} vs {gbn_total_bytes} retransmitted bytes)"
    );
}

/// Regression for the credit-stall undercount in `Switch::pump`: while a
/// dropped frame's retransmission waits for a busy wire, fresh traffic
/// queued behind it is a deferral — `stats.blocked` must count it and the
/// TxPort stall clock must run, because fault recovery is exactly when the
/// credit-stall series matters. The old loop `continue`d past this case
/// and recorded nothing.
#[test]
fn drop_recovery_records_switch_stall_time() {
    let timing = TimingConfig::telegraphos_i();
    let topo = Topology::star(2);
    let load = |engine: &mut Engine<tg_net::NetEvent>, ids: &[CompId]| {
        for i in 0..60u64 {
            engine
                .get_mut::<SourceSink>(ids[0])
                .unwrap()
                .enqueue(NodeId::new(1), write(i * 8, i + 1));
        }
        for &id in ids {
            kick(engine, id);
        }
    };

    // Control: the same stream over a fault-free reliable fabric.
    let clean = NetConfig {
        reliability: Some(RelParams::default()),
        injector: None,
    };
    let (mut engine, ids, switches) = build_with(&topo, &timing, &clean);
    load(&mut engine, &ids);
    assert_eq!(engine.run_events(2_000_000), RunLimit::Drained);
    let sw = engine.get::<tg_net::Switch>(switches[0]).unwrap();
    let (clean_blocked, clean_stall) = (sw.stats().blocked, sw.credit_stall());

    // Faulted: an outage on the switch → node 1 downlink drops every frame
    // inside the window, forcing retransmissions while the backlog keeps
    // the output requested.
    let victim = LinkId::new(Site::Switch(0), Site::Node(NodeId::new(1)));
    let plan = FaultPlan::new(0xB10C_0C45).drop(0.10).outage(
        victim,
        SimTime::from_us(2),
        SimTime::from_us(40),
    );
    let faulty = NetConfig {
        reliability: Some(RelParams::default()),
        injector: Some(FaultInjector::new(plan)),
    };
    let (mut engine, ids, switches) = build_with(&topo, &timing, &faulty);
    load(&mut engine, &ids);
    assert_eq!(
        engine.run_events(4_000_000),
        RunLimit::Drained,
        "recovery wedged"
    );
    let got: Vec<u64> = engine
        .get::<SourceSink>(ids[1])
        .unwrap()
        .received
        .iter()
        .filter_map(|r| match r.packet.msg {
            WireMsg::WriteReq { val, .. } => Some(val),
            _ => None,
        })
        .collect();
    assert_eq!(got, (1..=60).collect::<Vec<u64>>(), "drops leaked through");

    let sw = engine.get::<tg_net::Switch>(switches[0]).unwrap();
    assert!(
        sw.stats().blocked > clean_blocked,
        "recovery deferrals were not counted as blocks ({} vs clean {})",
        sw.stats().blocked,
        clean_blocked
    );
    assert!(
        sw.credit_stall() > clean_stall,
        "the stall clock never ran during recovery ({:?} vs clean {:?})",
        sw.credit_stall(),
        clean_stall
    );
}

/// Satellite regression: a SACK reorder window squeezed down to two
/// frames overflows constantly under a lossy plan, and every overflow
/// must come back as a NACK — never a silent drop. The run still drains
/// to the exact fault-free delivery, and the switch credit books close.
#[test]
fn tiny_sack_window_overflow_nacks_and_conserves() {
    let timing = TimingConfig::telegraphos_i();
    let topo = Topology::star(3);
    let params = RelParams::with_mode(RetxMode::Sack).with_sack_window(2);
    let plan = FaultPlan::new(0x0F10_5ACC).drop(0.30).corrupt(0.10);
    let config = NetConfig {
        reliability: Some(params),
        injector: Some(FaultInjector::new(plan)),
    };
    let (mut engine, ids, switches) = build_with(&topo, &timing, &config);
    let expected = load_workload(&mut engine, &ids, 0x5ACC_F00D, 200);
    assert_eq!(
        engine.run_events(8_000_000),
        RunLimit::Drained,
        "overflowing the reorder window wedged the fabric"
    );
    assert_eq!(
        observe(&engine, &ids),
        expected,
        "a reorder-window overflow lost a frame"
    );
    // The two-frame window must actually have overflowed somewhere —
    // endpoint receivers or switch input ports — or the case is vacuous.
    let mut gap_nacks = 0u64;
    for &id in &ids {
        gap_nacks += engine.get::<SourceSink>(id).unwrap().rx_gap_discards();
    }
    for &id in &switches {
        gap_nacks += engine.get::<tg_net::Switch>(id).unwrap().rx_gap_discards();
    }
    assert!(
        gap_nacks > 0,
        "a 2-frame window under 30% loss never overflowed — dead test"
    );
    // Conservation audit: at quiescence every switch credit is either in
    // hand or riding an unacked frame, and no frame is parked forever.
    for &id in &switches {
        let sw = engine.get::<tg_net::Switch>(id).unwrap();
        for ledger in sw.credit_ledgers() {
            assert!(ledger.balanced(), "credit leak after overflow: {ledger}");
        }
        assert_eq!(sw.reorder_depth_total(), 0, "frames stranded in a window");
    }
}
