//! End-to-end network tests: delivery, ordering, back-pressure, and
//! deadlock freedom under randomized topologies and traffic.

use tg_net::{build_network, testing::kick, testing::SourceSink, Switch, Topology};
use tg_sim::{CompId, Engine, RunLimit, SimTime};
use tg_wire::{GOffset, NodeId, TimingConfig, WireMsg};

fn build(
    topo: &Topology,
    timing: &TimingConfig,
) -> (Engine<tg_net::NetEvent>, Vec<CompId>, Vec<CompId>) {
    let mut engine = Engine::new();
    let n = topo.endpoint_count();
    let ids: Vec<CompId> = (0..n)
        .map(|i| engine.add(SourceSink::new(NodeId::new(i as u16), timing.clone())))
        .collect();
    let handles = build_network(&mut engine, topo, timing, &ids).expect("connected");
    for (id, w) in ids.iter().zip(handles.endpoints) {
        engine
            .get_mut::<SourceSink>(*id)
            .unwrap()
            .wire(w.tx, w.rx_upstream);
    }
    (engine, ids, handles.switches)
}

fn write(addr: u64, val: u64) -> WireMsg {
    WireMsg::WriteReq {
        addr: GOffset::new(addr),
        val,
        tag: 0,
    }
}

#[test]
fn star_delivers_across_the_switch() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, _sw) = build(&Topology::star(2), &timing);
    engine
        .get_mut::<SourceSink>(ids[0])
        .unwrap()
        .enqueue(NodeId::new(1), write(0, 42));
    kick(&mut engine, ids[0]);
    assert_eq!(engine.run(), RunLimit::Drained);
    let rx = &engine.get::<SourceSink>(ids[1]).unwrap().received;
    assert_eq!(rx.len(), 1);
    assert!(rx[0].at > SimTime::from_ns(500), "must cross the fabric");
}

#[test]
fn chain_delivers_end_to_end() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, _sw) = build(&Topology::chain(5), &timing);
    engine
        .get_mut::<SourceSink>(ids[0])
        .unwrap()
        .enqueue(NodeId::new(4), write(8, 7));
    kick(&mut engine, ids[0]);
    engine.run();
    assert_eq!(engine.get::<SourceSink>(ids[4]).unwrap().received.len(), 1);
}

#[test]
fn latency_grows_with_hop_count() {
    let timing = TimingConfig::telegraphos_i();
    let arrival_at = |hops_topo: Topology, dst: u16| {
        let (mut engine, ids, _sw) = build(&hops_topo, &timing);
        engine
            .get_mut::<SourceSink>(ids[0])
            .unwrap()
            .enqueue(NodeId::new(dst), write(0, 1));
        kick(&mut engine, ids[0]);
        engine.run();
        engine
            .get::<SourceSink>(ids[dst as usize])
            .unwrap()
            .received[0]
            .at
    };
    let one_switch = arrival_at(Topology::star(2), 1);
    let four_switches = arrival_at(Topology::chain(4), 3);
    assert!(four_switches > one_switch);
    // Each extra switch adds at least its cut-through latency.
    assert!(four_switches - one_switch >= timing.switch_latency * 3);
}

#[test]
fn in_order_delivery_per_source() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, _sw) = build(&Topology::chain(3), &timing);
    for i in 0..200u64 {
        engine
            .get_mut::<SourceSink>(ids[0])
            .unwrap()
            .enqueue(NodeId::new(2), write(i * 8, i));
    }
    kick(&mut engine, ids[0]);
    engine.run();
    let rx = &engine.get::<SourceSink>(ids[2]).unwrap().received;
    assert_eq!(rx.len(), 200);
    for (i, r) in rx.iter().enumerate() {
        assert_eq!(r.packet.inject_seq, i as u64, "reordered at {i}");
    }
}

#[test]
fn backpressure_throttles_a_fast_source_into_a_slow_sink() {
    let timing = TimingConfig::telegraphos_i();
    let topo = Topology::star(2).with_endpoint_fifo(2).with_switch_fifo(2);
    let (mut engine, ids, _sw) = build(&topo, &timing);
    // The sink consumes very slowly.
    engine
        .get_mut::<SourceSink>(ids[1])
        .unwrap()
        .set_consume_delay(SimTime::from_us(50));
    let n = 20u64;
    for i in 0..n {
        engine
            .get_mut::<SourceSink>(ids[0])
            .unwrap()
            .enqueue(NodeId::new(1), write(i * 8, i));
    }
    kick(&mut engine, ids[0]);
    assert_eq!(engine.run(), RunLimit::Drained);
    let rx = &engine.get::<SourceSink>(ids[1]).unwrap().received;
    assert_eq!(rx.len(), n as usize, "all packets eventually delivered");
    // Delivery is paced by the sink: with 2 endpoint credits, at most two
    // packets land per 50 us consume cycle after the initial burst.
    let total = rx.last().unwrap().at;
    assert!(
        total >= SimTime::from_us(50) * ((n - 2) / 2),
        "back-pressure failed: finished in {total}"
    );
    // And nothing overflowed (RxFifo would have panicked), so ordering held:
    for (i, r) in rx.iter().enumerate() {
        assert_eq!(r.packet.inject_seq, i as u64);
    }
}

#[test]
fn bidirectional_traffic_both_arrive() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, _sw) = build(&Topology::star(2), &timing);
    engine
        .get_mut::<SourceSink>(ids[0])
        .unwrap()
        .enqueue(NodeId::new(1), write(0, 1));
    engine
        .get_mut::<SourceSink>(ids[1])
        .unwrap()
        .enqueue(NodeId::new(0), write(8, 2));
    kick(&mut engine, ids[0]);
    kick(&mut engine, ids[1]);
    engine.run();
    assert_eq!(engine.get::<SourceSink>(ids[0]).unwrap().received.len(), 1);
    assert_eq!(engine.get::<SourceSink>(ids[1]).unwrap().received.len(), 1);
}

#[test]
fn switch_counts_traffic() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, switches) = build(&Topology::star(3), &timing);
    for dst in [1u16, 2u16] {
        for i in 0..5 {
            engine
                .get_mut::<SourceSink>(ids[0])
                .unwrap()
                .enqueue(NodeId::new(dst), write(i * 8, i));
        }
    }
    kick(&mut engine, ids[0]);
    engine.run();
    let stats = engine.get::<Switch>(switches[0]).unwrap().stats();
    assert_eq!(stats.packets, 10);
    assert!(stats.bytes >= 10 * 22);
}

/// Random traffic over random topologies: every packet is delivered,
/// per-(src,dst) order is preserved, and the simulation always drains
/// (deadlock freedom of tree routing under credit flow control). Cases are
/// drawn from a seeded [`tg_sim::SimRng`] so the sweep is deterministic.
#[test]
fn random_traffic_is_delivered_in_order() {
    let mut rng = tg_sim::SimRng::new(0x7A55);
    for case in 0..24 {
        let topo_kind = rng.range(4) as u8;
        let size = rng.range_between(3, 7) as u16;
        let fifo = rng.range_between(1, 4) as u32;
        let n_sends = rng.range_between(1, 120) as usize;
        let topo = match topo_kind {
            0 => Topology::star(size),
            1 => Topology::chain(size),
            2 => Topology::ring(size.max(3)),
            _ => Topology::mesh(2, (size / 2).max(1)),
        }
        .with_switch_fifo(fifo)
        .with_endpoint_fifo(fifo);
        let n = topo.endpoint_count() as u16;
        let timing = TimingConfig::telegraphos_i();
        let (mut engine, ids, _sw) = build(&topo, &timing);

        let mut expected: std::collections::HashMap<(u16, u16), Vec<u64>> =
            std::collections::HashMap::new();
        for _ in 0..n_sends {
            let (src, dst) = (
                rng.range(u64::from(n)) as u16,
                rng.range(u64::from(n)) as u16,
            );
            let val = rng.range(1000);
            if src == dst {
                continue;
            }
            engine
                .get_mut::<SourceSink>(ids[src as usize])
                .unwrap()
                .enqueue(NodeId::new(dst), write(val * 8, val));
            expected.entry((src, dst)).or_default().push(val);
        }
        for &id in &ids {
            kick(&mut engine, id);
        }
        let outcome = engine.run_events(2_000_000);
        assert_eq!(
            outcome,
            RunLimit::Drained,
            "network livelock/deadlock (case {case})"
        );

        // Reassemble observed per-pair value sequences.
        let mut observed: std::collections::HashMap<(u16, u16), Vec<u64>> =
            std::collections::HashMap::new();
        for (dst_idx, &id) in ids.iter().enumerate() {
            for r in &engine.get::<SourceSink>(id).unwrap().received {
                if let WireMsg::WriteReq { val, .. } = r.packet.msg {
                    observed
                        .entry((r.packet.src.raw(), dst_idx as u16))
                        .or_default()
                        .push(val);
                }
            }
        }
        assert_eq!(observed, expected, "case {case}");
    }
}

#[test]
fn switchless_direct_wiring_delivers_both_ways() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, switches) = build(&Topology::direct(), &timing);
    assert!(switches.is_empty(), "no switches in a direct wiring");
    engine
        .get_mut::<SourceSink>(ids[0])
        .unwrap()
        .enqueue(NodeId::new(1), write(0, 5));
    engine
        .get_mut::<SourceSink>(ids[1])
        .unwrap()
        .enqueue(NodeId::new(0), write(8, 6));
    kick(&mut engine, ids[0]);
    kick(&mut engine, ids[1]);
    assert_eq!(engine.run(), RunLimit::Drained);
    assert_eq!(engine.get::<SourceSink>(ids[0]).unwrap().received.len(), 1);
    assert_eq!(engine.get::<SourceSink>(ids[1]).unwrap().received.len(), 1);
}

/// Regression test for cross-output arbitration interference: node 0
/// streams to every other node (keeping its input port permanently busy on
/// *other* outputs) while all other nodes stream back to node 0 through one
/// contended output. With a single switch-wide round-robin pointer, every
/// forward of node 0's stream reset the pointer past the high-numbered
/// inputs, which then starved on the contended output; per-output pointers
/// must deliver everything.
#[test]
fn arbitration_survives_cross_output_interference() {
    let timing = TimingConfig::telegraphos_i();
    let n_nodes = 12u16;
    let (mut engine, ids, _sw) = build(&Topology::star(n_nodes), &timing);
    let per_flow = 40u64;
    // Node 0 fans out to everyone.
    for dst in 1..n_nodes {
        for i in 0..per_flow {
            engine
                .get_mut::<SourceSink>(ids[0])
                .unwrap()
                .enqueue(NodeId::new(dst), write(i * 8, i));
        }
    }
    // Everyone floods node 0.
    for src in 1..n_nodes {
        for i in 0..per_flow {
            engine
                .get_mut::<SourceSink>(ids[src as usize])
                .unwrap()
                .enqueue(NodeId::new(0), write(i * 8, i));
        }
    }
    for id in &ids {
        kick(&mut engine, *id);
    }
    assert_eq!(engine.run(), RunLimit::Drained);
    let flows = u64::from(n_nodes) - 1;
    let rx0 = &engine.get::<SourceSink>(ids[0]).unwrap().received;
    assert_eq!(rx0.len() as u64, flows * per_flow, "a flow starved");
    for src in 1..n_nodes {
        let from_src = rx0
            .iter()
            .filter(|r| r.packet.src == NodeId::new(src))
            .count() as u64;
        assert_eq!(from_src, per_flow, "source {src} starved");
    }
    for dst in 1..n_nodes {
        let rx = &engine
            .get::<SourceSink>(ids[dst as usize])
            .unwrap()
            .received;
        assert_eq!(rx.len() as u64, per_flow, "fan-out to {dst} starved");
    }
}

#[test]
fn arbitration_shares_a_contended_output_fairly() {
    // Two sources blast one sink through a single switch; round-robin
    // arbitration must interleave them rather than starve either side.
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, _sw) = build(&Topology::star(3), &timing);
    let n = 60u64;
    for src in [0u16, 1u16] {
        for i in 0..n {
            engine
                .get_mut::<SourceSink>(ids[src as usize])
                .unwrap()
                .enqueue(NodeId::new(2), write(i * 8, u64::from(src) * 1000 + i));
        }
    }
    kick(&mut engine, ids[0]);
    kick(&mut engine, ids[1]);
    assert_eq!(engine.run(), RunLimit::Drained);
    let rx = &engine.get::<SourceSink>(ids[2]).unwrap().received;
    assert_eq!(rx.len(), 2 * n as usize);
    // Fairness: in any window of 16 arrivals, both sources appear.
    for window in rx.chunks(16) {
        if window.len() < 16 {
            continue;
        }
        let from0 = window
            .iter()
            .filter(|r| r.packet.src == NodeId::new(0))
            .count();
        assert!(
            from0 > 0 && from0 < 16,
            "starvation in a window: {from0}/16 from source 0"
        );
    }
    // And per-source order still holds.
    for src in [0u16, 1u16] {
        let seqs: Vec<u64> = rx
            .iter()
            .filter(|r| r.packet.src == NodeId::new(src))
            .map(|r| r.packet.inject_seq)
            .collect();
        assert!(seqs.windows(2).all(|w| w[1] > w[0]), "src {src} reordered");
    }
}

/// Regression for round-robin advancement under batched same-instant
/// grants: several sources kicked at the same instant produce identical
/// arrival times, which the engine delivers as one batch — each delivery
/// pumps the switch, and `rr_next` must still advance exactly one step per
/// grant (one grant per pump pass per output, since the wire goes busy) so
/// no input is starved or double-served across a batch.
#[test]
fn arbitration_stays_fair_across_batched_same_instant_grants() {
    let timing = TimingConfig::telegraphos_i();
    let (mut engine, ids, _sw) = build(&Topology::star(4), &timing);
    let n = 48u64;
    let sources = [0u16, 1, 2];
    for &src in &sources {
        for i in 0..n {
            engine
                .get_mut::<SourceSink>(ids[src as usize])
                .unwrap()
                .enqueue(NodeId::new(3), write(i * 8, u64::from(src) * 1000 + i));
        }
    }
    // Kick every source in the same instant: their first arrivals (and the
    // switch pumps they trigger) share delivery instants throughout.
    for &src in &sources {
        kick(&mut engine, ids[src as usize]);
    }
    assert_eq!(engine.run(), RunLimit::Drained);
    let rx = &engine.get::<SourceSink>(ids[3]).unwrap().received;
    assert_eq!(rx.len(), sources.len() * n as usize, "lost packets");
    // Fairness: every source appears in any window of 24 arrivals.
    for window in rx.chunks(24) {
        if window.len() < 24 {
            continue;
        }
        for &src in &sources {
            let cnt = window
                .iter()
                .filter(|r| r.packet.src == NodeId::new(src))
                .count();
            assert!(
                cnt > 0,
                "source {src} starved in a window of 24 same-instant-batched grants"
            );
        }
    }
    // Per-source FIFO order must survive batching.
    for &src in &sources {
        let seqs: Vec<u64> = rx
            .iter()
            .filter(|r| r.packet.src == NodeId::new(src))
            .map(|r| r.packet.inject_seq)
            .collect();
        assert_eq!(seqs.len(), n as usize);
        assert!(seqs.windows(2).all(|w| w[1] > w[0]), "src {src} reordered");
    }
}
