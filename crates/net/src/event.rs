//! Network events and the embedding trait.

use tg_wire::{CtrlFrame, Packet};

/// Events exchanged between network components (switches and endpoints).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetEvent {
    /// A packet finished arriving at input port `port`.
    Arrive {
        /// Receiving input port.
        port: u32,
        /// The packet.
        packet: Packet,
    },
    /// One flow-control credit returned for output port `port`.
    Credit {
        /// The output port regaining a credit.
        port: u32,
    },
    /// Self-scheduled: output port `port` finished serializing and is free.
    PumpOut {
        /// The output port that became free.
        port: u32,
    },
    /// A link-layer control frame (ack, nack, credit-resync handshake)
    /// finished arriving on the link paired with port `port`. Since
    /// output port *i* and input port *i* of every element connect to
    /// the same neighbor, one index addresses both the retransmit buffer
    /// an ack drives and the receive state a resync probe reads. The
    /// frame is checksummed wire traffic: receivers must verify
    /// [`CtrlFrame::checksum_ok`] and discard (count, never act on)
    /// frames that fail.
    Ctrl {
        /// The port pair this control frame belongs to.
        port: u32,
        /// The sealed (possibly fault-corrupted) control frame.
        frame: CtrlFrame,
    },
    /// Self-scheduled retransmission/resync timer for output port `port`.
    /// `gen` guards against stale timers (timers cannot be cancelled).
    RetxTimer {
        /// The output port being timed.
        port: u32,
        /// Timer generation at scheduling time.
        gen: u64,
    },
}

/// Embeds [`NetEvent`] into a simulation-wide message type.
///
/// The cluster model defines one event enum for the whole simulation; by
/// implementing this trait for it, the switches from this crate can be
/// registered in the same engine. `NetEvent` implements the trait
/// identically, which is what the standalone network tests use.
pub trait NetMessage: Sized + 'static {
    /// Wraps a network event.
    fn from_net(ev: NetEvent) -> Self;
    /// Unwraps a network event, or gives the message back if it is not one.
    fn into_net(self) -> Result<NetEvent, Self>;
}

impl NetMessage for NetEvent {
    fn from_net(ev: NetEvent) -> Self {
        ev
    }
    fn into_net(self) -> Result<NetEvent, Self> {
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_embedding_round_trips() {
        let ev = NetEvent::Credit { port: 3 };
        let wrapped = NetEvent::from_net(ev.clone());
        assert_eq!(wrapped.into_net(), Ok(ev));
    }
}
