//! Network events and the embedding trait.

use tg_wire::Packet;

/// Events exchanged between network components (switches and endpoints).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetEvent {
    /// A packet finished arriving at input port `port`.
    Arrive {
        /// Receiving input port.
        port: u32,
        /// The packet.
        packet: Packet,
    },
    /// One flow-control credit returned for output port `port`.
    Credit {
        /// The output port regaining a credit.
        port: u32,
    },
    /// Self-scheduled: output port `port` finished serializing and is free.
    PumpOut {
        /// The output port that became free.
        port: u32,
    },
    /// Link-layer cumulative acknowledgement: the receiver on the far end
    /// of output port `port` has accepted every frame through `seq`.
    Ack {
        /// The output port whose retransmit buffer this acknowledges.
        port: u32,
        /// Highest accepted link sequence number (cumulative).
        seq: u64,
    },
    /// Link-layer negative acknowledgement: the receiver on the far end of
    /// output port `port` saw a gap or a corrupt frame and wants
    /// retransmission from `seq` (go-back-N).
    Nack {
        /// The output port that must retransmit.
        port: u32,
        /// The link sequence number the receiver expects next.
        seq: u64,
    },
    /// Self-scheduled retransmission/resync timer for output port `port`.
    /// `gen` guards against stale timers (timers cannot be cancelled).
    RetxTimer {
        /// The output port being timed.
        port: u32,
        /// Timer generation at scheduling time.
        gen: u64,
    },
    /// Credit-resync probe: the upstream sender of input port `port` lost
    /// track of its credits and asks how many frames were drained.
    CreditSyncReq {
        /// Receiving input port (like [`NetEvent::Arrive`]).
        port: u32,
        /// Handshake token echoed in the reply.
        token: u64,
    },
    /// Credit-resync reply for output port `port`.
    CreditSyncAck {
        /// The output port that probed.
        port: u32,
        /// Token from the matching request.
        token: u64,
        /// Total frames the receiver has drained from its FIFO on this
        /// link (monotone counter).
        drained: u64,
    },
}

/// Embeds [`NetEvent`] into a simulation-wide message type.
///
/// The cluster model defines one event enum for the whole simulation; by
/// implementing this trait for it, the switches from this crate can be
/// registered in the same engine. `NetEvent` implements the trait
/// identically, which is what the standalone network tests use.
pub trait NetMessage: Sized + 'static {
    /// Wraps a network event.
    fn from_net(ev: NetEvent) -> Self;
    /// Unwraps a network event, or gives the message back if it is not one.
    fn into_net(self) -> Result<NetEvent, Self>;
}

impl NetMessage for NetEvent {
    fn from_net(ev: NetEvent) -> Self {
        ev
    }
    fn into_net(self) -> Result<NetEvent, Self> {
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_embedding_round_trips() {
        let ev = NetEvent::Credit { port: 3 };
        let wrapped = NetEvent::from_net(ev.clone());
        assert_eq!(wrapped.into_net(), Ok(ev));
    }
}
