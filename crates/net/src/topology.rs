//! Cluster topology description.

use std::collections::HashMap;
use std::fmt;

/// A vertex of the network graph: a workstation endpoint or a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Vertex {
    /// Workstation `n` (indexes the cluster's node list).
    Node(u16),
    /// Switch `s`.
    Switch(u16),
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vertex::Node(n) => write!(f, "node{n}"),
            Vertex::Switch(s) => write!(f, "switch{s}"),
        }
    }
}

/// Errors from topology construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// A link references a vertex that does not exist.
    UnknownVertex(Vertex),
    /// The same unordered link was added twice.
    DuplicateLink(Vertex, Vertex),
    /// A vertex linked to itself.
    SelfLink(Vertex),
    /// An endpoint was given more than one link.
    EndpointDegree(u16),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownVertex(v) => write!(f, "link references unknown vertex {v}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a} <-> {b}"),
            TopologyError::SelfLink(v) => write!(f, "self link at {v}"),
            TopologyError::EndpointDegree(n) => {
                write!(f, "endpoint node{n} must have exactly one link")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected multigraph-free description of the cluster wiring:
/// endpoints (workstations), switches, and the bidirectional ribbon-cable
/// links between them.
///
/// Port numbering is deterministic: a vertex's ports are its links in the
/// order they were added, which keeps component wiring and routing tables
/// reproducible.
///
/// # Example
///
/// ```
/// use tg_net::Topology;
/// // Two workstations on one switch — the paper's §3.2 testbed.
/// let topo = Topology::star(2);
/// assert_eq!(topo.endpoint_count(), 2);
/// assert_eq!(topo.switch_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    n_nodes: u16,
    n_switches: u16,
    /// Per vertex: ordered list of (neighbor, port index on the neighbor).
    ports: HashMap<Vertex, Vec<(Vertex, u32)>>,
    links: Vec<(Vertex, Vertex)>,
    switch_fifo_capacity: u32,
    endpoint_fifo_capacity: u32,
}

impl Topology {
    /// Creates an empty topology with the given vertex counts; add links
    /// with [`Topology::link`].
    pub fn new(n_nodes: u16, n_switches: u16) -> Self {
        let mut ports = HashMap::new();
        for n in 0..n_nodes {
            ports.insert(Vertex::Node(n), Vec::new());
        }
        for s in 0..n_switches {
            ports.insert(Vertex::Switch(s), Vec::new());
        }
        Topology {
            n_nodes,
            n_switches,
            ports,
            links: Vec::new(),
            switch_fifo_capacity: 8,
            endpoint_fifo_capacity: 8,
        }
    }

    /// Adds a bidirectional link between two vertices.
    ///
    /// # Errors
    ///
    /// Rejects unknown vertices, self links, duplicate links, and endpoints
    /// acquiring a second link (workstations have one HIB cable).
    pub fn link(&mut self, a: Vertex, b: Vertex) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLink(a));
        }
        for &v in &[a, b] {
            if !self.ports.contains_key(&v) {
                return Err(TopologyError::UnknownVertex(v));
            }
        }
        if self
            .links
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        for &v in &[a, b] {
            if let Vertex::Node(n) = v {
                if !self.ports[&v].is_empty() {
                    return Err(TopologyError::EndpointDegree(n));
                }
            }
        }
        let pa = self.ports[&a].len() as u32;
        let pb = self.ports[&b].len() as u32;
        self.ports.get_mut(&a).expect("checked").push((b, pb));
        self.ports.get_mut(&b).expect("checked").push((a, pa));
        self.links.push((a, b));
        Ok(())
    }

    /// All `n` workstations on a single switch (the Telegraphos I testbed
    /// shape for `n = 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: u16) -> Self {
        assert!(n > 0, "at least one node");
        let mut t = Topology::new(n, 1);
        for i in 0..n {
            t.link(Vertex::Node(i), Vertex::Switch(0)).expect("fresh");
        }
        t
    }

    /// Two workstations cabled back to back — no switch at all (the
    /// cheapest possible Telegraphos installation).
    pub fn direct() -> Self {
        let mut t = Topology::new(2, 0);
        t.link(Vertex::Node(0), Vertex::Node(1)).expect("fresh");
        t
    }

    /// A chain of switches, one workstation per switch.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn chain(n: u16) -> Self {
        assert!(n > 0, "at least one node");
        let mut t = Topology::new(n, n);
        for i in 0..n {
            t.link(Vertex::Node(i), Vertex::Switch(i)).expect("fresh");
            if i + 1 < n {
                t.link(Vertex::Switch(i), Vertex::Switch(i + 1))
                    .expect("fresh");
            }
        }
        t
    }

    /// A ring of switches, one workstation per switch. The ring-closing
    /// link exists physically but deterministic tree routing never uses it
    /// (deadlock freedom by construction).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u16) -> Self {
        assert!(n >= 3, "a ring needs at least three switches");
        let mut t = Topology::chain(n);
        t.link(Vertex::Switch(n - 1), Vertex::Switch(0))
            .expect("fresh ring closure");
        t
    }

    /// A `rows x cols` switch mesh, one workstation per switch.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count overflows `u16`.
    pub fn mesh(rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        let n = rows.checked_mul(cols).expect("mesh size fits in u16");
        let mut t = Topology::new(n, n);
        let at = |r: u16, c: u16| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                let s = at(r, c);
                t.link(Vertex::Node(s), Vertex::Switch(s)).expect("fresh");
                if c + 1 < cols {
                    t.link(Vertex::Switch(s), Vertex::Switch(at(r, c + 1)))
                        .expect("fresh");
                }
                if r + 1 < rows {
                    t.link(Vertex::Switch(s), Vertex::Switch(at(r + 1, c)))
                        .expect("fresh");
                }
            }
        }
        t
    }

    /// `switches` in a chain with `per_switch` workstations on each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn chain_of_stars(switches: u16, per_switch: u16) -> Self {
        assert!(switches > 0 && per_switch > 0);
        let n = switches * per_switch;
        let mut t = Topology::new(n, switches);
        for s in 0..switches {
            for k in 0..per_switch {
                t.link(Vertex::Node(s * per_switch + k), Vertex::Switch(s))
                    .expect("fresh");
            }
            if s + 1 < switches {
                t.link(Vertex::Switch(s), Vertex::Switch(s + 1))
                    .expect("fresh");
            }
        }
        t
    }

    /// Number of workstation endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.n_nodes as usize
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.n_switches as usize
    }

    /// Ordered ports of a vertex: `(neighbor, port index on neighbor)`.
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn ports_of(&self, v: Vertex) -> &[(Vertex, u32)] {
        &self.ports[&v]
    }

    /// All links, in insertion order.
    pub fn links(&self) -> &[(Vertex, Vertex)] {
        &self.links
    }

    /// Input-FIFO capacity (credits granted to each upstream sender) at a
    /// vertex.
    pub fn fifo_capacity(&self, v: Vertex) -> u32 {
        match v {
            Vertex::Switch(_) => self.switch_fifo_capacity,
            Vertex::Node(_) => self.endpoint_fifo_capacity,
        }
    }

    /// Overrides the switch input-FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (credit flow control needs at least one slot).
    pub fn with_switch_fifo(mut self, cap: u32) -> Self {
        assert!(cap > 0, "fifo capacity must be positive");
        self.switch_fifo_capacity = cap;
        self
    }

    /// Overrides the endpoint receive-FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_endpoint_fifo(mut self, cap: u32) -> Self {
        assert!(cap > 0, "fifo capacity must be positive");
        self.endpoint_fifo_capacity = cap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let t = Topology::star(4);
        assert_eq!(t.endpoint_count(), 4);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.ports_of(Vertex::Switch(0)).len(), 4);
        assert_eq!(t.ports_of(Vertex::Node(2)).len(), 1);
    }

    #[test]
    fn direct_is_switchless() {
        let t = Topology::direct();
        assert_eq!(t.switch_count(), 0);
        assert_eq!(t.endpoint_count(), 2);
        assert_eq!(t.ports_of(Vertex::Node(0))[0].0, Vertex::Node(1));
    }

    #[test]
    fn chain_shape() {
        let t = Topology::chain(3);
        // middle switch: node + two neighbors
        assert_eq!(t.ports_of(Vertex::Switch(1)).len(), 3);
        assert_eq!(t.ports_of(Vertex::Switch(0)).len(), 2);
    }

    #[test]
    fn ring_closes() {
        let t = Topology::ring(3);
        assert_eq!(t.ports_of(Vertex::Switch(0)).len(), 3);
        assert_eq!(t.links().len(), 3 + 3);
    }

    #[test]
    fn mesh_shape() {
        let t = Topology::mesh(2, 3);
        assert_eq!(t.endpoint_count(), 6);
        // corner: node + 2 neighbors; center-edge: node + 3 neighbors
        assert_eq!(t.ports_of(Vertex::Switch(0)).len(), 3);
        assert_eq!(t.ports_of(Vertex::Switch(1)).len(), 4);
    }

    #[test]
    fn chain_of_stars_shape() {
        let t = Topology::chain_of_stars(2, 3);
        assert_eq!(t.endpoint_count(), 6);
        assert_eq!(t.switch_count(), 2);
        assert_eq!(t.ports_of(Vertex::Switch(0)).len(), 4);
    }

    #[test]
    fn port_indices_are_symmetric() {
        let t = Topology::chain(3);
        for &(a, b) in t.links() {
            let pa = t
                .ports_of(a)
                .iter()
                .position(|&(n, _)| n == b)
                .expect("link present");
            let (_, back) = t.ports_of(a)[pa];
            assert_eq!(t.ports_of(b)[back as usize].0, a);
            assert_eq!(t.ports_of(b)[back as usize].1, pa as u32);
        }
    }

    #[test]
    fn rejects_bad_links() {
        let mut t = Topology::new(2, 1);
        assert_eq!(
            t.link(Vertex::Node(0), Vertex::Node(0)),
            Err(TopologyError::SelfLink(Vertex::Node(0)))
        );
        assert_eq!(
            t.link(Vertex::Node(0), Vertex::Switch(5)),
            Err(TopologyError::UnknownVertex(Vertex::Switch(5)))
        );
        t.link(Vertex::Node(0), Vertex::Switch(0)).unwrap();
        assert_eq!(
            t.link(Vertex::Switch(0), Vertex::Node(0)),
            Err(TopologyError::DuplicateLink(
                Vertex::Switch(0),
                Vertex::Node(0)
            ))
        );
        t.link(Vertex::Node(1), Vertex::Switch(0)).unwrap();
        let mut t2 = Topology::new(1, 2);
        t2.link(Vertex::Node(0), Vertex::Switch(0)).unwrap();
        assert_eq!(
            t2.link(Vertex::Node(0), Vertex::Switch(1)),
            Err(TopologyError::EndpointDegree(0))
        );
    }

    #[test]
    fn fifo_overrides() {
        let t = Topology::star(2).with_switch_fifo(16).with_endpoint_fifo(4);
        assert_eq!(t.fifo_capacity(Vertex::Switch(0)), 16);
        assert_eq!(t.fifo_capacity(Vertex::Node(0)), 4);
    }
}
