//! Heartbeat-driven failure detection.
//!
//! Every workstation HIB originates periodic [`CtrlMsg::Heartbeat`]
//! beacons which the switches flood (deduped per origin) across the
//! fabric, so in steady state every directed link carries every other
//! node's beacons. Silence is therefore observable *locally*: a HIB
//! watches per-peer beacon arrivals, a switch watches per-port
//! arrivals, and each runs its own [`HeartbeatDetector`] — a
//! simplified phi-accrual detector in the spirit of Hayashibara et
//! al.: the suspicion threshold adapts to the *observed* inter-arrival
//! time (an EWMA), floored by a hard timeout so a freshly started
//! detector with no history is not trigger-happy.
//!
//! The detector is a pure function of (observation sequence, knobs):
//! it holds no RNG and is evaluated only at event-driven instants
//! (beacon receipt or the observer's own beacon tick), so identical
//! seeds replay identical verdict sequences — the property the crash
//! campaign's bit-for-bit replay gate rests on.
//!
//! [`CtrlMsg::Heartbeat`]: tg_wire::CtrlMsg::Heartbeat

use std::collections::BTreeMap;

use tg_sim::SimTime;

/// Failure-detection knobs, promoted out of the link parameters so a
/// campaign can tune beacon cadence and suspicion thresholds per run
/// without rebuilding the cluster: beacons every `heartbeat_every`,
/// conviction at `max(peer_timeout, phi_factor × observed mean gap)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DetectParams {
    /// Beacon origination period.
    pub heartbeat_every: SimTime,
    /// Hard silence floor before a peer is suspected.
    pub peer_timeout: SimTime,
    /// Adaptive multiplier over the observed beacon gap (phi-accrual
    /// style); the effective threshold is the max of both.
    pub phi_factor: u32,
}

impl Default for DetectParams {
    /// The crash-campaign defaults: 20 µs beacons, 100 µs floor, φ = 8 —
    /// identical to [`RelParams`]'s built-in heartbeat constants.
    ///
    /// [`RelParams`]: crate::RelParams
    fn default() -> Self {
        DetectParams {
            heartbeat_every: SimTime::from_us(20),
            peer_timeout: SimTime::from_us(100),
            phi_factor: 8,
        }
    }
}

impl DetectParams {
    /// Validates the parameter set: every duration must be positive, the
    /// phi multiplier non-zero, and the timeout must not be *inverted*
    /// (a `peer_timeout` at or below `heartbeat_every` convicts a healthy
    /// peer between two of its own beacons).
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_every.is_zero() {
            return Err("heartbeat_every must be positive".to_string());
        }
        if self.peer_timeout.is_zero() {
            return Err("peer_timeout must be positive".to_string());
        }
        if self.phi_factor == 0 {
            return Err("phi_factor must be positive".to_string());
        }
        if self.peer_timeout <= self.heartbeat_every {
            return Err(format!(
                "inverted timeouts: peer_timeout {:?} must exceed heartbeat_every {:?}",
                self.peer_timeout, self.heartbeat_every
            ));
        }
        Ok(())
    }
}

/// One liveness transition reported by [`HeartbeatDetector::check`] or
/// [`HeartbeatDetector::saw`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Liveness {
    /// The watched peer went silent past its suspicion threshold.
    Down,
    /// A previously-declared-dead peer's beacons resumed.
    Up,
}

#[derive(Clone, Copy, Debug)]
struct Watch {
    /// Last beacon arrival (detector creation time until the first one).
    last_seen: SimTime,
    /// EWMA of the beacon inter-arrival gap, in picoseconds; 0 until
    /// two arrivals have been seen.
    mean_gap_ps: u64,
    /// Current verdict.
    down: bool,
}

/// A deterministic per-observer failure detector over a set of watched
/// keys (peer node ids at a HIB, port indexes at a switch).
///
/// `timeout` is the hard silence floor; `phi_factor` scales the
/// adaptive threshold: a peer is suspected when it has been silent for
/// `max(timeout, phi_factor * mean_gap)`.
#[derive(Clone, Debug)]
pub struct HeartbeatDetector {
    watches: BTreeMap<u64, Watch>,
    timeout: SimTime,
    phi_factor: u32,
    /// Total down verdicts ever issued (monotone, for diagnostics).
    downs: u64,
    /// Total up transitions ever issued.
    ups: u64,
}

impl HeartbeatDetector {
    /// A detector with the given silence floor and phi multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `phi_factor == 0` (the adaptive threshold would be
    /// instant suspicion) or `timeout` is zero.
    pub fn new(timeout: SimTime, phi_factor: u32) -> Self {
        assert!(phi_factor > 0, "phi factor must be positive");
        assert!(timeout > SimTime::ZERO, "timeout floor must be positive");
        HeartbeatDetector {
            watches: BTreeMap::new(),
            timeout,
            phi_factor,
            downs: 0,
            ups: 0,
        }
    }

    /// Starts watching `key`, with the silence clock starting at `now`.
    /// Re-tracking an existing key is a no-op (the history is kept).
    pub fn track(&mut self, key: u64, now: SimTime) {
        self.watches.entry(key).or_insert(Watch {
            last_seen: now,
            mean_gap_ps: 0,
            down: false,
        });
    }

    /// Stops watching `key`.
    pub fn untrack(&mut self, key: u64) {
        self.watches.remove(&key);
    }

    /// Records a beacon from `key` at `now`. Auto-tracks unknown keys.
    /// Returns `Some(Liveness::Up)` when this beacon revives a peer
    /// previously declared down.
    pub fn saw(&mut self, key: u64, now: SimTime) -> Option<Liveness> {
        let w = self.watches.entry(key).or_insert(Watch {
            last_seen: now,
            mean_gap_ps: 0,
            down: false,
        });
        let gap = now.saturating_sub(w.last_seen).as_ps();
        if gap > 0 {
            // EWMA with alpha = 1/4: slow enough to ride out flood
            // jitter, fast enough to adapt within a few beacons.
            w.mean_gap_ps = if w.mean_gap_ps == 0 {
                gap
            } else {
                (3 * w.mean_gap_ps + gap) / 4
            };
        }
        w.last_seen = now;
        if w.down {
            w.down = false;
            self.ups += 1;
            return Some(Liveness::Up);
        }
        None
    }

    /// The silence duration after which `key` is suspected.
    fn threshold(&self, w: &Watch) -> u64 {
        let adaptive = w.mean_gap_ps.saturating_mul(u64::from(self.phi_factor));
        adaptive.max(self.timeout.as_ps())
    }

    /// Sweeps every watch for silence at `now`, returning the keys that
    /// just crossed their suspicion threshold (deterministic key order).
    pub fn check(&mut self, now: SimTime) -> Vec<u64> {
        let mut newly_down = Vec::new();
        let phi = self.phi_factor;
        let floor = self.timeout.as_ps();
        for (&key, w) in self.watches.iter_mut() {
            if w.down {
                continue;
            }
            let silent = now.saturating_sub(w.last_seen).as_ps();
            let adaptive = w.mean_gap_ps.saturating_mul(u64::from(phi));
            if silent > adaptive.max(floor) {
                w.down = true;
                self.downs += 1;
                newly_down.push(key);
            }
        }
        newly_down
    }

    /// Current verdict for `key` (`false` for untracked keys).
    pub fn is_down(&self, key: u64) -> bool {
        self.watches.get(&key).is_some_and(|w| w.down)
    }

    /// Keys currently declared down, in ascending order.
    pub fn down_keys(&self) -> Vec<u64> {
        self.watches
            .iter()
            .filter(|(_, w)| w.down)
            .map(|(&k, _)| k)
            .collect()
    }

    /// The instant `key`'s silence will cross its threshold if no more
    /// beacons arrive — the observer's next useful re-check time.
    pub fn deadline(&self, key: u64) -> Option<SimTime> {
        let w = self.watches.get(&key)?;
        if w.down {
            return None;
        }
        Some(w.last_seen + SimTime::from_ps(self.threshold(w)))
    }

    /// (down verdicts, up transitions) issued over the detector's life.
    pub fn transition_counts(&self) -> (u64, u64) {
        (self.downs, self.ups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> HeartbeatDetector {
        HeartbeatDetector::new(SimTime::from_us(100), 8)
    }

    #[test]
    fn silence_past_the_floor_is_down_and_beacons_revive() {
        let mut d = det();
        d.track(1, SimTime::ZERO);
        assert!(d.check(SimTime::from_us(100)).is_empty(), "floor inclusive");
        assert_eq!(d.check(SimTime::from_us(101)), vec![1]);
        assert!(d.is_down(1));
        assert_eq!(d.down_keys(), vec![1]);
        // Re-checking an already-down key issues no duplicate verdict.
        assert!(d.check(SimTime::from_us(500)).is_empty());
        assert_eq!(d.saw(1, SimTime::from_us(600)), Some(Liveness::Up));
        assert!(!d.is_down(1));
        assert_eq!(d.transition_counts(), (1, 1));
    }

    #[test]
    fn threshold_adapts_to_observed_gap() {
        let mut d = det();
        // Beacons every 50us: after the EWMA settles, the threshold is
        // 8 * 50us = 400us, above the 100us floor.
        let mut t = SimTime::ZERO;
        for _ in 0..16 {
            t += SimTime::from_us(50);
            assert_eq!(d.saw(1, t), None);
        }
        assert!(
            d.check(t + SimTime::from_us(300)).is_empty(),
            "within 8x the observed gap"
        );
        assert_eq!(d.check(t + SimTime::from_us(401)), vec![1]);
        assert_eq!(d.deadline(1), None, "down keys have no deadline");
    }

    #[test]
    fn deadline_names_the_next_recheck_instant() {
        let mut d = det();
        d.track(3, SimTime::from_us(10));
        assert_eq!(d.deadline(3), Some(SimTime::from_us(110)));
        assert_eq!(d.deadline(99), None);
    }

    #[test]
    fn verdicts_come_in_deterministic_key_order() {
        let mut d = det();
        for k in [9, 2, 5] {
            d.track(k, SimTime::ZERO);
        }
        assert_eq!(d.check(SimTime::from_ms(1)), vec![2, 5, 9]);
    }

    #[test]
    fn detect_params_default_is_valid_and_matches_link_constants() {
        let p = DetectParams::default();
        assert!(p.validate().is_ok());
        assert_eq!(p.heartbeat_every, SimTime::from_us(20));
        assert_eq!(p.peer_timeout, SimTime::from_us(100));
        assert_eq!(p.phi_factor, 8);
    }

    #[test]
    fn detect_params_validation_rejects_zero_and_inverted_timeouts() {
        let zero_beat = DetectParams {
            heartbeat_every: SimTime::ZERO,
            ..DetectParams::default()
        };
        assert!(zero_beat.validate().is_err(), "zero beacon period accepted");
        let zero_timeout = DetectParams {
            peer_timeout: SimTime::ZERO,
            ..DetectParams::default()
        };
        assert!(zero_timeout.validate().is_err(), "zero timeout accepted");
        let zero_phi = DetectParams {
            phi_factor: 0,
            ..DetectParams::default()
        };
        assert!(zero_phi.validate().is_err(), "zero phi accepted");
        let inverted = DetectParams {
            heartbeat_every: SimTime::from_us(100),
            peer_timeout: SimTime::from_us(50),
            phi_factor: 8,
        };
        let err = inverted.validate().expect_err("inverted timeouts accepted");
        assert!(err.contains("inverted"), "unexpected message: {err}");
    }

    #[test]
    fn untrack_forgets() {
        let mut d = det();
        d.track(1, SimTime::ZERO);
        d.untrack(1);
        assert!(d.check(SimTime::from_ms(1)).is_empty());
    }
}
