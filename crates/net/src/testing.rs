//! Test endpoints for standalone network experiments.
//!
//! These components speak raw [`NetEvent`]s: a [`SourceSink`] injects a
//! scripted list of packets into the fabric (respecting credit flow
//! control) and records everything it receives, with timestamps. The
//! crate's integration and property tests — and the network micro-benches —
//! are built from them. When its transmit port was enrolled in the
//! link-level reliability protocol (see
//! [`build_network_with`](crate::build_network_with)), the endpoint also
//! runs the receiver half on its input link and the sender half on its
//! output link, so fault-injection tests can exercise the whole recovery
//! path end to end.

use std::collections::VecDeque;

use tg_sim::{Component, Ctx, SimTime};
use tg_wire::{CtrlFrame, CtrlMsg, NodeId, Packet, TimingConfig, WireMsg};

use crate::event::NetEvent;
use crate::fault::{FaultInjector, FrameFate};
use crate::link::{LinkError, LinkRx, RxVerdict};
use crate::port::{TimerAction, TxPort};

/// A packet receipt recorded by a [`SourceSink`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Receipt {
    /// When the packet arrived.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// The delivery stream a fault-equivalence test compares across runs: the
/// ordered receipts of one endpoint.
pub type DeliveryRecord = Receipt;

/// A scriptable endpoint: injects queued packets as fast as flow control
/// allows and sinks arrivals (consuming each after a fixed delay, then
/// returning the credit).
#[derive(Debug)]
pub struct SourceSink {
    name: String,
    node: NodeId,
    tx: Option<TxPort>,
    timing: TimingConfig,
    consume_delay: SimTime,
    pending: VecDeque<Packet>,
    next_seq: u64,
    /// Everything received, in arrival order.
    pub received: Vec<Receipt>,
    /// When each injected packet left the endpoint (issue completion).
    pub injected_at: Vec<SimTime>,
    rx_upstream: Option<(tg_sim::CompId, u32)>,
    /// Receiver half of the link-level protocol on the input link, when
    /// reliability is on.
    rx_link: Option<LinkRx>,
    injector: Option<FaultInjector>,
    errors: Vec<LinkError>,
    /// Control frames discarded for a failed checksum.
    ctrl_discards: u64,
}

impl SourceSink {
    /// Creates an endpoint for cluster node `node`.
    pub fn new(node: NodeId, timing: TimingConfig) -> Self {
        SourceSink {
            name: format!("endpoint{}", node.raw()),
            node,
            tx: None,
            timing,
            consume_delay: SimTime::from_ns(100),
            pending: VecDeque::new(),
            next_seq: 0,
            received: Vec::new(),
            injected_at: Vec::new(),
            rx_upstream: None,
            rx_link: None,
            injector: None,
            errors: Vec::new(),
            ctrl_discards: 0,
        }
    }

    /// Wires the endpoint after [`build_network`](crate::build_network).
    /// A reliability-enrolled transmit port implies the receiver half on
    /// the input link.
    pub fn wire(&mut self, tx: TxPort, rx_upstream: (tg_sim::CompId, u32)) {
        if let Some(params) = tx.rel_params() {
            self.rx_link = Some(LinkRx::for_params(&params));
        }
        self.tx = Some(tx);
        self.rx_upstream = Some(rx_upstream);
    }

    /// Installs the fault injector consulted when this endpoint launches
    /// frames and returns credits.
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Sets how long the sink takes to consume each arrival before
    /// returning its credit.
    pub fn set_consume_delay(&mut self, d: SimTime) {
        self.consume_delay = d;
    }

    /// Queues a message for `dst`; it is injected when flow control allows.
    pub fn enqueue(&mut self, dst: NodeId, msg: WireMsg) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending
            .push_back(Packet::new(self.node, dst, msg, seq));
    }

    /// Packets still waiting to be injected.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Link errors observed by this endpoint (duplicate credits, dead
    /// link declarations).
    pub fn link_errors(&self) -> &[LinkError] {
        &self.errors
    }

    /// Frames retransmitted by this endpoint.
    pub fn retransmits(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::retransmits)
    }

    /// Wire bytes retransmitted by this endpoint.
    pub fn retx_bytes(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::retx_bytes)
    }

    /// Control frames this endpoint discarded for a failed checksum.
    pub fn ctrl_discards(&self) -> u64 {
        self.ctrl_discards
    }

    /// Completed credit-resync handshakes on this endpoint's output link.
    pub fn resyncs(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::resyncs)
    }

    /// True once this endpoint's output link was declared dead.
    pub fn link_dead(&self) -> bool {
        self.tx.as_ref().is_some_and(TxPort::is_dead)
    }

    /// Frames this endpoint's receiver NACKed back for landing beyond
    /// the reorder window (go-back-N: past the expected frame).
    pub fn rx_gap_discards(&self) -> u64 {
        self.rx_link.as_ref().map_or(0, LinkRx::gap_discards)
    }

    /// Launches `packet` (fresh or retransmission), consulting the fault
    /// injector for its fate.
    fn dispatch(&mut self, mut packet: Packet, fresh: bool, ctx: &mut Ctx<'_, NetEvent>) {
        let now = ctx.now();
        let (times, nbr, nbr_port, link) = {
            let tx = self.tx.as_mut().expect("wired endpoint");
            let times = if fresh {
                tx.launch(&packet, &self.timing)
            } else {
                tx.relaunch(&packet, &self.timing)
            };
            (times, tx.neighbor(), tx.neighbor_port(), tx.link())
        };
        ctx.send_self(times.free, NetEvent::PumpOut { port: 0 });
        if fresh {
            self.injected_at.push(now + times.free);
        }
        let fate = match (self.injector.as_ref(), link) {
            (Some(inj), Some(link)) => inj.frame_fate(link, now, &mut packet),
            _ => FrameFate::Deliver,
        };
        if fate == FrameFate::Drop {
            return;
        }
        ctx.send(
            nbr,
            times.arrival,
            NetEvent::Arrive {
                port: nbr_port,
                packet,
            },
        );
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        loop {
            let Some(tx) = self.tx.as_mut() else {
                return;
            };
            if tx.has_retx_pending() {
                if !tx.wire_free() {
                    break;
                }
                let packet = tx.take_retx().expect("retx pending on a free wire");
                self.dispatch(packet, false, ctx);
                continue;
            }
            if self.pending.is_empty() {
                break;
            }
            if !tx.can_send_new() {
                tx.note_blocked(ctx.now());
                break;
            }
            let mut packet = self.pending.pop_front().expect("checked non-empty");
            if tx.is_reliable() {
                packet = tx.frame(packet, ctx.now());
            }
            self.dispatch(packet, true, ctx);
        }
        if let Some(tx) = self.tx.as_mut() {
            if let Some((delay, gen)) = tx.poll_timer(ctx.now()) {
                ctx.send_self(delay, NetEvent::RetxTimer { port: 0, gen });
            }
        }
    }

    /// Returns the credit for a consumed arrival, unless the injector
    /// loses it on the way back up.
    fn return_credit(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        let (up, port) = self.rx_upstream.expect("wired endpoint");
        let link = self.tx.as_ref().and_then(TxPort::link);
        if let (Some(inj), Some(link)) = (self.injector.as_ref(), link) {
            if inj.credit_lost(link, ctx.now()) {
                return;
            }
        }
        ctx.send(
            up,
            self.consume_delay + self.timing.link_prop,
            NetEvent::Credit { port },
        );
    }

    /// Seals and launches one control frame toward the upstream switch
    /// after `delay`, consulting the injector for its fate. The endpoint's
    /// transmit link and its credit-return path share one physical link,
    /// so control traffic in either role rides `tx.link()`.
    fn send_ctrl(&mut self, msg: CtrlMsg, delay: SimTime, ctx: &mut Ctx<'_, NetEvent>) {
        let (up, port) = self.rx_upstream.expect("wired endpoint");
        let link = self.tx.as_ref().and_then(TxPort::link);
        let mut frame = CtrlFrame::seal(msg);
        if let (Some(inj), Some(link)) = (self.injector.as_ref(), link) {
            if inj.ctrl_fate(link, ctx.now(), &mut frame) == FrameFate::Drop {
                return;
            }
        }
        ctx.send(up, delay, NetEvent::Ctrl { port, frame });
    }

    /// Sinks one accepted arrival: record the receipt, bump the drain
    /// counter, and start the credit on its way back.
    fn consume(&mut self, packet: Packet, ctx: &mut Ctx<'_, NetEvent>) {
        if let Some(rx) = self.rx_link.as_mut() {
            rx.on_drain();
        }
        self.received.push(Receipt {
            at: ctx.now(),
            packet,
        });
        self.return_credit(ctx);
    }
}

impl Component<NetEvent> for SourceSink {
    fn on_event(&mut self, ev: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
        match ev {
            NetEvent::Arrive { packet, .. } => {
                let verdict = self.rx_link.as_mut().map(|rx| rx.accept(&packet));
                match verdict {
                    None => self.consume(packet, ctx),
                    Some(RxVerdict::Accept { ack }) => {
                        let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(CtrlMsg::Ack { seq: ack, sack }, self.timing.link_prop, ctx);
                        // The sink consumes immediately for protocol
                        // purposes; the drain counter feeds resync.
                        self.consume(packet, ctx);
                        // The arrival may have closed a reorder-window
                        // gap: consume the released successors in order.
                        let released = self
                            .rx_link
                            .as_mut()
                            .map(LinkRx::take_ready)
                            .unwrap_or_default();
                        for p in released {
                            self.consume(p, ctx);
                        }
                    }
                    Some(RxVerdict::Held { ack, nack, dup }) => {
                        if dup {
                            // Spurious retransmit of a parked frame;
                            // nothing to report (the missing base frame's
                            // ack will carry the bitmap).
                        } else if nack {
                            let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                            self.send_ctrl(
                                CtrlMsg::Nack {
                                    expected: ack + 1,
                                    sack,
                                },
                                self.timing.link_prop,
                                ctx,
                            );
                        } else {
                            let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                            self.send_ctrl(
                                CtrlMsg::Ack { seq: ack, sack },
                                self.timing.link_prop,
                                ctx,
                            );
                        }
                    }
                    Some(RxVerdict::DupAck { ack }) => {
                        let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(CtrlMsg::Ack { seq: ack, sack }, self.timing.link_prop, ctx);
                    }
                    Some(RxVerdict::NackCorrupt { expected })
                    | Some(RxVerdict::NackGap { expected }) => {
                        let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(
                            CtrlMsg::Nack { expected, sack },
                            self.timing.link_prop,
                            ctx,
                        );
                    }
                    Some(RxVerdict::Discard) => {}
                }
            }
            NetEvent::Credit { .. } => {
                if let Some(tx) = self.tx.as_mut() {
                    if let Err(err) = tx.on_credit_at(ctx.now()) {
                        self.errors.push(err);
                    }
                }
                self.pump(ctx);
            }
            NetEvent::PumpOut { .. } => {
                if let Some(tx) = self.tx.as_mut() {
                    tx.on_free();
                }
                self.pump(ctx);
            }
            NetEvent::Ctrl { frame, .. } => {
                if !frame.checksum_ok() {
                    self.ctrl_discards += 1;
                    return;
                }
                match frame.msg {
                    CtrlMsg::Ack { seq, sack } => {
                        if let Some(tx) = self.tx.as_mut() {
                            tx.on_ack(seq, sack, ctx.now());
                        }
                        self.pump(ctx);
                    }
                    CtrlMsg::Nack { expected, sack } => {
                        if let Some(TimerAction::Dead(err)) = self
                            .tx
                            .as_mut()
                            .map(|tx| tx.on_nack(expected, sack, ctx.now()))
                        {
                            self.errors.push(err);
                        }
                        self.pump(ctx);
                    }
                    CtrlMsg::SyncReq { token } => {
                        let drained = self.rx_link.as_ref().map(LinkRx::drained).unwrap_or(0);
                        // The reply travels with the same latency as credit
                        // returns, so it can never overtake a credit
                        // already in flight (which the drain count
                        // includes).
                        self.send_ctrl(
                            CtrlMsg::SyncAck { token, drained },
                            self.consume_delay + self.timing.link_prop,
                            ctx,
                        );
                    }
                    CtrlMsg::SyncAck { token, drained } => {
                        if let Some(tx) = self.tx.as_mut() {
                            tx.on_sync_ack(token, drained, ctx.now());
                        }
                        self.pump(ctx);
                    }
                    // Test endpoints run no failure detector: beacons
                    // flooding past are sunk silently.
                    CtrlMsg::Heartbeat { .. } => {}
                    CtrlMsg::Reset { next } => {
                        if let Some(rx) = self.rx_link.as_mut() {
                            rx.on_reset(next);
                        }
                    }
                }
            }
            NetEvent::RetxTimer { gen, .. } => {
                let action = self
                    .tx
                    .as_mut()
                    .map(|tx| tx.on_timer(gen, ctx.now()))
                    .unwrap_or(TimerAction::Stale);
                match action {
                    TimerAction::Retransmit => self.pump(ctx),
                    TimerAction::Resync { token } => {
                        self.send_ctrl(CtrlMsg::SyncReq { token }, self.timing.link_prop, ctx);
                    }
                    TimerAction::Dead(err) => self.errors.push(err),
                    TimerAction::Stale | TimerAction::Idle => {}
                }
                if let Some(tx) = self.tx.as_mut() {
                    if let Some((delay, gen)) = tx.poll_timer(ctx.now()) {
                        ctx.send_self(delay, NetEvent::RetxTimer { port: 0, gen });
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Kicks an endpoint's injection pump: schedule this once after enqueueing.
/// (Any credit-shaped event wakes the pump; this sends a zero-cost one.)
pub fn kick(engine: &mut tg_sim::Engine<NetEvent>, endpoint: tg_sim::CompId) {
    // A PumpOut on an idle port is a no-op apart from running the pump.
    engine.schedule(SimTime::ZERO, endpoint, NetEvent::PumpOut { port: 0 });
}
