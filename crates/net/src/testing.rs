//! Test endpoints for standalone network experiments.
//!
//! These components speak raw [`NetEvent`]s: a [`SourceSink`] injects a
//! scripted list of packets into the fabric (respecting credit flow
//! control) and records everything it receives, with timestamps. The
//! crate's integration and property tests — and the network micro-benches —
//! are built from them.

use std::collections::VecDeque;

use tg_sim::{Component, Ctx, SimTime};
use tg_wire::{NodeId, Packet, TimingConfig, WireMsg};

use crate::event::{NetEvent, NetMessage};
use crate::port::TxPort;

/// A packet receipt recorded by a [`SourceSink`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Receipt {
    /// When the packet arrived.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// A scriptable endpoint: injects queued packets as fast as flow control
/// allows and sinks arrivals (consuming each after a fixed delay, then
/// returning the credit).
#[derive(Debug)]
pub struct SourceSink {
    name: String,
    node: NodeId,
    tx: Option<TxPort>,
    timing: TimingConfig,
    consume_delay: SimTime,
    pending: VecDeque<Packet>,
    next_seq: u64,
    /// Everything received, in arrival order.
    pub received: Vec<Receipt>,
    /// When each injected packet left the endpoint (issue completion).
    pub injected_at: Vec<SimTime>,
    rx_upstream: Option<(tg_sim::CompId, u32)>,
}

impl SourceSink {
    /// Creates an endpoint for cluster node `node`.
    pub fn new(node: NodeId, timing: TimingConfig) -> Self {
        SourceSink {
            name: format!("endpoint{}", node.raw()),
            node,
            tx: None,
            timing,
            consume_delay: SimTime::from_ns(100),
            pending: VecDeque::new(),
            next_seq: 0,
            received: Vec::new(),
            injected_at: Vec::new(),
            rx_upstream: None,
        }
    }

    /// Wires the endpoint after [`build_network`](crate::build_network).
    pub fn wire(&mut self, tx: TxPort, rx_upstream: (tg_sim::CompId, u32)) {
        self.tx = Some(tx);
        self.rx_upstream = Some(rx_upstream);
    }

    /// Sets how long the sink takes to consume each arrival before
    /// returning its credit.
    pub fn set_consume_delay(&mut self, d: SimTime) {
        self.consume_delay = d;
    }

    /// Queues a message for `dst`; it is injected when flow control allows.
    pub fn enqueue(&mut self, dst: NodeId, msg: WireMsg) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(Packet {
            src: self.node,
            dst,
            msg,
            inject_seq: seq,
        });
    }

    /// Packets still waiting to be injected.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        let Some(tx) = self.tx.as_mut() else {
            return;
        };
        while tx.ready() {
            let Some(packet) = self.pending.pop_front() else {
                break;
            };
            let times = tx.launch(&packet, &self.timing);
            ctx.send(
                tx.neighbor(),
                times.arrival,
                NetEvent::Arrive {
                    port: tx.neighbor_port(),
                    packet,
                },
            );
            // Reuse PumpOut as "my single tx port is free".
            ctx.send_self(times.free, NetEvent::PumpOut { port: 0 });
            self.injected_at.push(ctx.now() + times.free);
        }
    }
}

impl Component<NetEvent> for SourceSink {
    fn on_event(&mut self, ev: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
        match ev {
            NetEvent::Arrive { packet, .. } => {
                self.received.push(Receipt {
                    at: ctx.now(),
                    packet,
                });
                let (up, port) = self.rx_upstream.expect("wired endpoint");
                ctx.send(
                    up,
                    self.consume_delay + self.timing.link_prop,
                    NetEvent::from_net(NetEvent::Credit { port }),
                );
            }
            NetEvent::Credit { .. } => {
                if let Some(tx) = self.tx.as_mut() {
                    tx.on_credit();
                }
                self.pump(ctx);
            }
            NetEvent::PumpOut { .. } => {
                if let Some(tx) = self.tx.as_mut() {
                    tx.on_free();
                }
                self.pump(ctx);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Kicks an endpoint's injection pump: schedule this once after enqueueing.
/// (Any credit-shaped event wakes the pump; this sends a zero-cost one.)
pub fn kick(engine: &mut tg_sim::Engine<NetEvent>, endpoint: tg_sim::CompId) {
    // A PumpOut on an idle port is a no-op apart from running the pump.
    engine.schedule(SimTime::ZERO, endpoint, NetEvent::PumpOut { port: 0 });
}
