//! Link-level reliability: receive-side verification state and the shared
//! protocol vocabulary.
//!
//! Telegraphos-class fabrics earn their "lossless, in-order" contract with
//! link-level error detection and retransmission (APEnet+ puts CRC +
//! retransmit directly on its torus links). This module models that layer:
//! every frame carries a per-link sequence number and a checksum
//! ([`Packet::seal`]); the receiving end of each link runs a [`LinkRx`]
//! that accepts exactly the next in-order intact frame and answers
//! everything else with a cumulative ACK or a go-back-N NACK. The
//! transmit-side state machine (retransmit buffer, timers, backoff, credit
//! resync) lives in [`TxPort`](crate::TxPort).
//!
//! [`Packet::seal`]: tg_wire::Packet::seal

use std::fmt;

use tg_sim::SimTime;
use tg_wire::Packet;

use crate::fault::LinkId;

/// A neighbor-originated protocol violation, reported instead of panicking:
/// a misbehaving (or fault-injected) peer must degrade the link, not wedge
/// the whole cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// A credit was returned beyond the initial allowance.
    DuplicateCredit {
        /// The allowance that would have been exceeded.
        allowance: u32,
    },
    /// A frame arrived at a full input FIFO (credit protocol violated).
    FifoOverflow {
        /// The FIFO capacity that was exceeded.
        capacity: u32,
    },
    /// The retransmit budget for a frame was exhausted; the link is dead.
    RetryExhausted {
        /// Retries attempted before giving up.
        retries: u32,
        /// Frames stranded in the retransmit buffer.
        stranded: usize,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateCredit { allowance } => {
                write!(
                    f,
                    "credit return exceeds the initial allowance of {allowance}"
                )
            }
            LinkError::FifoOverflow { capacity } => {
                write!(f, "input FIFO overflow: capacity {capacity} exceeded")
            }
            LinkError::RetryExhausted { retries, stranded } => {
                write!(
                    f,
                    "link dead: retransmit budget exhausted after {retries} retries \
                     ({stranded} frames stranded)"
                )
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Tuning of the link-level reliability protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelParams {
    /// Base retransmission timeout for the oldest unacknowledged frame.
    /// Must comfortably exceed the link round-trip (serialization +
    /// propagation + ACK return), or every frame retransmits spuriously.
    pub retx_timeout: SimTime,
    /// Per-frame retransmission budget; exhausting it declares the link
    /// dead ([`LinkError::RetryExhausted`]).
    pub max_retries: u32,
    /// Cap on the exponential backoff multiplier applied to
    /// `retx_timeout` across consecutive timeouts of the same frame.
    pub backoff_cap: u32,
    /// How long a port may sit credit-starved with traffic pending (and an
    /// empty retransmit buffer) before probing its neighbor with a
    /// credit-resync handshake.
    pub resync_timeout: SimTime,
}

impl Default for RelParams {
    fn default() -> Self {
        RelParams {
            retx_timeout: SimTime::from_us(10),
            max_retries: 16,
            backoff_cap: 8,
            resync_timeout: SimTime::from_us(40),
        }
    }
}

/// What the receiving link layer decided about one arrived frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxVerdict {
    /// In-order, intact: deliver to the input FIFO and send the cumulative
    /// ACK for `ack`.
    Accept {
        /// Sequence number to acknowledge (the frame's own).
        ack: u64,
    },
    /// A duplicate of an already-accepted frame (a spurious retransmit):
    /// discard and re-send the cumulative ACK for `ack` so the sender's
    /// buffer drains.
    DupAck {
        /// Highest accepted sequence number.
        ack: u64,
    },
    /// Corrupt frame: discard and NACK asking for retransmission from
    /// `expected`.
    NackCorrupt {
        /// The sequence number expected next.
        expected: u64,
    },
    /// Sequence gap (an earlier frame was lost in flight): discard and
    /// NACK asking for go-back-N retransmission from `expected`.
    NackGap {
        /// The sequence number expected next.
        expected: u64,
    },
    /// Sequence gap already NACKed: discard silently (suppresses NACK
    /// storms while a burst of in-flight frames drains).
    Discard,
}

/// Receive-side link-layer state for one input port: in-order sequence
/// verification, checksum checking, NACK suppression, and the drain
/// counter the credit-resync handshake reports.
#[derive(Clone, Debug)]
pub struct LinkRx {
    /// Next in-order sequence number (frames are stamped from 1).
    expected: u64,
    /// The gap we most recently NACKed; suppresses repeat NACKs for the
    /// same expected frame while in-flight traffic drains.
    nacked_for: Option<u64>,
    /// Total frames drained from the input FIFO on this link (monotone;
    /// reported by the credit-resync handshake).
    drained: u64,
    /// Frames discarded as corrupt.
    corrupt: u64,
    /// Frames discarded as duplicates.
    dups: u64,
    /// Frames discarded for a sequence gap.
    gaps: u64,
}

impl LinkRx {
    /// Fresh state: expecting sequence 1.
    pub fn new() -> Self {
        LinkRx {
            expected: 1,
            nacked_for: None,
            drained: 0,
            corrupt: 0,
            dups: 0,
            gaps: 0,
        }
    }

    /// Judges one arrived frame.
    pub fn accept(&mut self, packet: &Packet) -> RxVerdict {
        if !packet.checksum_ok() {
            self.corrupt += 1;
            // A corrupt frame's sequence number is untrustworthy; always
            // ask for retransmission from the expected frame.
            self.nacked_for = Some(self.expected);
            return RxVerdict::NackCorrupt {
                expected: self.expected,
            };
        }
        if packet.link_seq == self.expected {
            self.expected += 1;
            self.nacked_for = None;
            RxVerdict::Accept {
                ack: packet.link_seq,
            }
        } else if packet.link_seq < self.expected {
            self.dups += 1;
            RxVerdict::DupAck {
                ack: self.expected - 1,
            }
        } else {
            self.gaps += 1;
            if self.nacked_for == Some(self.expected) {
                RxVerdict::Discard
            } else {
                self.nacked_for = Some(self.expected);
                RxVerdict::NackGap {
                    expected: self.expected,
                }
            }
        }
    }

    /// Records one frame drained from the input FIFO (its credit is being
    /// returned upstream).
    pub fn on_drain(&mut self) {
        self.drained += 1;
    }

    /// Total frames drained on this link.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Frames discarded as corrupt so far.
    pub fn corrupt_discards(&self) -> u64 {
        self.corrupt
    }

    /// Frames discarded as duplicates or gaps so far.
    pub fn seq_discards(&self) -> u64 {
        self.dups + self.gaps
    }
}

impl Default for LinkRx {
    fn default() -> Self {
        LinkRx::new()
    }
}

/// Credit bookkeeping of one transmit port, for quiescence-time
/// conservation checks: once all FIFOs have drained, every credit is
/// either in hand or riding an unacknowledged frame, so
/// `credits + unacked == allowance` must hold. A shortfall means a credit
/// leaked (lost in flight and never resynced); an excess means a duplicate
/// credit was minted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CreditLedger {
    /// The directed link this transmit port feeds.
    pub link: LinkId,
    /// Credits currently in hand.
    pub credits: u32,
    /// Frames awaiting acknowledgement (each holds one credit).
    pub unacked: usize,
    /// The initial credit allowance.
    pub allowance: u32,
}

impl CreditLedger {
    /// True when every credit is accounted for.
    pub fn balanced(&self) -> bool {
        u64::from(self.credits) + self.unacked as u64 == u64::from(self.allowance)
    }
}

impl fmt::Display for CreditLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} in hand + {} unacked != allowance {}",
            self.link, self.credits, self.unacked, self.allowance
        )
    }
}

/// A structured no-progress diagnosis: which link or queue is holding the
/// fabric, assembled by the cluster when the engine watchdog trips.
#[derive(Clone, Debug)]
pub struct StalledLink {
    /// The stalled directed link.
    pub link: LinkId,
    /// Whether the link has been declared dead (retry budget exhausted).
    pub dead: bool,
    /// Frames stranded in the retransmit buffer.
    pub stranded: usize,
    /// Credits in hand at the transmit port.
    pub credits: u32,
    /// Retransmissions attempted on this link.
    pub retransmits: u64,
}

impl fmt::Display for StalledLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}, {} stranded, {} credits, {} retransmits",
            self.link,
            if self.dead { "DEAD" } else { "stalled" },
            self.stranded,
            self.credits,
            self.retransmits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::{NodeId, WireMsg};

    fn frame(seq: u64) -> Packet {
        let mut p = Packet::new(NodeId::new(0), NodeId::new(1), WireMsg::WriteAck, seq);
        p.link_seq = seq;
        p.seal();
        p
    }

    #[test]
    fn in_order_frames_are_accepted_and_acked() {
        let mut rx = LinkRx::new();
        for seq in 1..=5 {
            assert_eq!(rx.accept(&frame(seq)), RxVerdict::Accept { ack: seq });
        }
        assert_eq!(rx.seq_discards(), 0);
    }

    #[test]
    fn gap_nacks_once_then_discards_silently() {
        let mut rx = LinkRx::new();
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        // Frame 2 was lost; 3, 4, 5 arrive.
        assert_eq!(rx.accept(&frame(3)), RxVerdict::NackGap { expected: 2 });
        assert_eq!(rx.accept(&frame(4)), RxVerdict::Discard);
        assert_eq!(rx.accept(&frame(5)), RxVerdict::Discard);
        // The go-back-N retransmission arrives in order.
        assert_eq!(rx.accept(&frame(2)), RxVerdict::Accept { ack: 2 });
        assert_eq!(rx.accept(&frame(3)), RxVerdict::Accept { ack: 3 });
    }

    #[test]
    fn duplicates_are_reacked_cumulatively() {
        let mut rx = LinkRx::new();
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        assert_eq!(rx.accept(&frame(2)), RxVerdict::Accept { ack: 2 });
        assert_eq!(rx.accept(&frame(1)), RxVerdict::DupAck { ack: 2 });
        assert_eq!(rx.seq_discards(), 1);
    }

    #[test]
    fn corrupt_frames_are_nacked() {
        let mut rx = LinkRx::new();
        let mut bad = frame(1);
        bad.checksum ^= 0x10;
        assert_eq!(rx.accept(&bad), RxVerdict::NackCorrupt { expected: 1 });
        assert_eq!(rx.corrupt_discards(), 1);
        // The clean retransmission is accepted.
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
    }

    #[test]
    fn drain_counter_is_monotone() {
        let mut rx = LinkRx::new();
        rx.on_drain();
        rx.on_drain();
        assert_eq!(rx.drained(), 2);
    }
}
