//! Link-level reliability: receive-side verification state and the shared
//! protocol vocabulary.
//!
//! Telegraphos-class fabrics earn their "lossless, in-order" contract with
//! link-level error detection and retransmission (APEnet+ puts CRC +
//! retransmit directly on its torus links). This module models that layer:
//! every frame carries a per-link sequence number and a checksum
//! ([`Packet::seal`]); the receiving end of each link runs a [`LinkRx`]
//! that verifies checksum and sequencing and answers with cumulative
//! ACKs and NACKs. Two retransmit disciplines are selectable per fabric
//! ([`RetxMode`]): classic go-back-N, where any out-of-order frame is
//! discarded and the sender rewinds, and selective repeat (SACK), where
//! intact out-of-order frames are parked in a bounded reorder window and
//! acks carry a receipt bitmap so the sender retransmits only the frames
//! actually missing. Both commit byte-identical payload streams; SACK
//! just stops paying for every in-flight successor of a single lost
//! frame. The transmit-side state machine (retransmit buffer, adaptive
//! RTO, backoff, credit resync) lives in [`TxPort`](crate::TxPort).
//!
//! [`Packet::seal`]: tg_wire::Packet::seal

use std::collections::BTreeMap;
use std::fmt;

use tg_sim::SimTime;
use tg_wire::Packet;

use crate::fault::LinkId;

/// A neighbor-originated protocol violation, reported instead of panicking:
/// a misbehaving (or fault-injected) peer must degrade the link, not wedge
/// the whole cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// A credit was returned beyond the initial allowance.
    DuplicateCredit {
        /// The allowance that would have been exceeded.
        allowance: u32,
    },
    /// A frame arrived at a full input FIFO (credit protocol violated).
    FifoOverflow {
        /// The FIFO capacity that was exceeded.
        capacity: u32,
    },
    /// The retransmit budget for a frame was exhausted; the link is dead.
    RetryExhausted {
        /// Retries attempted before giving up.
        retries: u32,
        /// Frames stranded in the retransmit buffer.
        stranded: usize,
    },
    /// A credit-starved port's resync probes went unanswered for a full
    /// retry budget: the neighbor is totally silent and the link is dead.
    ProbeExhausted {
        /// Consecutive probes sent without a reply or a returned credit.
        probes: u32,
        /// Credits still missing from the allowance when the port gave up.
        missing: u32,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateCredit { allowance } => {
                write!(
                    f,
                    "credit return exceeds the initial allowance of {allowance}"
                )
            }
            LinkError::FifoOverflow { capacity } => {
                write!(f, "input FIFO overflow: capacity {capacity} exceeded")
            }
            LinkError::RetryExhausted { retries, stranded } => {
                write!(
                    f,
                    "link dead: retransmit budget exhausted after {retries} retries \
                     ({stranded} frames stranded)"
                )
            }
            LinkError::ProbeExhausted { probes, missing } => {
                write!(
                    f,
                    "link dead: {probes} consecutive resync probes unanswered \
                     ({missing} credits never returned)"
                )
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Which retransmit discipline the link layer runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RetxMode {
    /// Go-back-N: receivers accept only the next in-order frame; a NACK
    /// rewinds the sender to retransmit everything unacknowledged.
    #[default]
    GoBackN,
    /// Selective repeat: receivers park intact out-of-order frames in a
    /// bounded reorder window and report them in an ack bitmap; the
    /// sender retransmits only the frames the bitmap says are missing.
    Sack,
}

/// Tuning of the link-level reliability protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelParams {
    /// Initial retransmission timeout for the oldest unacknowledged
    /// frame, used until the first ack round-trip is sampled; from then
    /// on the adaptive Jacobson RTO (clamped to `rto_min..=rto_max`)
    /// takes over. Must comfortably exceed the link round-trip
    /// (serialization + propagation + ACK return), or the first frames
    /// retransmit spuriously.
    pub retx_timeout: SimTime,
    /// Per-frame retransmission budget; exhausting it declares the link
    /// dead ([`LinkError::RetryExhausted`]).
    pub max_retries: u32,
    /// Cap on the exponential backoff multiplier applied to the
    /// retransmit timeout across consecutive timeouts of the same frame.
    pub backoff_cap: u32,
    /// Ceiling on how long a port may sit credit-starved with traffic
    /// pending (and an empty retransmit buffer) before probing its
    /// neighbor with a credit-resync handshake. Once RTT samples exist
    /// the probe interval is derived from the adaptive RTO
    /// (`min(resync_timeout, 4 * rto)`), so lightly-loaded lossy links
    /// reclaim credits proportionally faster.
    pub resync_timeout: SimTime,
    /// The retransmit discipline ([`RetxMode::GoBackN`] by default).
    pub mode: RetxMode,
    /// Reorder-window size in frames for [`RetxMode::Sack`] (clamped to
    /// the 64-bit ack bitmap; ignored in go-back-N mode).
    pub sack_window: u32,
    /// Floor for the adaptive retransmission timeout. Must exceed the
    /// largest frame's round-trip or clean bulk traffic retransmits
    /// spuriously.
    pub rto_min: SimTime,
    /// Ceiling for the adaptive retransmission timeout (backoff may
    /// still multiply beyond it, bounded by `backoff_cap`).
    pub rto_max: SimTime,
    /// Interval between the liveness beacons each HIB originates
    /// (flooded fabric-wide by the switches). `None` disables
    /// heartbeats — and with them crash-stop failure detection.
    pub heartbeat_every: Option<SimTime>,
    /// Hard floor on how long a peer may be beacon-silent before the
    /// failure detector declares it down. The effective threshold is
    /// `max(peer_timeout, phi_factor * observed mean beacon gap)`.
    pub peer_timeout: SimTime,
    /// Multiplier on the observed mean beacon gap in the suspicion
    /// threshold (the simplified phi-accrual knob).
    pub phi_factor: u32,
}

impl Default for RelParams {
    fn default() -> Self {
        RelParams {
            retx_timeout: SimTime::from_us(10),
            max_retries: 16,
            backoff_cap: 8,
            resync_timeout: SimTime::from_us(40),
            mode: RetxMode::GoBackN,
            sack_window: 32,
            rto_min: SimTime::from_us(5),
            rto_max: SimTime::from_us(100),
            heartbeat_every: Some(SimTime::from_us(20)),
            peer_timeout: SimTime::from_us(100),
            phi_factor: 8,
        }
    }
}

impl RelParams {
    /// The default parameter set under the given retransmit mode.
    pub fn with_mode(mode: RetxMode) -> Self {
        RelParams {
            mode,
            ..RelParams::default()
        }
    }

    /// Overrides the SACK reorder-window size (frames; clamped to the
    /// 64-bit receipt bitmap by the receiver).
    pub fn with_sack_window(mut self, frames: u32) -> Self {
        self.sack_window = frames;
        self
    }

    /// Disables heartbeat origination (and with it failure detection) —
    /// the configuration the zero-fault overhead gate compares against.
    pub fn without_heartbeats(mut self) -> Self {
        self.heartbeat_every = None;
        self
    }

    /// Overrides the heartbeat interval.
    pub fn with_heartbeat_every(mut self, every: SimTime) -> Self {
        self.heartbeat_every = Some(every);
        self
    }
}

/// What the receiving link layer decided about one arrived frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxVerdict {
    /// In-order, intact: deliver to the input FIFO and send the
    /// cumulative ACK for `ack`. In SACK mode the arrival may have
    /// released buffered successors — drain [`LinkRx::take_ready`] into
    /// the FIFO after the frame itself; `ack` already covers them.
    Accept {
        /// Highest in-order sequence number received (covers any frames
        /// released from the reorder window by this arrival).
        ack: u64,
    },
    /// SACK mode: an intact out-of-order frame was parked in the reorder
    /// window (or was already there). Nothing enters the FIFO yet.
    Held {
        /// Highest in-order sequence number received.
        ack: u64,
        /// True when this arrival first exposed the gap at `ack + 1`:
        /// send a NACK for it (fast retransmit). Otherwise refresh the
        /// sender's view with an ACK carrying the grown bitmap.
        nack: bool,
        /// True when the frame was already parked (a spurious
        /// retransmit): it was discarded as a duplicate.
        dup: bool,
    },
    /// A duplicate of an already-accepted frame (a spurious retransmit):
    /// discard and re-send the cumulative ACK for `ack` so the sender's
    /// buffer drains.
    DupAck {
        /// Highest accepted sequence number.
        ack: u64,
    },
    /// Corrupt frame: discard and NACK asking for retransmission from
    /// `expected`.
    NackCorrupt {
        /// The sequence number expected next.
        expected: u64,
    },
    /// Sequence gap (an earlier frame was lost in flight): discard and
    /// NACK asking for retransmission from `expected`.
    NackGap {
        /// The sequence number expected next.
        expected: u64,
    },
    /// Sequence gap already NACKed: discard silently (suppresses NACK
    /// storms while a burst of in-flight frames drains).
    Discard,
}

/// Receive-side link-layer state for one input port: sequence
/// verification, checksum checking, NACK suppression, the SACK reorder
/// window, and the drain counter the credit-resync handshake reports.
#[derive(Clone, Debug)]
pub struct LinkRx {
    /// The retransmit discipline this receiver runs.
    mode: RetxMode,
    /// Reorder-window size in frames (SACK mode; ≤ 64 so the receipt
    /// bitmap covers the whole window).
    window: u64,
    /// Next in-order sequence number (frames are stamped from 1).
    expected: u64,
    /// Intact out-of-order frames parked until the gap fills (SACK
    /// mode). Keys are link sequence numbers in
    /// `expected + 1 .. expected + window`.
    buffer: BTreeMap<u64, Packet>,
    /// Frames released from the reorder window by the last in-order
    /// arrival, in sequence order, awaiting FIFO delivery.
    ready: Vec<Packet>,
    /// The gap we most recently NACKed; suppresses repeat NACKs for the
    /// same expected frame while in-flight traffic drains.
    nacked_for: Option<u64>,
    /// Total frames drained from the input FIFO on this link (monotone;
    /// reported by the credit-resync handshake).
    drained: u64,
    /// Frames discarded as corrupt.
    corrupt: u64,
    /// Frames discarded as duplicates.
    dups: u64,
    /// Frames discarded for a sequence gap.
    gaps: u64,
    /// Frames flushed by link-epoch resets (the sender abandoned them).
    reset_flushed: u64,
}

impl LinkRx {
    /// Fresh go-back-N state: expecting sequence 1.
    pub fn new() -> Self {
        LinkRx::with_mode(RetxMode::GoBackN, 0)
    }

    /// Fresh state under an explicit retransmit discipline. The SACK
    /// reorder window is clamped to the 64-frame bitmap.
    pub fn with_mode(mode: RetxMode, sack_window: u32) -> Self {
        LinkRx {
            mode,
            window: u64::from(sack_window.clamp(1, 64)),
            expected: 1,
            buffer: BTreeMap::new(),
            ready: Vec::new(),
            nacked_for: None,
            drained: 0,
            corrupt: 0,
            dups: 0,
            gaps: 0,
            reset_flushed: 0,
        }
    }

    /// Fresh state matching a parameter set.
    pub fn for_params(params: &RelParams) -> Self {
        LinkRx::with_mode(params.mode, params.sack_window)
    }

    /// Judges one arrived frame.
    pub fn accept(&mut self, packet: &Packet) -> RxVerdict {
        if !packet.checksum_ok() {
            self.corrupt += 1;
            // A corrupt frame's sequence number is untrustworthy; always
            // ask for retransmission from the expected frame.
            self.nacked_for = Some(self.expected);
            return RxVerdict::NackCorrupt {
                expected: self.expected,
            };
        }
        if packet.link_seq == self.expected {
            self.expected += 1;
            self.nacked_for = None;
            // The gap just closed; release any buffered successors in
            // sequence order.
            while let Some(p) = self.buffer.remove(&self.expected) {
                self.ready.push(p);
                self.expected += 1;
            }
            RxVerdict::Accept {
                ack: self.expected - 1,
            }
        } else if packet.link_seq < self.expected {
            self.dups += 1;
            RxVerdict::DupAck {
                ack: self.expected - 1,
            }
        } else if self.mode == RetxMode::Sack && packet.link_seq - self.expected < self.window {
            let ack = self.expected - 1;
            if self.buffer.contains_key(&packet.link_seq) {
                self.dups += 1;
                return RxVerdict::Held {
                    ack,
                    nack: false,
                    dup: true,
                };
            }
            self.buffer.insert(packet.link_seq, packet.clone());
            let nack = self.nacked_for != Some(self.expected);
            if nack {
                self.nacked_for = Some(self.expected);
            }
            RxVerdict::Held {
                ack,
                nack,
                dup: false,
            }
        } else {
            self.gaps += 1;
            if self.nacked_for == Some(self.expected) {
                RxVerdict::Discard
            } else {
                self.nacked_for = Some(self.expected);
                RxVerdict::NackGap {
                    expected: self.expected,
                }
            }
        }
    }

    /// Drains the frames released from the reorder window by the last
    /// in-order arrival, in sequence order.
    pub fn take_ready(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.ready)
    }

    /// The selective-ack bitmap relative to the cumulative ack: bit `i`
    /// set means frame `ack + 1 + i` is parked in the reorder window
    /// (bit 0 is always clear — `ack + 1` is the missing frame). Zero
    /// in go-back-N mode.
    pub fn sack_bits(&self) -> u64 {
        let mut bits = 0u64;
        for &seq in self.buffer.keys() {
            bits |= 1 << (seq - self.expected);
        }
        bits
    }

    /// Frames currently parked in the reorder window (must be zero at
    /// quiescence — a non-empty window means a gap never filled).
    pub fn reorder_depth(&self) -> usize {
        self.buffer.len()
    }

    /// Records one frame drained from the input FIFO (its credit is being
    /// returned upstream).
    pub fn on_drain(&mut self) {
        self.drained += 1;
    }

    /// Total frames drained on this link.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Frames discarded as corrupt so far.
    pub fn corrupt_discards(&self) -> u64 {
        self.corrupt
    }

    /// Frames discarded as duplicates or gaps so far.
    pub fn seq_discards(&self) -> u64 {
        self.dups + self.gaps
    }

    /// Frames that arrived beyond the reorder window (or in go-back-N
    /// mode, past the expected frame) and were NACKed back for
    /// retransmission rather than parked. A non-zero count under a small
    /// SACK window shows the overflow path ran — the frame was asked for
    /// again, never silently dropped.
    pub fn gap_discards(&self) -> u64 {
        self.gaps
    }

    /// Applies a link-epoch reset from the sender ([`CtrlMsg::Reset`]):
    /// reseats the expected sequence number at `next`, flushes any
    /// parked reorder frames and pending releases (the sender abandoned
    /// everything before `next`), clears NACK suppression, and zeroes
    /// the drain counter so post-reset credit resyncs account only the
    /// new epoch. Idempotent for repeated resets carrying the same
    /// `next`. Returns the number of frames flushed.
    ///
    /// [`CtrlMsg::Reset`]: tg_wire::CtrlMsg::Reset
    pub fn on_reset(&mut self, next: u64) -> usize {
        let flushed = self.buffer.len() + self.ready.len();
        self.buffer.clear();
        self.ready.clear();
        self.expected = next;
        self.nacked_for = None;
        self.drained = 0;
        self.reset_flushed += flushed as u64;
        flushed
    }

    /// Frames flushed by link-epoch resets so far (conservation-audit
    /// input: these frames were abandoned by the sender, not leaked).
    pub fn reset_flushes(&self) -> u64 {
        self.reset_flushed
    }
}

impl Default for LinkRx {
    fn default() -> Self {
        LinkRx::new()
    }
}

/// Credit bookkeeping of one transmit port, for quiescence-time
/// conservation checks: once all FIFOs have drained, every credit is
/// either in hand or riding an unacknowledged frame, so
/// `credits + unacked == allowance` must hold. A shortfall means a credit
/// leaked (lost in flight and never resynced); an excess means a duplicate
/// credit was minted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CreditLedger {
    /// The directed link this transmit port feeds.
    pub link: LinkId,
    /// Credits currently in hand.
    pub credits: u32,
    /// Frames awaiting acknowledgement (each holds one credit).
    pub unacked: usize,
    /// The initial credit allowance.
    pub allowance: u32,
}

impl CreditLedger {
    /// True when every credit is accounted for.
    pub fn balanced(&self) -> bool {
        u64::from(self.credits) + self.unacked as u64 == u64::from(self.allowance)
    }
}

impl fmt::Display for CreditLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} in hand + {} unacked != allowance {}",
            self.link, self.credits, self.unacked, self.allowance
        )
    }
}

/// A structured no-progress diagnosis: which link or queue is holding the
/// fabric, assembled by the cluster when the engine watchdog trips.
#[derive(Clone, Debug)]
pub struct StalledLink {
    /// The stalled directed link.
    pub link: LinkId,
    /// Whether the link has been declared dead (retry budget exhausted).
    pub dead: bool,
    /// Frames stranded in the retransmit buffer.
    pub stranded: usize,
    /// Credits in hand at the transmit port.
    pub credits: u32,
    /// Retransmissions attempted on this link.
    pub retransmits: u64,
    /// Consecutive unanswered (re)transmissions of the oldest frame.
    pub attempts: u32,
    /// Whether the ack-starvation watchdog considers the link starved
    /// (half the retry budget burned with no ack progress).
    pub starved: bool,
}

impl fmt::Display for StalledLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}, {} stranded, {} credits, {} retransmits ({} unanswered)",
            self.link,
            if self.dead {
                "DEAD"
            } else if self.starved {
                "ack-starved"
            } else {
                "stalled"
            },
            self.stranded,
            self.credits,
            self.retransmits,
            self.attempts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::{NodeId, WireMsg};

    fn frame(seq: u64) -> Packet {
        let mut p = Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            WireMsg::WriteAck { tag: 0 },
            seq,
        );
        p.link_seq = seq;
        p.seal();
        p
    }

    #[test]
    fn in_order_frames_are_accepted_and_acked() {
        let mut rx = LinkRx::new();
        for seq in 1..=5 {
            assert_eq!(rx.accept(&frame(seq)), RxVerdict::Accept { ack: seq });
        }
        assert_eq!(rx.seq_discards(), 0);
    }

    #[test]
    fn gap_nacks_once_then_discards_silently() {
        let mut rx = LinkRx::new();
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        // Frame 2 was lost; 3, 4, 5 arrive.
        assert_eq!(rx.accept(&frame(3)), RxVerdict::NackGap { expected: 2 });
        assert_eq!(rx.accept(&frame(4)), RxVerdict::Discard);
        assert_eq!(rx.accept(&frame(5)), RxVerdict::Discard);
        // The go-back-N retransmission arrives in order.
        assert_eq!(rx.accept(&frame(2)), RxVerdict::Accept { ack: 2 });
        assert_eq!(rx.accept(&frame(3)), RxVerdict::Accept { ack: 3 });
    }

    #[test]
    fn duplicates_are_reacked_cumulatively() {
        let mut rx = LinkRx::new();
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        assert_eq!(rx.accept(&frame(2)), RxVerdict::Accept { ack: 2 });
        assert_eq!(rx.accept(&frame(1)), RxVerdict::DupAck { ack: 2 });
        assert_eq!(rx.seq_discards(), 1);
    }

    #[test]
    fn corrupt_frames_are_nacked() {
        let mut rx = LinkRx::new();
        let mut bad = frame(1);
        bad.checksum ^= 0x10;
        assert_eq!(rx.accept(&bad), RxVerdict::NackCorrupt { expected: 1 });
        assert_eq!(rx.corrupt_discards(), 1);
        // The clean retransmission is accepted.
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
    }

    #[test]
    fn drain_counter_is_monotone() {
        let mut rx = LinkRx::new();
        rx.on_drain();
        rx.on_drain();
        assert_eq!(rx.drained(), 2);
    }

    #[test]
    fn sack_parks_out_of_order_frames_and_releases_in_sequence() {
        let mut rx = LinkRx::with_mode(RetxMode::Sack, 32);
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        // Frame 2 lost; 3, 4, 5 arrive intact out of order.
        assert_eq!(
            rx.accept(&frame(3)),
            RxVerdict::Held {
                ack: 1,
                nack: true,
                dup: false
            }
        );
        assert_eq!(
            rx.accept(&frame(4)),
            RxVerdict::Held {
                ack: 1,
                nack: false,
                dup: false
            }
        );
        assert_eq!(
            rx.accept(&frame(5)),
            RxVerdict::Held {
                ack: 1,
                nack: false,
                dup: false
            }
        );
        // Bit i relative to ack=1: frames 3,4,5 are bits 1,2,3.
        assert_eq!(rx.sack_bits(), 0b1110);
        assert_eq!(rx.reorder_depth(), 3);
        assert_eq!(rx.seq_discards(), 0, "parked frames are not discards");
        // The selective retransmission of 2 releases the whole window.
        assert_eq!(rx.accept(&frame(2)), RxVerdict::Accept { ack: 5 });
        let released: Vec<u64> = rx.take_ready().iter().map(|p| p.link_seq).collect();
        assert_eq!(released, vec![3, 4, 5]);
        assert_eq!(rx.sack_bits(), 0);
        assert_eq!(rx.reorder_depth(), 0);
    }

    #[test]
    fn sack_window_overflow_nacks_instead_of_parking() {
        // Regression: a frame landing beyond the configured reorder
        // window must be NACKed back for retransmission, never parked
        // past the bitmap or silently dropped.
        let mut rx = LinkRx::with_mode(RetxMode::Sack, 2);
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        // Expected is 2; frame 3 sits one slot ahead — inside the
        // 2-frame window — and parks.
        assert_eq!(
            rx.accept(&frame(3)),
            RxVerdict::Held {
                ack: 1,
                nack: true,
                dup: false
            }
        );
        // Frame 4 would need slot expected+2: past the window. The NACK
        // for 2 is already outstanding, so it discards (counted), and a
        // later overflow after the gap closes raises a fresh NACK.
        assert_eq!(rx.accept(&frame(4)), RxVerdict::Discard);
        assert_eq!(rx.gap_discards(), 1, "overflow counted as a gap");
        assert_eq!(rx.reorder_depth(), 1, "overflow frame was not parked");
        // Retransmitted 2 closes the gap and releases 3.
        assert_eq!(rx.accept(&frame(2)), RxVerdict::Accept { ack: 3 });
        assert_eq!(
            rx.take_ready()
                .iter()
                .map(|p| p.link_seq)
                .collect::<Vec<_>>(),
            vec![3]
        );
        // Now expected is 4; an overflow with no outstanding NACK must
        // speak up, not stay silent.
        assert_eq!(rx.accept(&frame(6)), RxVerdict::NackGap { expected: 4 });
        assert_eq!(rx.gap_discards(), 2);
    }

    #[test]
    fn sack_duplicate_parked_frame_is_discarded() {
        let mut rx = LinkRx::with_mode(RetxMode::Sack, 32);
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        assert_eq!(
            rx.accept(&frame(3)),
            RxVerdict::Held {
                ack: 1,
                nack: true,
                dup: false
            }
        );
        assert_eq!(
            rx.accept(&frame(3)),
            RxVerdict::Held {
                ack: 1,
                nack: false,
                dup: true
            }
        );
        assert_eq!(rx.seq_discards(), 1);
    }

    #[test]
    fn reset_reseats_the_epoch_and_flushes_the_window() {
        let mut rx = LinkRx::with_mode(RetxMode::Sack, 32);
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        rx.on_drain();
        // Frame 2 lost, 3 and 4 parked; then the sender declares a new
        // epoch starting at 10 (it abandoned 2..=4 after a crash).
        rx.accept(&frame(3));
        rx.accept(&frame(4));
        assert_eq!(rx.on_reset(10), 2);
        assert_eq!(rx.reorder_depth(), 0);
        assert_eq!(rx.drained(), 0, "drain counter restarts with the epoch");
        assert_eq!(rx.reset_flushes(), 2);
        // Pre-epoch retransmits are dups; the new epoch flows in order.
        assert_eq!(rx.accept(&frame(2)), RxVerdict::DupAck { ack: 9 });
        assert_eq!(rx.accept(&frame(10)), RxVerdict::Accept { ack: 10 });
        // Idempotent re-application.
        assert_eq!(rx.on_reset(10), 0);
        assert_eq!(rx.accept(&frame(10)), RxVerdict::Accept { ack: 10 });
    }

    #[test]
    fn sack_frames_beyond_the_window_fall_back_to_gap_nacks() {
        let mut rx = LinkRx::with_mode(RetxMode::Sack, 4);
        assert_eq!(rx.accept(&frame(1)), RxVerdict::Accept { ack: 1 });
        // Window covers offsets 1..4 from expected=2: seq 3..=5 park.
        assert_eq!(
            rx.accept(&frame(5)),
            RxVerdict::Held {
                ack: 1,
                nack: true,
                dup: false
            }
        );
        // Offset 4 is outside: classic gap handling, already nacked.
        assert_eq!(rx.accept(&frame(6)), RxVerdict::Discard);
        assert_eq!(rx.seq_discards(), 1);
    }
}
