//! Reusable port state machines: credited transmit ports and receive FIFOs.
//!
//! Both the switches in this crate and the Host Interface Board in `tg-hib`
//! drive one link end; the flow-control bookkeeping is identical, so it
//! lives here.

use std::collections::VecDeque;

use tg_sim::{CompId, SimTime};
use tg_wire::{Packet, TimingConfig};

/// Delays produced by launching a packet on a [`TxPort`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxTimes {
    /// When the packet fully arrives at the neighbor's input port
    /// (serialization + propagation), relative to launch.
    pub arrival: SimTime,
    /// When this output port becomes free again (serialization done),
    /// relative to launch.
    pub free: SimTime,
}

/// One credited transmit port: the sending end of a unidirectional link.
///
/// The owner may launch a packet only when the port is [`ready`]: the wire
/// is idle and the neighbor's input FIFO granted a credit. Launching yields
/// the two delays the owner must schedule ([`TxTimes`]); the neighbor
/// returns credits as it drains its FIFO.
///
/// [`ready`]: TxPort::ready
#[derive(Clone, Debug)]
pub struct TxPort {
    neighbor: CompId,
    neighbor_port: u32,
    credits: u32,
    /// The initial grant (= the downstream FIFO capacity). Credits in hand
    /// can never legitimately exceed it.
    allowance: u32,
    busy: bool,
    /// When the port first deferred a launch for want of credit; open
    /// window of the current stall.
    stall_since: Option<SimTime>,
    /// Accumulated simulated time spent with traffic pending but zero
    /// credits in hand (back-pressure from the downstream FIFO).
    credit_stall: SimTime,
}

impl TxPort {
    /// Creates a transmit port toward `neighbor`'s input `neighbor_port`
    /// with an initial credit allowance (= the neighbor FIFO capacity).
    pub fn new(neighbor: CompId, neighbor_port: u32, credits: u32) -> Self {
        TxPort {
            neighbor,
            neighbor_port,
            credits,
            allowance: credits,
            busy: false,
            stall_since: None,
            credit_stall: SimTime::ZERO,
        }
    }

    /// The component at the far end of the link.
    pub fn neighbor(&self) -> CompId {
        self.neighbor
    }

    /// The input-port index this link feeds on the neighbor.
    pub fn neighbor_port(&self) -> u32 {
        self.neighbor_port
    }

    /// Credits currently available.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// True when a packet may be launched now.
    pub fn ready(&self) -> bool {
        !self.busy && self.credits > 0
    }

    /// Consumes a credit and occupies the wire for `packet`.
    ///
    /// # Panics
    ///
    /// Panics if the port is not [`ready`](TxPort::ready) — callers gate on
    /// readiness; launching early would violate flow control.
    pub fn launch(&mut self, packet: &Packet, timing: &TimingConfig) -> TxTimes {
        assert!(self.ready(), "launch on a busy or credit-less port");
        self.credits -= 1;
        self.busy = true;
        let ser = timing.serialize(packet.size_bytes());
        TxTimes {
            arrival: ser + timing.link_prop,
            free: ser,
        }
    }

    /// Records a returned credit.
    ///
    /// # Panics
    ///
    /// Panics if credits would exceed the initial allowance: a duplicated
    /// credit should fail here, at the source, rather than as a distant
    /// "input FIFO overflow" panic downstream.
    pub fn on_credit(&mut self) {
        assert!(
            self.credits < self.allowance,
            "credit return exceeds the initial allowance of {}",
            self.allowance
        );
        self.credits += 1;
    }

    /// Records a returned credit at simulated time `now`, closing any open
    /// credit-stall window (see [`TxPort::note_blocked`]).
    ///
    /// # Panics
    ///
    /// Panics like [`TxPort::on_credit`] on a duplicated credit.
    pub fn on_credit_at(&mut self, now: SimTime) {
        if let Some(since) = self.stall_since.take() {
            self.credit_stall += now.saturating_sub(since);
        }
        self.on_credit();
    }

    /// Notes that the owner had traffic for this port at `now` but could
    /// not launch because no credit was in hand. Opens the stall window
    /// that [`TxPort::on_credit_at`] closes; repeated calls while already
    /// stalled keep the original window start.
    pub fn note_blocked(&mut self, now: SimTime) {
        if self.credits == 0 && self.stall_since.is_none() {
            self.stall_since = Some(now);
        }
    }

    /// Total simulated time this port spent blocked on credits (closed
    /// windows only; an ongoing stall counts once a credit returns).
    pub fn credit_stall(&self) -> SimTime {
        self.credit_stall
    }

    /// Marks serialization finished (the scheduled `free` delay elapsed).
    pub fn on_free(&mut self) {
        self.busy = false;
    }
}

/// A bounded input FIFO whose occupancy is mirrored by the credits held at
/// the upstream [`TxPort`].
#[derive(Clone, Debug)]
pub struct RxFifo {
    queue: VecDeque<Packet>,
    capacity: u32,
    high_water: u32,
}

impl RxFifo {
    /// Creates a FIFO holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        RxFifo {
            queue: VecDeque::new(),
            capacity,
            high_water: 0,
        }
    }

    /// Accepts an arriving packet.
    ///
    /// # Panics
    ///
    /// Panics on overflow — the upstream credit discipline makes overflow a
    /// protocol bug, not an operational condition.
    pub fn push(&mut self, packet: Packet) {
        assert!(
            (self.queue.len() as u32) < self.capacity,
            "input FIFO overflow: credit protocol violated"
        );
        self.queue.push_back(packet);
        self.high_water = self.high_water.max(self.queue.len() as u32);
    }

    /// The packet at the head, if any.
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Removes and returns the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.queue.pop_front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Capacity in packets.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Deepest occupancy observed (for congestion reporting).
    pub fn high_water(&self) -> u32 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::{GOffset, NodeId, WireMsg};

    fn dummy_comp_id() -> CompId {
        // CompId construction is private to tg-sim; engines assign them.
        // For port unit tests we only need *a* value, so take one from a
        // throwaway engine.
        struct Noop;
        impl tg_sim::Component<u32> for Noop {
            fn on_event(&mut self, _: u32, _: &mut tg_sim::Ctx<'_, u32>) {}
            fn name(&self) -> &str {
                "noop"
            }
        }
        let mut eng: tg_sim::Engine<u32> = tg_sim::Engine::new();
        eng.add(Noop)
    }

    fn pkt() -> Packet {
        Packet {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            msg: WireMsg::WriteAck,
            inject_seq: 0,
        }
    }

    #[test]
    fn txport_credit_cycle() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 2, 1);
        assert!(tx.ready());
        let times = tx.launch(&pkt(), &timing);
        assert!(times.arrival > times.free);
        assert!(!tx.ready());
        tx.on_free();
        assert!(!tx.ready(), "still out of credits");
        tx.on_credit();
        assert!(tx.ready());
    }

    #[test]
    #[should_panic(expected = "exceeds the initial allowance")]
    fn txport_rejects_duplicated_credit() {
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        tx.on_credit();
    }

    #[test]
    #[should_panic(expected = "busy or credit-less")]
    fn txport_rejects_early_launch() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 1);
        let _ = tx.launch(&pkt(), &timing);
        let _ = tx.launch(&pkt(), &timing);
    }

    #[test]
    fn txport_serialization_scales_with_size() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        let small = tx.launch(&pkt(), &timing);
        tx.on_free();
        let big_pkt = Packet {
            msg: WireMsg::CopyData {
                tag: 0,
                index: 0,
                vals: vec![0; 64],
                last: true,
            },
            ..pkt()
        };
        let big = tx.launch(&big_pkt, &timing);
        assert!(big.free > small.free);
    }

    #[test]
    fn txport_accumulates_credit_stall_time() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 1);
        let _ = tx.launch(&pkt(), &timing);
        tx.on_free();
        // Blocked from 100ns until the credit lands at 250ns.
        tx.note_blocked(SimTime::from_ns(100));
        tx.note_blocked(SimTime::from_ns(180)); // keeps the original start
        assert_eq!(tx.credit_stall(), SimTime::ZERO, "window still open");
        tx.on_credit_at(SimTime::from_ns(250));
        assert_eq!(tx.credit_stall(), SimTime::from_ns(150));
        // With a credit in hand, note_blocked is a no-op.
        tx.note_blocked(SimTime::from_ns(300));
        tx.on_free();
        let _ = tx.launch(&pkt(), &timing);
        tx.on_free();
        tx.on_credit_at(SimTime::from_ns(400));
        assert_eq!(tx.credit_stall(), SimTime::from_ns(150), "no phantom stall");
    }

    #[test]
    fn rxfifo_orders_and_counts() {
        let mut fifo = RxFifo::new(3);
        for i in 0..3u64 {
            fifo.push(Packet {
                msg: WireMsg::WriteReq {
                    addr: GOffset::new(i * 8),
                    val: i,
                },
                ..pkt()
            });
        }
        assert_eq!(fifo.len(), 3);
        assert_eq!(fifo.high_water(), 3);
        let first = fifo.pop().unwrap();
        match first.msg {
            WireMsg::WriteReq { val, .. } => assert_eq!(val, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(fifo.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn rxfifo_overflow_is_a_bug() {
        let mut fifo = RxFifo::new(1);
        fifo.push(pkt());
        fifo.push(pkt());
    }
}
