//! Reusable port state machines: credited transmit ports and receive FIFOs.
//!
//! Both the switches in this crate and the Host Interface Board in `tg-hib`
//! drive one link end; the flow-control bookkeeping is identical, so it
//! lives here. With [`TxPort::enable_reliability`] the transmit port also
//! runs the sender half of the link-level reliability protocol: frames are
//! stamped with per-link sequence numbers, buffered until cumulatively
//! acknowledged, retransmitted on NACK or timeout with bounded exponential
//! backoff (go-back-N, or selectively under [`RetxMode::Sack`] where
//! bitmap-acknowledged frames are skipped), and the port can resynchronize
//! its credit count with the receiver when credits were lost in flight.
//! The retransmit timeout adapts per link: ack round-trips feed a
//! Jacobson-style smoothed RTT + variance estimator (`rto = srtt +
//! 4·rttvar`, clamped to `rto_min..=rto_max`), with Karn's rule excluding
//! retransmitted frames from sampling.

use std::collections::VecDeque;

use tg_sim::{CompId, SimTime};
use tg_wire::{Packet, TimingConfig};

use crate::fault::LinkId;
use crate::link::{LinkError, RelParams};

/// Delays produced by launching a packet on a [`TxPort`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxTimes {
    /// When the packet fully arrives at the neighbor's input port
    /// (serialization + propagation), relative to launch.
    pub arrival: SimTime,
    /// When this output port becomes free again (serialization done),
    /// relative to launch.
    pub free: SimTime,
}

/// What the owner of a reliable [`TxPort`] must do after a timer or NACK
/// event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TimerAction {
    /// Stale or superseded event; nothing to do.
    Stale,
    /// Timer fired with nothing pending; nothing to do.
    Idle,
    /// Go-back-N retransmission requested: pump the port, draining
    /// [`TxPort::take_retx`] as the wire frees up.
    Retransmit,
    /// Credit-starved with an empty retransmit buffer: send a
    /// `CreditSyncReq` carrying this token to the neighbor.
    Resync {
        /// Handshake token the reply must echo.
        token: u64,
    },
    /// The retransmit budget is exhausted; the link is now dead.
    Dead(LinkError),
}

/// Which condition armed the pending recovery timer (a retransmit window
/// and a credit-resync probe have very different timeouts, so a timer
/// armed for one must not act for the other).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ArmKind {
    Retx,
    Resync,
}

/// One buffered frame awaiting acknowledgement.
#[derive(Clone, Debug)]
struct FrameSlot {
    packet: Packet,
    /// When the frame was last freshly framed; `None` once retransmitted
    /// (Karn's rule: a retransmitted frame's ack is ambiguous, so it
    /// must not feed the RTT estimator).
    sent_at: Option<SimTime>,
    /// Selectively acknowledged via an ack bitmap (SACK mode): the
    /// receiver holds it in its reorder window, so retransmission would
    /// be pure waste. Stays buffered until cumulatively acknowledged.
    sacked: bool,
}

/// Sender half of the link-level reliability protocol (see
/// [`crate::link`]). Boxed inside [`TxPort`] so the unreliable fast path
/// stays untouched.
#[derive(Clone, Debug)]
struct RelTx {
    params: RelParams,
    /// Link sequence number the next fresh frame is stamped with.
    next_seq: u64,
    /// Lowest unacknowledged sequence number (`base - 1` frames have been
    /// delivered and acknowledged).
    base: u64,
    /// Unacknowledged frames, in sequence order, kept for retransmission.
    buf: VecDeque<FrameSlot>,
    /// Index into `buf` of the next frame to (re)send; `cursor ==
    /// buf.len()` means all buffered frames are on the wire.
    cursor: usize,
    /// Consecutive recovery attempts for the current base frame.
    attempts: u32,
    /// Current backoff multiplier on the retransmit timeout.
    backoff: u32,
    /// Generation counter distinguishing live timers from stale ones.
    timer_gen: u64,
    timer_armed: bool,
    armed_kind: ArmKind,
    /// Absolute due time of the armed recovery timer. Acknowledgement
    /// progress *slides* this forward instead of cancelling and re-arming
    /// the timer event (one pending event per recovery window, not one
    /// per ack): an early-firing timer sees `now < deadline` and is
    /// simply re-armed for the remainder.
    deadline: SimTime,
    dead: bool,
    retransmits: u64,
    /// Wire bytes of retransmitted frames (the waste a smarter
    /// retransmit discipline avoids).
    retx_bytes: u64,
    /// Smoothed round-trip time in picoseconds (Jacobson), once the
    /// first ack round-trip is sampled.
    srtt: Option<u64>,
    /// Smoothed RTT variance in picoseconds.
    rttvar: u64,
    /// Current adaptive retransmission timeout (starts at
    /// `params.retx_timeout`, then `srtt + 4·rttvar` clamped to
    /// `rto_min..=rto_max`).
    rto: SimTime,
    resync_token: u64,
    resync_outstanding: Option<u64>,
    resyncs: u64,
    resync_probes: u64,
    /// Consecutive resync probes with neither a reply nor a returned
    /// credit in between. A neighbor that answers nothing for a full
    /// retry budget of probes is as dead as one that never acks a frame.
    probe_streak: u32,
    /// Frames abandoned by link-epoch resets: buffered but never
    /// delivered when the peer was declared dead. They leave the
    /// conservation books through this counter, not silently.
    abandoned: u64,
    /// Wire bytes of abandoned frames.
    abandoned_bytes: u64,
    /// Cumulative acks consumed by pre-reset epochs: `base - 1 -
    /// acked_offset` is the ack count *within the current epoch*, which
    /// is what the credit-resync math must compare against the
    /// receiver's (epoch-zeroed) drain counter.
    acked_offset: u64,
    /// Link-epoch resets performed (peer revivals).
    revivals: u64,
}

impl RelTx {
    /// True while any buffered frame still needs (re)transmission —
    /// sacked frames are parked at the receiver and are skipped.
    fn retx_pending(&self) -> bool {
        self.buf.iter().skip(self.cursor).any(|s| !s.sacked)
    }

    /// Feeds one ack round-trip into the Jacobson estimator and refreshes
    /// the clamped RTO.
    fn sample_rtt(&mut self, rtt: SimTime) {
        let rtt = rtt.as_ps().max(1);
        let (srtt, rttvar) = match self.srtt {
            None => (rtt, rtt / 2),
            Some(s) => {
                let err = s.abs_diff(rtt);
                ((7 * s + rtt) / 8, (3 * self.rttvar + err) / 4)
            }
        };
        self.srtt = Some(srtt);
        self.rttvar = rttvar;
        let raw = srtt.saturating_add(4 * rttvar);
        self.rto =
            SimTime::from_ps(raw.clamp(self.params.rto_min.as_ps(), self.params.rto_max.as_ps()));
    }

    /// The credit-resync probe interval: derived from the adaptive RTO
    /// (four round-trip timeouts of silence is plenty), capped by the
    /// configured ceiling. Before any RTT sample exists this equals
    /// `min(resync_timeout, 4 · retx_timeout)`.
    fn resync_interval(&self) -> SimTime {
        let derived = self.rto * 4;
        if derived < self.params.resync_timeout {
            derived
        } else {
            self.params.resync_timeout
        }
    }
}

/// One credited transmit port: the sending end of a unidirectional link.
///
/// The owner may launch a packet only when the port is [`ready`]: the wire
/// is idle and the neighbor's input FIFO granted a credit. Launching yields
/// the two delays the owner must schedule ([`TxTimes`]); the neighbor
/// returns credits as it drains its FIFO.
///
/// [`ready`]: TxPort::ready
#[derive(Clone, Debug)]
pub struct TxPort {
    neighbor: CompId,
    neighbor_port: u32,
    credits: u32,
    /// The initial grant (= the downstream FIFO capacity). Credits in hand
    /// can never legitimately exceed it.
    allowance: u32,
    busy: bool,
    /// When the port first deferred a launch for want of credit; open
    /// window of the current stall.
    stall_since: Option<SimTime>,
    /// Accumulated simulated time spent with traffic pending but zero
    /// credits in hand (back-pressure from the downstream FIFO).
    credit_stall: SimTime,
    /// The directed link this port drives, for fault lookup and reporting.
    link: Option<LinkId>,
    /// Frames launched on this port (fresh launches; retransmissions are
    /// counted separately by the reliability layer).
    tx_packets: u64,
    /// Wire bytes of those frames.
    tx_bytes: u64,
    /// Credits from pre-reset epochs that may still straggle home after
    /// a link revival; while positive, credits arriving at a full
    /// allowance are swallowed (counted) instead of reported as
    /// duplicate-credit protocol violations.
    stale_credit_grace: u32,
    /// Stale pre-epoch credits swallowed after revivals.
    stale_credits: u64,
    rel: Option<Box<RelTx>>,
}

impl TxPort {
    /// Creates a transmit port toward `neighbor`'s input `neighbor_port`
    /// with an initial credit allowance (= the neighbor FIFO capacity).
    pub fn new(neighbor: CompId, neighbor_port: u32, credits: u32) -> Self {
        TxPort {
            neighbor,
            neighbor_port,
            credits,
            allowance: credits,
            busy: false,
            stall_since: None,
            credit_stall: SimTime::ZERO,
            link: None,
            tx_packets: 0,
            tx_bytes: 0,
            stale_credit_grace: 0,
            stale_credits: 0,
            rel: None,
        }
    }

    /// The component at the far end of the link.
    pub fn neighbor(&self) -> CompId {
        self.neighbor
    }

    /// The input-port index this link feeds on the neighbor.
    pub fn neighbor_port(&self) -> u32 {
        self.neighbor_port
    }

    /// Credits currently available.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// The initial credit allowance.
    pub fn allowance(&self) -> u32 {
        self.allowance
    }

    /// Labels the directed link this port drives (for fault-plan lookup and
    /// diagnostics).
    pub fn set_link(&mut self, link: LinkId) {
        self.link = Some(link);
    }

    /// The directed link this port drives, if labeled.
    pub fn link(&self) -> Option<LinkId> {
        self.link
    }

    /// Turns on the sender half of the link-level reliability protocol.
    pub fn enable_reliability(&mut self, params: RelParams) {
        self.rel = Some(Box::new(RelTx {
            params,
            next_seq: 1,
            base: 1,
            buf: VecDeque::new(),
            cursor: 0,
            attempts: 0,
            backoff: 1,
            timer_gen: 0,
            timer_armed: false,
            armed_kind: ArmKind::Retx,
            deadline: SimTime::ZERO,
            dead: false,
            retransmits: 0,
            retx_bytes: 0,
            srtt: None,
            rttvar: 0,
            rto: params.retx_timeout,
            resync_token: 0,
            resync_outstanding: None,
            resyncs: 0,
            resync_probes: 0,
            probe_streak: 0,
            abandoned: 0,
            abandoned_bytes: 0,
            acked_offset: 0,
            revivals: 0,
        }));
    }

    /// True when the reliability protocol is active on this port.
    pub fn is_reliable(&self) -> bool {
        self.rel.is_some()
    }

    /// The reliability parameter set this port was enrolled with, when
    /// the protocol is active. Endpoints use it to run a matching
    /// receiver ([`LinkRx::for_params`](crate::LinkRx::for_params)) on
    /// their input link.
    pub fn rel_params(&self) -> Option<RelParams> {
        self.rel.as_ref().map(|r| r.params)
    }

    /// True when a packet may be launched now.
    pub fn ready(&self) -> bool {
        !self.busy && self.credits > 0
    }

    /// True when the wire is idle (retransmissions need only this, not a
    /// credit).
    pub fn wire_free(&self) -> bool {
        !self.busy
    }

    /// True while a credit-stall window is open (traffic pending, zero
    /// credits in hand).
    pub fn is_credit_stalled(&self) -> bool {
        self.stall_since.is_some()
    }

    /// True when a *fresh* frame may be launched now: the port is
    /// [`ready`](TxPort::ready) and (if reliable) not dead, with no
    /// retransmission in progress — go-back-N recovery outranks new
    /// traffic.
    pub fn can_send_new(&self) -> bool {
        self.ready()
            && match &self.rel {
                None => true,
                Some(r) => !r.dead && !r.retx_pending(),
            }
    }

    /// Stamps the next link sequence number on `packet`, seals its
    /// checksum, and retains a copy for retransmission. Call immediately
    /// before [`launch`](TxPort::launch) when reliability is on. The
    /// first frame into an empty buffer starts a fresh recovery deadline
    /// from `now` (a timer event still pending from an earlier window
    /// must not time this frame out early).
    ///
    /// # Panics
    ///
    /// Panics if reliability is not enabled or a retransmission is in
    /// progress (callers gate on [`can_send_new`](TxPort::can_send_new)).
    pub fn frame(&mut self, mut packet: Packet, now: SimTime) -> Packet {
        let rel = self.rel.as_mut().expect("frame() requires reliability");
        assert!(
            !rel.dead && !rel.retx_pending(),
            "frame() while retransmitting or dead"
        );
        packet.link_seq = rel.next_seq;
        rel.next_seq += 1;
        packet.seal();
        if rel.buf.is_empty() {
            rel.deadline = now + rel.rto;
            // A pending slow resync probe must not stand in for this
            // frame's (much shorter) retransmit window: invalidate it and
            // let the pump re-arm a retransmit timer.
            if rel.timer_armed && rel.armed_kind == ArmKind::Resync {
                rel.timer_gen += 1;
                rel.timer_armed = false;
            }
        }
        rel.buf.push_back(FrameSlot {
            packet: packet.clone(),
            sent_at: Some(now),
            sacked: false,
        });
        rel.cursor = rel.buf.len();
        packet
    }

    /// True when buffered frames await (re)transmission (sacked frames
    /// are parked at the receiver and never resent).
    pub fn has_retx_pending(&self) -> bool {
        self.rel
            .as_ref()
            .is_some_and(|r| !r.dead && r.retx_pending())
    }

    /// Takes the next frame to retransmit, advancing the resend cursor
    /// past selectively-acknowledged frames. Retransmitted frames are
    /// excluded from RTT sampling (Karn's rule).
    pub fn take_retx(&mut self) -> Option<Packet> {
        let rel = self.rel.as_mut()?;
        if rel.dead {
            return None;
        }
        while rel.cursor < rel.buf.len() && rel.buf[rel.cursor].sacked {
            rel.cursor += 1;
        }
        if rel.cursor >= rel.buf.len() {
            return None;
        }
        let slot = &mut rel.buf[rel.cursor];
        slot.sent_at = None;
        let p = slot.packet.clone();
        rel.cursor += 1;
        rel.retransmits += 1;
        rel.retx_bytes += u64::from(p.size_bytes());
        Some(p)
    }

    /// Consumes a credit and occupies the wire for `packet`.
    ///
    /// # Panics
    ///
    /// Panics if the port is not [`ready`](TxPort::ready) — callers gate on
    /// readiness; launching early would violate flow control.
    pub fn launch(&mut self, packet: &Packet, timing: &TimingConfig) -> TxTimes {
        assert!(self.ready(), "launch on a busy or credit-less port");
        self.credits -= 1;
        self.busy = true;
        self.tx_packets += 1;
        self.tx_bytes += u64::from(packet.size_bytes());
        let ser = timing.serialize(packet.size_bytes());
        TxTimes {
            arrival: ser + timing.link_prop,
            free: ser,
        }
    }

    /// Occupies the wire for a retransmitted frame *without* consuming a
    /// credit: the original launch already reserved the receiver's FIFO
    /// slot, and that reservation survives the loss of the copy in flight.
    ///
    /// # Panics
    ///
    /// Panics if the wire is busy.
    pub fn relaunch(&mut self, packet: &Packet, timing: &TimingConfig) -> TxTimes {
        assert!(!self.busy, "relaunch on a busy wire");
        self.busy = true;
        self.tx_packets += 1;
        self.tx_bytes += u64::from(packet.size_bytes());
        let ser = timing.serialize(packet.size_bytes());
        TxTimes {
            arrival: ser + timing.link_prop,
            free: ser,
        }
    }

    /// Records a returned credit.
    ///
    /// # Errors
    ///
    /// [`LinkError::DuplicateCredit`] if credits would exceed the initial
    /// allowance: a duplicated credit is a neighbor-originated protocol
    /// violation and must degrade the link, not wedge the cluster.
    pub fn on_credit(&mut self) -> Result<(), LinkError> {
        if self.credits >= self.allowance {
            if self.stale_credit_grace > 0 {
                // A pre-reset-epoch credit straggling home after a link
                // revival restored the full allowance: swallow it within
                // the grace budget instead of declaring a violation.
                self.stale_credit_grace -= 1;
                self.stale_credits += 1;
                return Ok(());
            }
            return Err(LinkError::DuplicateCredit {
                allowance: self.allowance,
            });
        }
        self.credits += 1;
        if let Some(rel) = self.rel.as_mut() {
            rel.probe_streak = 0;
        }
        Ok(())
    }

    /// Records a returned credit at simulated time `now`, closing any open
    /// credit-stall window (see [`TxPort::note_blocked`]).
    ///
    /// # Errors
    ///
    /// Like [`TxPort::on_credit`] on a duplicated credit (the stall window
    /// stays open: no usable credit arrived).
    pub fn on_credit_at(&mut self, now: SimTime) -> Result<(), LinkError> {
        if self.credits >= self.allowance {
            if self.stale_credit_grace > 0 {
                self.stale_credit_grace -= 1;
                self.stale_credits += 1;
                return Ok(());
            }
            return Err(LinkError::DuplicateCredit {
                allowance: self.allowance,
            });
        }
        if let Some(since) = self.stall_since.take() {
            self.credit_stall += now.saturating_sub(since);
        }
        self.credits += 1;
        if let Some(rel) = self.rel.as_mut() {
            rel.probe_streak = 0;
        }
        Ok(())
    }

    /// Notes that the owner had traffic for this port at `now` but could
    /// not launch because no credit was in hand. Opens the stall window
    /// that [`TxPort::on_credit_at`] closes; repeated calls while already
    /// stalled keep the original window start. Returns `true` exactly when
    /// a *new* window opened (so the caller can emit one
    /// [`Stage::CreditStall`](tg_wire::Stage::CreditStall) trace event
    /// per window, not per pump).
    pub fn note_blocked(&mut self, now: SimTime) -> bool {
        if self.credits == 0 && self.stall_since.is_none() {
            self.stall_since = Some(now);
            return true;
        }
        false
    }

    /// Total simulated time this port spent blocked on credits (closed
    /// windows only; an ongoing stall counts once a credit returns).
    pub fn credit_stall(&self) -> SimTime {
        self.credit_stall
    }

    /// Marks serialization finished (the scheduled `free` delay elapsed).
    pub fn on_free(&mut self) {
        self.busy = false;
    }

    /// Applies a cumulative acknowledgement through `seq` with a
    /// selective-ack bitmap (`sack` bit `i` set means frame `seq + 1 + i`
    /// is parked in the receiver's reorder window; always zero in
    /// go-back-N mode) at simulated time `now`, dropping acknowledged
    /// frames from the retransmit buffer. The newest freshly-transmitted
    /// frame the ack covers feeds the RTT estimator (Karn's rule skips
    /// retransmitted frames). Progress resets the retry counter and
    /// backoff and slides the recovery deadline forward — the timer
    /// pending for the previous oldest frame must not fire against a
    /// newer one that has not had its full timeout yet. The armed timer
    /// event is *kept* (it re-arms itself for the remainder when it fires
    /// early), so a steady ack stream costs no timer churn.
    pub fn on_ack(&mut self, seq: u64, sack: u64, now: SimTime) {
        let Some(rel) = self.rel.as_mut() else {
            return;
        };
        let mut progressed = false;
        let mut sample = None;
        while rel.base <= seq {
            let Some(slot) = rel.buf.pop_front() else {
                break;
            };
            rel.base += 1;
            rel.cursor = rel.cursor.saturating_sub(1);
            progressed = true;
            if let Some(sent) = slot.sent_at {
                sample = Some(now.saturating_sub(sent));
            }
        }
        if let Some(rtt) = sample {
            rel.sample_rtt(rtt);
        }
        // Mark frames the receiver reports parked out of order so the
        // retransmit sweep skips them.
        let mut bits = sack;
        while bits != 0 {
            let i = bits.trailing_zeros() as u64;
            bits &= bits - 1;
            if let Some(idx) = (seq + 1 + i).checked_sub(rel.base) {
                if let Some(slot) = rel.buf.get_mut(idx as usize) {
                    slot.sacked = true;
                }
            }
        }
        if progressed {
            rel.attempts = 0;
            rel.backoff = 1;
            if rel.buf.is_empty() {
                // Nothing left in flight: the next frame starts a fresh
                // full timeout from its own launch.
                rel.deadline = SimTime::ZERO;
            } else {
                rel.deadline = now + rel.rto;
            }
        }
    }

    /// Applies a NACK asking for retransmission from `expected`, with
    /// the same selective-ack bitmap as [`on_ack`](TxPort::on_ack)
    /// (relative to `expected - 1`). Frames below `expected` are
    /// cumulatively acknowledged first; in SACK mode the sweep then
    /// resends only the frames the bitmap leaves unacknowledged.
    pub fn on_nack(&mut self, expected: u64, sack: u64, now: SimTime) -> TimerAction {
        self.on_ack(expected.saturating_sub(1), sack, now);
        let Some(rel) = self.rel.as_mut() else {
            return TimerAction::Idle;
        };
        if rel.dead || rel.buf.is_empty() || expected < rel.base {
            return TimerAction::Stale;
        }
        if rel.retx_pending() {
            // Already resending; the in-progress sweep (or the timer)
            // covers this request.
            return TimerAction::Stale;
        }
        rel.attempts += 1;
        if rel.attempts > rel.params.max_retries {
            rel.dead = true;
            return TimerAction::Dead(LinkError::RetryExhausted {
                retries: rel.attempts - 1,
                stranded: rel.buf.len(),
            });
        }
        rel.cursor = 0;
        TimerAction::Retransmit
    }

    /// Arms the recovery timer if one is needed and none is armed: returns
    /// the delay to self-schedule a `RetxTimer` event and the generation to
    /// carry in it. A timer is needed while unacknowledged frames exist
    /// (the adaptive retransmit timeout, scaled by the current backoff) or
    /// while any credits of the allowance are missing (credit-resync
    /// probe: a credit lost in flight would otherwise shrink this link's
    /// capacity forever when traffic is too light to ever fully starve
    /// the port — the probe simply finds all credits home and goes back
    /// to sleep in the common case). A probe timer stays armed even while
    /// a probe is outstanding: its reply can be lost on a hostile control
    /// plane, so the next firing simply issues a fresh probe whose token
    /// supersedes the silent one. When the recovery deadline was slid
    /// forward by ack progress (see [`on_ack`](TxPort::on_ack)), the
    /// timer re-arms for the remainder rather than a full fresh timeout.
    pub fn poll_timer(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        let credits = self.credits;
        let allowance = self.allowance;
        let rel = self.rel.as_mut()?;
        if rel.dead || rel.timer_armed {
            return None;
        }
        let (full, kind) = if !rel.buf.is_empty() {
            (rel.rto * u64::from(rel.backoff), ArmKind::Retx)
        } else if credits < allowance {
            (rel.resync_interval(), ArmKind::Resync)
        } else {
            return None;
        };
        rel.armed_kind = kind;
        let delay = if rel.deadline > now {
            rel.deadline.saturating_sub(now)
        } else {
            full
        };
        rel.deadline = now + delay;
        rel.timer_armed = true;
        rel.timer_gen += 1;
        Some((delay, rel.timer_gen))
    }

    /// Handles a fired recovery timer of generation `gen` at simulated
    /// time `now`. A timer that fires before the (slid) deadline is
    /// reported `Stale`; the caller's pump re-arms it for the remainder.
    pub fn on_timer(&mut self, gen: u64, now: SimTime) -> TimerAction {
        let credits = self.credits;
        let allowance = self.allowance;
        let Some(rel) = self.rel.as_mut() else {
            return TimerAction::Stale;
        };
        if gen != rel.timer_gen || !rel.timer_armed {
            return TimerAction::Stale;
        }
        rel.timer_armed = false;
        if rel.dead {
            return TimerAction::Stale;
        }
        if now < rel.deadline {
            return TimerAction::Stale;
        }
        if !rel.buf.is_empty() {
            rel.attempts += 1;
            if rel.attempts > rel.params.max_retries {
                rel.dead = true;
                return TimerAction::Dead(LinkError::RetryExhausted {
                    retries: rel.attempts - 1,
                    stranded: rel.buf.len(),
                });
            }
            rel.backoff = (rel.backoff * 2).min(rel.params.backoff_cap);
            rel.cursor = 0;
            TimerAction::Retransmit
        } else if rel.armed_kind == ArmKind::Resync && credits < allowance {
            // A starved port may probe forever against a crashed
            // neighbor whose replies are silenced: consecutive unanswered
            // probes draw on the same retry budget as retransmissions, so
            // total silence eventually degrades the link instead of
            // re-arming the probe timer for the rest of time.
            rel.probe_streak += 1;
            if rel.probe_streak > rel.params.max_retries {
                rel.dead = true;
                return TimerAction::Dead(LinkError::ProbeExhausted {
                    probes: rel.probe_streak - 1,
                    missing: allowance - credits,
                });
            }
            // Always mint a fresh token: if an earlier probe (or its
            // reply) was lost in flight, the stale token is superseded
            // and its late reply ignored — the handshake is idempotent.
            rel.resync_token += 1;
            rel.resync_outstanding = Some(rel.resync_token);
            rel.resync_probes += 1;
            TimerAction::Resync {
                token: rel.resync_token,
            }
        } else {
            // A retransmit-armed timer with nothing left to resend: any
            // missing credits get a *fresh* probe timer from the caller's
            // pump, with the full (slower) resync timeout.
            TimerAction::Idle
        }
    }

    /// Applies a credit-resync reply: the receiver has drained `drained`
    /// frames total on this link. Every credit of the allowance is in one
    /// of three places — in hand, riding an unacknowledged frame (the
    /// retransmit buffer), or reserved by an acknowledged frame still in
    /// the receiver's FIFO (`acked - drained`) — so the in-hand count is
    /// set absolutely from the other two. Frames may have been launched
    /// after the probe went out (a stray credit arrived meanwhile); they
    /// sit in the buffer and are accounted by its length. Returns whether
    /// the reply matched the outstanding token.
    pub fn on_sync_ack(&mut self, token: u64, drained: u64, now: SimTime) -> bool {
        let allowance = self.allowance;
        let Some(rel) = self.rel.as_mut() else {
            return false;
        };
        if rel.resync_outstanding != Some(token) {
            return false;
        }
        rel.resync_outstanding = None;
        rel.resyncs += 1;
        rel.probe_streak = 0;
        // Acks *within the current link epoch* only: the receiver zeroes
        // its drain counter on an epoch reset, so the comparison must too.
        let acked = (rel.base - 1).saturating_sub(rel.acked_offset);
        let outstanding = acked.saturating_sub(drained) + rel.buf.len() as u64;
        let new_credits =
            u32::try_from(u64::from(allowance).saturating_sub(outstanding)).unwrap_or(allowance);
        if new_credits > self.credits {
            if let Some(since) = self.stall_since.take() {
                self.credit_stall += now.saturating_sub(since);
            }
        }
        self.credits = new_credits;
        true
    }

    /// Starts a fresh link epoch after the peer revived from a crash:
    /// abandons every buffered frame (the peer's receive state is gone —
    /// retransmitting into it would be re-delivering into a different
    /// incarnation), clears the dead verdict and all recovery state, and
    /// restores the full credit allowance (the peer's input FIFO drained
    /// or vanished during the outage; any pre-epoch credits that still
    /// straggle home are swallowed under a grace budget rather than
    /// reported as duplicates). Returns the sequence number the next
    /// frame of the new epoch will carry — the caller announces it to
    /// the receiver in a [`CtrlMsg::Reset`](tg_wire::CtrlMsg::Reset) so
    /// it reseats its expected sequence and zeroes its drain counter.
    ///
    /// Abandoned frames are counted ([`abandoned`](TxPort::abandoned))
    /// so the conservation audit can account for them explicitly.
    ///
    /// # Panics
    ///
    /// Panics if reliability is not enabled (unreliable ports have no
    /// epoch state to reset).
    pub fn reset_epoch(&mut self, now: SimTime) -> u64 {
        let credits = self.credits;
        let allowance = self.allowance;
        let rel = self.rel.as_mut().expect("reset_epoch requires reliability");
        rel.abandoned += rel.buf.len() as u64;
        rel.abandoned_bytes += rel
            .buf
            .iter()
            .map(|s| u64::from(s.packet.size_bytes()))
            .sum::<u64>();
        rel.buf.clear();
        rel.cursor = 0;
        rel.attempts = 0;
        rel.backoff = 1;
        rel.dead = false;
        rel.deadline = SimTime::ZERO;
        // Invalidate any in-flight recovery timer: it belongs to the old
        // epoch and must not time the new one out.
        rel.timer_gen += 1;
        rel.timer_armed = false;
        rel.resync_outstanding = None;
        rel.probe_streak = 0;
        rel.acked_offset = rel.next_seq - 1;
        rel.base = rel.next_seq;
        rel.revivals += 1;
        self.stale_credit_grace += allowance - credits;
        self.credits = allowance;
        if let Some(since) = self.stall_since.take() {
            self.credit_stall += now.saturating_sub(since);
        }
        rel.next_seq
    }

    /// Frames abandoned by link-epoch resets (buffered for a peer that
    /// was declared dead; they were never delivered).
    pub fn abandoned(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.abandoned)
    }

    /// Wire bytes of abandoned frames.
    pub fn abandoned_bytes(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.abandoned_bytes)
    }

    /// Link-epoch resets performed on this port (peer revivals).
    pub fn revivals(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.revivals)
    }

    /// Stale pre-epoch credits swallowed after revivals.
    pub fn stale_credits(&self) -> u64 {
        self.stale_credits
    }

    /// Frames launched but not yet cumulatively acknowledged.
    pub fn unacked(&self) -> usize {
        self.rel.as_ref().map_or(0, |r| r.buf.len())
    }

    /// True once the retransmit budget was exhausted and the link declared
    /// dead.
    pub fn is_dead(&self) -> bool {
        self.rel.as_ref().is_some_and(|r| r.dead)
    }

    /// Total frames retransmitted on this port.
    pub fn retransmits(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.retransmits)
    }

    /// Wire bytes of retransmitted frames on this port.
    pub fn retx_bytes(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.retx_bytes)
    }

    /// The current adaptive retransmission timeout (the configured
    /// `retx_timeout` until the first ack round-trip is sampled).
    pub fn current_rto(&self) -> Option<SimTime> {
        self.rel.as_ref().map(|r| r.rto)
    }

    /// The smoothed round-trip estimate, once sampled.
    pub fn srtt(&self) -> Option<SimTime> {
        self.rel.as_ref().and_then(|r| r.srtt).map(SimTime::from_ps)
    }

    /// Consecutive unanswered recovery attempts for the oldest
    /// unacknowledged frame (reset by any ack progress).
    pub fn consecutive_attempts(&self) -> u32 {
        self.rel.as_ref().map_or(0, |r| r.attempts)
    }

    /// True when the link is ack-starved: half the retry budget has been
    /// burned on the same frame with no ack progress. The watchdog
    /// surface for "the control plane stopped answering" — fires well
    /// before [`LinkError::RetryExhausted`] declares the link dead.
    pub fn ack_starved(&self) -> bool {
        self.rel
            .as_ref()
            .is_some_and(|r| !r.dead && r.attempts > 0 && r.attempts * 2 >= r.params.max_retries)
    }

    /// Completed credit-resync handshakes on this port.
    pub fn resyncs(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.resyncs)
    }

    /// Credit-resync probes issued on this port (each probe either
    /// completes a handshake — counted by [`resyncs`](TxPort::resyncs) —
    /// or is still outstanding / was answered by a stale token).
    pub fn resync_probes(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.resync_probes)
    }

    /// Frames launched on this port (fresh launches + retransmissions).
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Wire bytes launched on this port.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Frames delivered (cumulatively acknowledged) on this port.
    /// Frames abandoned by epoch resets were never acknowledged even
    /// though the epoch base jumped over their sequence numbers.
    pub fn delivered(&self) -> u64 {
        self.rel.as_ref().map_or(0, |r| r.base - 1 - r.abandoned)
    }
}

/// Point-in-time statistics for one port pair at a fabric element: the
/// transmit side of the directed link this element drives (`link`), plus
/// the receive side of the *reverse* hop (the paired input FIFO this
/// element drains). Owners ([`Switch`](crate::Switch), the HIB) build
/// these; `Cluster::link_snapshots` joins the two halves per directed
/// link under the canonical `link.<a>-<b>.<metric>` names (see
/// [`tg_wire::metric`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortSnapshot {
    /// The directed link this element transmits on (self → neighbor).
    pub link: LinkId,
    /// Frames launched on `link` (fresh + retransmitted).
    pub tx_packets: u64,
    /// Wire bytes launched on `link`.
    pub tx_bytes: u64,
    /// Credits currently in hand for `link`.
    pub credits: u32,
    /// Initial credit allowance of `link`.
    pub allowance: u32,
    /// Cumulative credit-stall time on `link` (closed windows).
    pub credit_stall: SimTime,
    /// Frames retransmitted on `link`.
    pub retransmits: u64,
    /// Wire bytes of retransmitted frames on `link`.
    pub retx_bytes: u64,
    /// Completed credit-resync handshakes on `link`.
    pub resyncs: u64,
    /// Credit-resync probes issued on `link`.
    pub resync_probes: u64,
    /// Current depth of the input FIFO fed by the reverse hop
    /// (neighbor → self), in packets.
    pub rx_fifo_depth: u32,
    /// Deepest occupancy that FIFO ever reached.
    pub rx_fifo_high_water: u32,
    /// Frames the reverse hop's link layer rejected here (checksum or
    /// sequence violations, duplicates).
    pub rx_discards: u64,
}

/// A bounded input FIFO whose occupancy is mirrored by the credits held at
/// the upstream [`TxPort`].
#[derive(Clone, Debug)]
pub struct RxFifo {
    queue: VecDeque<Packet>,
    capacity: u32,
    high_water: u32,
}

impl RxFifo {
    /// Creates a FIFO holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        RxFifo {
            queue: VecDeque::new(),
            capacity,
            high_water: 0,
        }
    }

    /// Accepts an arriving packet.
    ///
    /// # Errors
    ///
    /// [`LinkError::FifoOverflow`] on overflow — the upstream credit
    /// discipline makes overflow a neighbor-originated protocol violation;
    /// the packet is dropped and the violation reported to the owner.
    pub fn push(&mut self, packet: Packet) -> Result<(), LinkError> {
        if self.queue.len() as u32 >= self.capacity {
            return Err(LinkError::FifoOverflow {
                capacity: self.capacity,
            });
        }
        self.queue.push_back(packet);
        self.high_water = self.high_water.max(self.queue.len() as u32);
        Ok(())
    }

    /// The packet at the head, if any.
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Removes and returns the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.queue.pop_front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Capacity in packets.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Deepest occupancy observed (for congestion reporting).
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Removes every queued packet matching `pred`, preserving the order
    /// of the rest; returns the removed packets in queue order. Used when
    /// a route recompute orphans already-queued traffic — it must leave
    /// the FIFO (with its credits returned) rather than wedge it.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&Packet) -> bool) -> Vec<Packet> {
        let mut kept = VecDeque::with_capacity(self.queue.len());
        let mut out = Vec::new();
        for p in self.queue.drain(..) {
            if pred(&p) {
                out.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.queue = kept;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::RetxMode;
    use tg_wire::{GOffset, NodeId, WireMsg};

    fn dummy_comp_id() -> CompId {
        // CompId construction is private to tg-sim; engines assign them.
        // For port unit tests we only need *a* value, so take one from a
        // throwaway engine.
        struct Noop;
        impl tg_sim::Component<u32> for Noop {
            fn on_event(&mut self, _: u32, _: &mut tg_sim::Ctx<'_, u32>) {}
            fn name(&self) -> &str {
                "noop"
            }
        }
        let mut eng: tg_sim::Engine<u32> = tg_sim::Engine::new();
        eng.add(Noop)
    }

    fn pkt() -> Packet {
        Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            WireMsg::WriteAck { tag: 0 },
            0,
        )
    }

    #[test]
    fn txport_credit_cycle() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 2, 1);
        assert!(tx.ready());
        let times = tx.launch(&pkt(), &timing);
        assert!(times.arrival > times.free);
        assert!(!tx.ready());
        tx.on_free();
        assert!(!tx.ready(), "still out of credits");
        tx.on_credit().unwrap();
        assert!(tx.ready());
    }

    #[test]
    fn txport_reports_duplicated_credit() {
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        assert_eq!(
            tx.on_credit(),
            Err(LinkError::DuplicateCredit { allowance: 2 })
        );
        assert_eq!(tx.credits(), 2, "duplicate credit is not banked");
        assert_eq!(
            tx.on_credit_at(SimTime::from_ns(10)),
            Err(LinkError::DuplicateCredit { allowance: 2 })
        );
    }

    #[test]
    #[should_panic(expected = "busy or credit-less")]
    fn txport_rejects_early_launch() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 1);
        let _ = tx.launch(&pkt(), &timing);
        let _ = tx.launch(&pkt(), &timing);
    }

    #[test]
    fn txport_serialization_scales_with_size() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        let small = tx.launch(&pkt(), &timing);
        tx.on_free();
        let big_pkt = Packet {
            msg: WireMsg::CopyData {
                tag: 0,
                index: 0,
                vals: vec![0; 64].into(),
                last: true,
            },
            ..pkt()
        };
        let big = tx.launch(&big_pkt, &timing);
        assert!(big.free > small.free);
    }

    #[test]
    fn txport_accumulates_credit_stall_time() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 1);
        let _ = tx.launch(&pkt(), &timing);
        tx.on_free();
        // Blocked from 100ns until the credit lands at 250ns.
        tx.note_blocked(SimTime::from_ns(100));
        tx.note_blocked(SimTime::from_ns(180)); // keeps the original start
        assert_eq!(tx.credit_stall(), SimTime::ZERO, "window still open");
        tx.on_credit_at(SimTime::from_ns(250)).unwrap();
        assert_eq!(tx.credit_stall(), SimTime::from_ns(150));
        // With a credit in hand, note_blocked is a no-op.
        tx.note_blocked(SimTime::from_ns(300));
        tx.on_free();
        let _ = tx.launch(&pkt(), &timing);
        tx.on_free();
        tx.on_credit_at(SimTime::from_ns(400)).unwrap();
        assert_eq!(tx.credit_stall(), SimTime::from_ns(150), "no phantom stall");
    }

    #[test]
    fn reliable_txport_frames_acks_and_drains() {
        let mut tx = TxPort::new(dummy_comp_id(), 0, 4);
        tx.enable_reliability(RelParams::default());
        assert!(tx.can_send_new());
        let a = tx.frame(pkt(), SimTime::ZERO);
        assert_eq!(a.link_seq, 1);
        assert!(a.checksum_ok());
        let b = tx.frame(pkt(), SimTime::ZERO);
        assert_eq!(b.link_seq, 2);
        assert_eq!(tx.unacked(), 2);
        tx.on_ack(1, 0, SimTime::from_ns(100));
        assert_eq!(tx.unacked(), 1);
        assert_eq!(tx.delivered(), 1);
        tx.on_ack(2, 0, SimTime::from_ns(200));
        assert_eq!(tx.unacked(), 0);
        assert!(!tx.has_retx_pending());
    }

    #[test]
    fn reliable_txport_goes_back_n_on_nack() {
        let mut tx = TxPort::new(dummy_comp_id(), 0, 8);
        tx.enable_reliability(RelParams::default());
        for _ in 0..3 {
            let _ = tx.frame(pkt(), SimTime::ZERO);
        }
        // Receiver saw a gap at 2: frames 2 and 3 must be resent.
        assert_eq!(tx.on_nack(2, 0, SimTime::ZERO), TimerAction::Retransmit);
        assert_eq!(tx.delivered(), 1, "NACK acks everything below it");
        assert!(tx.has_retx_pending());
        assert!(!tx.can_send_new(), "recovery outranks fresh traffic");
        assert_eq!(tx.take_retx().unwrap().link_seq, 2);
        assert_eq!(tx.take_retx().unwrap().link_seq, 3);
        assert!(tx.take_retx().is_none());
        assert_eq!(tx.retransmits(), 2);
        assert!(tx.retx_bytes() > 0, "retransmitted wire bytes counted");
        // A second NACK while already caught up retriggers the sweep.
        assert_eq!(tx.on_nack(2, 0, SimTime::ZERO), TimerAction::Retransmit);
        assert_eq!(tx.take_retx().unwrap().link_seq, 2);
    }

    #[test]
    fn sacked_frames_are_skipped_by_the_retransmit_sweep() {
        let mut tx = TxPort::new(dummy_comp_id(), 0, 8);
        tx.enable_reliability(RelParams {
            mode: RetxMode::Sack,
            ..RelParams::default()
        });
        for _ in 0..4 {
            let _ = tx.frame(pkt(), SimTime::ZERO);
        }
        // Frame 2 lost; receiver parked 3 and 4 (bits 1 and 2 relative
        // to ack 1) and nacks for 2.
        assert_eq!(tx.on_nack(2, 0b110, SimTime::ZERO), TimerAction::Retransmit);
        assert_eq!(tx.take_retx().unwrap().link_seq, 2, "only the gap resends");
        assert!(tx.take_retx().is_none(), "sacked 3 and 4 are skipped");
        assert_eq!(tx.retransmits(), 1);
        assert!(!tx.has_retx_pending());
        assert!(tx.can_send_new(), "sacked tail does not block fresh frames");
        // The receiver releases its window: one cumulative ack drains all.
        tx.on_ack(4, 0, SimTime::from_us(1));
        assert_eq!(tx.unacked(), 0);
        assert_eq!(tx.delivered(), 4);
    }

    #[test]
    fn ack_round_trips_adapt_the_rto_within_clamps() {
        let params = RelParams::default();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 8);
        tx.enable_reliability(params);
        assert_eq!(tx.current_rto(), Some(params.retx_timeout));
        // A 1us round-trip: srtt=1us, rttvar=0.5us, rto=3us -> floor 5us.
        let _ = tx.frame(pkt(), SimTime::ZERO);
        tx.on_ack(1, 0, SimTime::from_us(1));
        assert_eq!(tx.current_rto(), Some(params.rto_min), "clamped to floor");
        assert_eq!(tx.srtt(), Some(SimTime::from_us(1)));
        // A huge round-trip pushes toward the ceiling.
        let t = SimTime::from_ms(1);
        let _ = tx.frame(pkt(), t);
        tx.on_ack(2, 0, t + SimTime::from_ms(2));
        assert_eq!(tx.current_rto(), Some(params.rto_max), "clamped to ceiling");
        // Retransmitted frames never feed the estimator (Karn).
        let t2 = SimTime::from_ms(10);
        let _ = tx.frame(pkt(), t2);
        assert_eq!(tx.on_nack(3, 0, t2), TimerAction::Retransmit);
        let _ = tx.take_retx().unwrap();
        let srtt_before = tx.srtt();
        tx.on_ack(3, 0, t2 + SimTime::from_ms(5));
        assert_eq!(tx.srtt(), srtt_before, "ambiguous sample discarded");
    }

    #[test]
    fn ack_starvation_trips_at_half_the_retry_budget() {
        let params = RelParams {
            max_retries: 6,
            ..RelParams::default()
        };
        let mut tx = TxPort::new(dummy_comp_id(), 0, 4);
        tx.enable_reliability(params);
        let _ = tx.frame(pkt(), SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for round in 1..=3u32 {
            let (d, g) = tx.poll_timer(t).expect("armed");
            t += d;
            assert_eq!(tx.on_timer(g, t), TimerAction::Retransmit);
            let _ = tx.take_retx();
            assert_eq!(tx.consecutive_attempts(), round);
            assert_eq!(tx.ack_starved(), round >= 3, "trips at 3 of 6");
        }
        // Ack progress clears the alarm.
        tx.on_ack(1, 0, t);
        assert!(!tx.ack_starved());
        assert_eq!(tx.consecutive_attempts(), 0);
    }

    #[test]
    fn resync_probe_is_retried_when_the_reply_is_lost() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        tx.enable_reliability(RelParams::default());
        let p = tx.frame(pkt(), SimTime::ZERO);
        let _ = tx.launch(&p, &timing);
        tx.on_free();
        tx.on_ack(1, 0, SimTime::from_ns(400));
        // The credit never returns; the first probe's reply is lost too.
        let mut t = SimTime::from_ns(500);
        let (d1, g1) = tx.poll_timer(t).expect("credit starvation arms resync");
        t += d1;
        let tok1 = match tx.on_timer(g1, t) {
            TimerAction::Resync { token } => token,
            other => panic!("expected resync, got {other:?}"),
        };
        // No reply arrives. The probe timer re-arms and fires again with
        // a fresh token instead of waiting forever.
        let (d2, g2) = tx.poll_timer(t).expect("probe re-arms while starved");
        t += d2;
        let tok2 = match tx.on_timer(g2, t) {
            TimerAction::Resync { token } => token,
            other => panic!("expected retried resync, got {other:?}"),
        };
        assert!(tok2 > tok1, "fresh token supersedes the silent probe");
        assert!(!tx.on_sync_ack(tok1, 1, t), "stale reply is ignored");
        assert!(tx.on_sync_ack(tok2, 1, t));
        assert_eq!(tx.credits(), 2);
    }

    #[test]
    fn reliable_txport_timer_backoff_and_death() {
        let params = RelParams {
            max_retries: 2,
            ..RelParams::default()
        };
        let mut tx = TxPort::new(dummy_comp_id(), 0, 4);
        tx.enable_reliability(params);
        let _ = tx.frame(pkt(), SimTime::ZERO);
        let t0 = SimTime::ZERO;
        let (d1, g1) = tx.poll_timer(t0).expect("unacked frame arms the timer");
        assert_eq!(d1, params.retx_timeout);
        assert!(tx.poll_timer(t0).is_none(), "timer already armed");
        let t1 = t0 + d1;
        assert_eq!(tx.on_timer(g1, t1), TimerAction::Retransmit);
        let (d2, g2) = tx.poll_timer(t1).unwrap();
        assert_eq!(d2, params.retx_timeout * 2, "exponential backoff");
        let t2 = t1 + d2;
        assert_eq!(tx.on_timer(g1, t2), TimerAction::Stale, "old generation");
        assert_eq!(tx.on_timer(g2, t2), TimerAction::Retransmit);
        let (d3, g3) = tx.poll_timer(t2).unwrap();
        match tx.on_timer(g3, t2 + d3) {
            TimerAction::Dead(LinkError::RetryExhausted { retries, stranded }) => {
                assert_eq!(retries, 2);
                assert_eq!(stranded, 1);
            }
            other => panic!("expected dead link, got {other:?}"),
        }
        assert!(tx.is_dead());
        assert!(
            tx.poll_timer(SimTime::from_us(99)).is_none(),
            "dead ports arm no timers"
        );
    }

    #[test]
    fn ack_progress_slides_the_deadline_without_rearming() {
        let params = RelParams::default();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 4);
        tx.enable_reliability(params);
        let _ = tx.frame(pkt(), SimTime::ZERO);
        let _ = tx.frame(pkt(), SimTime::ZERO);
        let (d1, g1) = tx.poll_timer(SimTime::ZERO).expect("armed");
        assert_eq!(d1, params.retx_timeout);
        // Frame 1 acked halfway through the window: the pending timer
        // stays armed (no churn), but its deadline slides to cover frame 2
        // with a full (now RTT-adapted) timeout from the ack.
        let t_ack = params.retx_timeout / 2;
        tx.on_ack(1, 0, t_ack);
        let rto = tx.current_rto().expect("reliable port has an RTO");
        assert!(tx.poll_timer(t_ack).is_none(), "timer still armed");
        // The original event fires early and must NOT retransmit.
        let t_fire = SimTime::ZERO + d1;
        assert_eq!(tx.on_timer(g1, t_fire), TimerAction::Stale);
        assert_eq!(tx.retransmits(), 0);
        // Re-arming picks up exactly the remainder of the slid deadline.
        let (d2, g2) = tx.poll_timer(t_fire).expect("re-armed for remainder");
        assert_eq!(t_fire + d2, t_ack + rto);
        // Left alone until the true deadline, it finally retransmits.
        assert_eq!(tx.on_timer(g2, t_fire + d2), TimerAction::Retransmit);
    }

    #[test]
    fn reliable_txport_resyncs_credits() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        tx.enable_reliability(RelParams::default());
        // Launch two frames; both acked, but both credits get lost.
        for _ in 0..2 {
            let p = tx.frame(pkt(), SimTime::ZERO);
            let _ = tx.launch(&p, &timing);
            tx.on_free();
        }
        tx.on_ack(2, 0, SimTime::from_ns(400));
        assert_eq!(tx.credits(), 0);
        tx.note_blocked(SimTime::from_ns(500));
        let armed_at = SimTime::from_ns(500);
        let (delay, gen) = tx
            .poll_timer(armed_at)
            .expect("credit starvation arms resync");
        // The probe interval derives from the adaptive RTO (clamped to
        // the floor by the sub-microsecond ack round-trip): 4 * rto_min,
        // well under the configured resync_timeout ceiling.
        assert_eq!(delay, RelParams::default().rto_min * 4);
        assert!(delay < RelParams::default().resync_timeout);
        let token = match tx.on_timer(gen, armed_at + delay) {
            TimerAction::Resync { token } => token,
            other => panic!("expected resync, got {other:?}"),
        };
        // The receiver reports both frames drained: full allowance back.
        assert!(tx.on_sync_ack(token, 2, SimTime::from_us(50)));
        assert_eq!(tx.credits(), 2);
        assert!(tx.credit_stall() > SimTime::ZERO, "stall window closed");
        assert!(
            !tx.on_sync_ack(token, 2, SimTime::from_us(51)),
            "stale token"
        );
        // If only one frame had drained, the other still holds its slot.
        let mut tx2 = TxPort::new(dummy_comp_id(), 0, 2);
        tx2.enable_reliability(RelParams::default());
        for _ in 0..2 {
            let p = tx2.frame(pkt(), SimTime::ZERO);
            let _ = tx2.launch(&p, &timing);
            tx2.on_free();
        }
        tx2.on_ack(2, 0, SimTime::from_ns(400));
        tx2.note_blocked(SimTime::from_ns(500));
        let armed2 = SimTime::from_ns(500);
        let (d_resync, gen2) = tx2.poll_timer(armed2).unwrap();
        let token2 = match tx2.on_timer(gen2, armed2 + d_resync) {
            TimerAction::Resync { token } => token,
            other => panic!("expected resync, got {other:?}"),
        };
        assert!(tx2.on_sync_ack(token2, 1, SimTime::from_us(50)));
        assert_eq!(tx2.credits(), 1);
    }

    #[test]
    fn reset_epoch_abandons_stranded_frames_and_revives_the_link() {
        let timing = TimingConfig::telegraphos_i();
        let params = RelParams {
            max_retries: 1,
            ..RelParams::default()
        };
        let mut tx = TxPort::new(dummy_comp_id(), 0, 4);
        tx.enable_reliability(params);
        // Two frames launched into a crashed peer: no acks ever come,
        // the retry budget burns out, the link is declared dead.
        for _ in 0..2 {
            let p = tx.frame(pkt(), SimTime::ZERO);
            let _ = tx.launch(&p, &timing);
            tx.on_free();
        }
        let (d1, g1) = tx.poll_timer(SimTime::ZERO).expect("armed");
        assert_eq!(tx.on_timer(g1, d1), TimerAction::Retransmit);
        while tx.take_retx().is_some() {}
        let (d2, g2) = tx.poll_timer(d1).expect("re-armed");
        match tx.on_timer(g2, d1 + d2) {
            TimerAction::Dead(LinkError::RetryExhausted { stranded, .. }) => {
                assert_eq!(stranded, 2);
            }
            other => panic!("expected dead link, got {other:?}"),
        }
        assert!(tx.is_dead());
        assert_eq!(tx.credits(), 2);
        // The peer's heartbeats resume: start a fresh epoch.
        let next = tx.reset_epoch(SimTime::from_ms(1));
        assert_eq!(next, 3, "epoch resumes the sequence space");
        assert!(!tx.is_dead());
        assert_eq!(tx.abandoned(), 2);
        assert!(tx.abandoned_bytes() > 0);
        assert_eq!(tx.revivals(), 1);
        assert_eq!(tx.unacked(), 0);
        assert_eq!(tx.delivered(), 0, "abandoned frames were never delivered");
        assert_eq!(tx.credits(), 4, "full allowance restored");
        assert!(tx.can_send_new());
        assert_eq!(tx.consecutive_attempts(), 0);
        // The old epoch's timer generation is dead on arrival.
        assert_eq!(tx.on_timer(g2, SimTime::from_ms(2)), TimerAction::Stale);
        assert!(
            tx.poll_timer(SimTime::from_ms(2)).is_none(),
            "empty buffer and full credits arm nothing"
        );
        // Two stale pre-epoch credits straggle home: swallowed under the
        // grace budget; a third is a genuine protocol violation.
        assert_eq!(tx.on_credit(), Ok(()));
        assert_eq!(tx.on_credit_at(SimTime::from_ms(3)), Ok(()));
        assert_eq!(tx.credits(), 4, "stale credits are not banked");
        assert_eq!(tx.stale_credits(), 2);
        assert_eq!(
            tx.on_credit(),
            Err(LinkError::DuplicateCredit { allowance: 4 })
        );
        // The new epoch frames and delivers normally.
        let p = tx.frame(pkt(), SimTime::from_ms(4));
        assert_eq!(p.link_seq, 3);
        tx.on_ack(3, 0, SimTime::from_ms(5));
        assert_eq!(tx.delivered(), 1);
    }

    #[test]
    fn post_reset_resync_uses_epoch_relative_acks() {
        let timing = TimingConfig::telegraphos_i();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 2);
        tx.enable_reliability(RelParams::default());
        // One delivered pre-crash frame, then the epoch resets (the
        // receiver zeroes its drain counter on the Reset it gets).
        let p = tx.frame(pkt(), SimTime::ZERO);
        let _ = tx.launch(&p, &timing);
        tx.on_free();
        tx.on_ack(1, 0, SimTime::from_ns(400));
        tx.on_credit().unwrap();
        let _ = tx.reset_epoch(SimTime::from_ms(1));
        // New epoch: one frame delivered and drained, but its credit is
        // lost — the resync probe must conclude exactly one credit is
        // outstanding, not be confused by the pre-epoch ack.
        let t = SimTime::from_ms(2);
        let p = tx.frame(pkt(), t);
        let _ = tx.launch(&p, &timing);
        tx.on_free();
        tx.on_ack(2, 0, t + SimTime::from_us(1));
        assert_eq!(tx.credits(), 1);
        let (d, gen) = tx.poll_timer(t + SimTime::from_us(1)).expect("resync");
        let token = match tx.on_timer(gen, t + SimTime::from_us(1) + d) {
            TimerAction::Resync { token } => token,
            other => panic!("expected resync, got {other:?}"),
        };
        // Receiver drained 1 frame *this epoch*: allowance fully home.
        assert!(tx.on_sync_ack(token, 1, t + SimTime::from_us(50)));
        assert_eq!(tx.credits(), 2);
    }

    #[test]
    fn rto_stays_clamped_under_pathological_rtt_samples() {
        // Satellite property: no sequence of RTT samples — zero delay,
        // absurdly huge, or violently alternating — may ever push the
        // adaptive RTO outside [rto_min, rto_max], and srtt stays sane.
        let params = RelParams::default();
        let mut tx = TxPort::new(dummy_comp_id(), 0, 64);
        tx.enable_reliability(params);
        let samples_ps: [u64; 12] = [
            0,
            0,
            u64::from(u32::MAX) * 1_000,
            1,
            10_000_000_000_000,
            1,
            0,
            5_000_000_000_000,
            2,
            9_999_999_999_999,
            0,
            3,
        ];
        let mut t = SimTime::ZERO;
        for (i, &rtt_ps) in samples_ps.iter().enumerate() {
            let seq = i as u64 + 1;
            let _ = tx.frame(pkt(), t);
            t += SimTime::from_ps(rtt_ps);
            tx.on_ack(seq, 0, t);
            let rto = tx.current_rto().expect("reliable port has an RTO");
            assert!(
                rto >= params.rto_min && rto <= params.rto_max,
                "sample {i} ({rtt_ps}ps) pushed rto to {rto:?}"
            );
            let srtt = tx.srtt().expect("sampled");
            assert!(srtt.as_ps() >= 1, "srtt floored at one picosecond");
            t += SimTime::from_ns(10);
        }
        // Karn's rule: an ack covering a retransmitted frame leaves the
        // estimator untouched even amid the pathological history.
        let _ = tx.frame(pkt(), t);
        assert_eq!(tx.on_nack(13, 0, t), TimerAction::Retransmit);
        let _ = tx.take_retx().unwrap();
        let srtt_before = tx.srtt();
        let rto_before = tx.current_rto();
        tx.on_ack(13, 0, t + SimTime::from_ms(100));
        assert_eq!(tx.srtt(), srtt_before, "ambiguous sample discarded");
        assert_eq!(tx.current_rto(), rto_before);
    }

    #[test]
    fn rxfifo_orders_and_counts() {
        let mut fifo = RxFifo::new(3);
        for i in 0..3u64 {
            fifo.push(Packet {
                msg: WireMsg::WriteReq {
                    addr: GOffset::new(i * 8),
                    val: i,
                    tag: 0,
                },
                ..pkt()
            })
            .unwrap();
        }
        assert_eq!(fifo.len(), 3);
        assert_eq!(fifo.high_water(), 3);
        let first = fifo.pop().unwrap();
        match first.msg {
            WireMsg::WriteReq { val, .. } => assert_eq!(val, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(fifo.len(), 2);
    }

    #[test]
    fn rxfifo_overflow_is_reported_not_fatal() {
        let mut fifo = RxFifo::new(1);
        fifo.push(pkt()).unwrap();
        assert_eq!(
            fifo.push(pkt()),
            Err(LinkError::FifoOverflow { capacity: 1 })
        );
        assert_eq!(fifo.len(), 1, "offending packet dropped");
    }
}
