//! # tg-net — the Telegraphos switch network
//!
//! Models the switch fabric of the Telegraphos prototypes (Katevenis et al.,
//! SIGCOMM'95 / HotI'95): cut-through switches with per-input FIFOs,
//! credit-based back-pressure on every link, and deterministic routing that
//! delivers packets **in order** per (source, destination) pair and is
//! **deadlock-free** — the three properties the paper's coherence protocol
//! depends on (§2.3.1: "This also assumes a network that delivers packets
//! in-order from a certain source to a certain destination").
//!
//! Routing is the always-legal core of up*/down*: a BFS spanning tree is
//! computed over the topology and every route follows tree edges (up toward
//! the root, then down). Tree routing cannot create a cyclic channel
//! dependency, so the credit loops cannot deadlock; a property test in this
//! crate exercises random topologies under random traffic to back the claim.
//!
//! The crate is generic over the simulation's message type via
//! [`NetMessage`], so the cluster model in `telegraphos` can embed network
//! events inside its own event enum while this crate stays independently
//! testable (see [`testing`]).
//!
//! # Example
//!
//! ```
//! use tg_net::{build_network, testing::SourceSink, Topology};
//! use tg_sim::Engine;
//! use tg_wire::{GOffset, NodeId, TimingConfig, WireMsg};
//!
//! # fn main() -> Result<(), tg_net::RouteError> {
//! let timing = TimingConfig::telegraphos_i();
//! let topo = Topology::star(2);
//! let mut engine = Engine::new();
//! let a = engine.add(SourceSink::new(NodeId::new(0), timing.clone()));
//! let b = engine.add(SourceSink::new(NodeId::new(1), timing.clone()));
//! let handles = build_network(&mut engine, &topo, &timing, &[a, b])?;
//! for (id, w) in [a, b].into_iter().zip(handles.endpoints) {
//!     engine
//!         .get_mut::<SourceSink>(id)
//!         .unwrap()
//!         .wire(w.tx, w.rx_upstream);
//! }
//! engine
//!     .get_mut::<SourceSink>(a)
//!     .unwrap()
//!     .enqueue(NodeId::new(1), WireMsg::WriteReq { addr: GOffset::new(0), val: 7, tag: 1 });
//! tg_net::testing::kick(&mut engine, a);
//! engine.run();
//! assert_eq!(engine.get::<SourceSink>(b).unwrap().received.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect;
mod event;
pub mod fault;
mod link;
mod port;
mod route;
mod switch;
pub mod testing;
mod topology;

pub use detect::{DetectParams, HeartbeatDetector, Liveness};
pub use event::{NetEvent, NetMessage};
pub use fault::{
    CrashWindow, FaultInjector, FaultPlan, FaultStats, FrameFate, LinkId, Outage, Wedge,
};
pub use link::{CreditLedger, LinkError, LinkRx, RelParams, RetxMode, RxVerdict, StalledLink};
pub use port::{PortSnapshot, RxFifo, TimerAction, TxPort, TxTimes};
pub use route::{FabricView, RouteError, Routes};
pub use switch::{Switch, SwitchStats};
pub use topology::{Topology, TopologyError, Vertex};

use tg_sim::{CompId, Engine};
use tg_wire::trace::Site;
use tg_wire::{NodeId, TimingConfig};

/// What the network builder hands back for each endpoint: the endpoint's
/// transmit port (with credits toward its switch) and the receive wiring it
/// must honor (FIFO capacity granted upstream, and where to return
/// credits as packets are consumed).
#[derive(Debug)]
pub struct EndpointWiring {
    /// The endpoint's transmit port into the fabric.
    pub tx: TxPort,
    /// Capacity of the endpoint's receive FIFO: the upstream switch holds
    /// this many credits, so the endpoint may buffer at most this many
    /// unconsumed packets.
    pub rx_capacity: u32,
    /// Where to send credits for consumed packets: `(component, port)`.
    pub rx_upstream: (CompId, u32),
}

/// Everything [`build_network`] created: per-endpoint wiring plus the
/// engine ids of the instantiated switches (for stats inspection).
#[derive(Debug)]
pub struct NetworkHandles {
    /// Wiring for each endpoint, in topology order.
    pub endpoints: Vec<EndpointWiring>,
    /// Engine ids of the switches, in topology order.
    pub switches: Vec<CompId>,
    /// The shared dead-set + route view the switches report failure
    /// verdicts to; present when the reliability parameters enable
    /// heartbeats (the failure-detection substrate).
    pub view: Option<FabricView>,
}

/// Optional fabric behaviors threaded through [`build_network_with`]:
/// link-level reliability and fault injection.
#[derive(Clone, Debug, Default)]
pub struct NetConfig {
    /// When `Some`, every link in the fabric (switch ports *and* endpoint
    /// transmit ports) runs the link-level reliability protocol.
    pub reliability: Option<RelParams>,
    /// When `Some`, every frame launch and credit return consults this
    /// injector.
    pub injector: Option<FaultInjector>,
}

fn site_of(v: Vertex) -> Site {
    match v {
        Vertex::Switch(s) => Site::Switch(s),
        Vertex::Node(n) => Site::Node(NodeId::new(n)),
    }
}

/// Instantiates switches for `topology` inside `engine` and wires them to
/// the given endpoint components (one per topology endpoint, in order).
///
/// Returns per-endpoint wiring and the switch component ids. Endpoint
/// components must interpret [`NetEvent`]s embedded in `M`.
///
/// # Errors
///
/// Returns [`RouteError`] if the topology is disconnected.
///
/// # Panics
///
/// Panics if `endpoints.len()` differs from the topology's endpoint count.
pub fn build_network<M: NetMessage>(
    engine: &mut Engine<M>,
    topology: &Topology,
    timing: &TimingConfig,
    endpoints: &[CompId],
) -> Result<NetworkHandles, RouteError> {
    build_network_with(engine, topology, timing, endpoints, &NetConfig::default())
}

/// [`build_network`] with explicit fabric options: reliability protocol
/// parameters and a fault injector. Every transmit port is labeled with its
/// directed [`LinkId`] so the injector and diagnostics can name links.
///
/// # Errors
///
/// Returns [`RouteError`] if the topology is disconnected.
///
/// # Panics
///
/// Panics if `endpoints.len()` differs from the topology's endpoint count.
pub fn build_network_with<M: NetMessage>(
    engine: &mut Engine<M>,
    topology: &Topology,
    timing: &TimingConfig,
    endpoints: &[CompId],
    config: &NetConfig,
) -> Result<NetworkHandles, RouteError> {
    assert_eq!(
        endpoints.len(),
        topology.endpoint_count(),
        "one engine component required per topology endpoint"
    );
    let routes = Routes::compute(topology)?;
    // With heartbeats on, the switches share a fabric view: their port
    // detectors report dead vertices into it and every switch refreshes
    // its table from the one globally-consistent recomputed tree.
    let view = config
        .reliability
        .filter(|p| p.heartbeat_every.is_some())
        .map(|_| FabricView::new(topology.clone(), routes.clone()));

    // Create the switch components first so every CompId is known.
    let mut switch_ids = Vec::with_capacity(topology.switch_count());
    for s in 0..topology.switch_count() {
        let v = Vertex::Switch(s as u16);
        let mut sw = Switch::new(
            format!("switch{s}"),
            topology.ports_of(v).len(),
            routes.table_for_switch(s as u16),
            timing.clone(),
        );
        sw.set_fifo_capacity(topology.fifo_capacity(v));
        sw.set_site(s as u16);
        if let Some(params) = config.reliability {
            sw.set_reliability(params);
        }
        if let Some(injector) = &config.injector {
            sw.set_injector(injector.clone());
        }
        if let Some(view) = &view {
            sw.set_fabric(view.clone());
        }
        switch_ids.push(engine.add(sw));
    }
    let comp_of = |v: Vertex| -> CompId {
        match v {
            Vertex::Switch(s) => switch_ids[s as usize],
            Vertex::Node(n) => endpoints[n as usize],
        }
    };

    // Wire every switch port: credits granted = the neighbor's FIFO size.
    for (s, &switch_id) in switch_ids.iter().enumerate() {
        let v = Vertex::Switch(s as u16);
        for (port, &(nbr, nbr_port)) in topology.ports_of(v).iter().enumerate() {
            let mut tx = TxPort::new(comp_of(nbr), nbr_port, topology.fifo_capacity(nbr));
            tx.set_link(LinkId::new(site_of(v), site_of(nbr)));
            engine
                .get_mut::<Switch>(switch_id)
                .expect("switch component")
                .attach_port(port as u32, tx);
        }
    }

    // Hand each endpoint its wiring.
    let mut wirings = Vec::with_capacity(endpoints.len());
    for n in 0..topology.endpoint_count() {
        let v = Vertex::Node(n as u16);
        let ports = topology.ports_of(v);
        assert_eq!(ports.len(), 1, "endpoints have exactly one network port");
        let (nbr, nbr_port) = ports[0];
        let mut tx = TxPort::new(comp_of(nbr), nbr_port, topology.fifo_capacity(nbr));
        tx.set_link(LinkId::new(site_of(v), site_of(nbr)));
        if let Some(params) = config.reliability {
            tx.enable_reliability(params);
        }
        wirings.push(EndpointWiring {
            tx,
            rx_capacity: topology.fifo_capacity(v),
            rx_upstream: (comp_of(nbr), nbr_port),
        });
    }
    Ok(NetworkHandles {
        endpoints: wirings,
        switches: switch_ids,
        view,
    })
}
