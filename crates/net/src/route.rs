//! Deterministic, deadlock-free route computation.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use tg_wire::NodeId;

use crate::topology::{Topology, Vertex};

/// Route computation failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// Some vertex cannot reach the rest of the network.
    Disconnected(Vertex),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Disconnected(v) => write!(f, "topology is disconnected at {v}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Precomputed routing state: a BFS spanning tree (rooted at switch 0, or
/// node 0 in a switchless wiring) and, per switch, a destination-to-output-
/// port table.
///
/// Restricting traffic to spanning-tree edges is the always-legal core of
/// up*/down* routing: every packet climbs toward the root and then descends,
/// so the channel-dependency graph is acyclic and credit-based back-pressure
/// cannot deadlock. Each (source, destination) pair has exactly one path,
/// which with FIFO queueing gives the in-order guarantee of §2.3.1.
#[derive(Clone, Debug)]
pub struct Routes {
    /// `tables[s][dst_node] = output port on switch s`.
    tables: Vec<Vec<u32>>,
    /// Parent pointers of the spanning tree, for diagnostics/tests.
    parent: HashMap<Vertex, Vertex>,
    /// Vertices the spanning tree could not reach (only non-empty for
    /// [`Routes::compute_avoiding`]: the named partition cut off by the
    /// avoided fault domain), in ascending vertex order.
    unreachable: Vec<Vertex>,
}

impl Routes {
    /// Computes routes for a topology.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Disconnected`] if any vertex is unreachable
    /// from the root.
    pub fn compute(topology: &Topology) -> Result<Routes, RouteError> {
        let root = if topology.switch_count() > 0 {
            Vertex::Switch(0)
        } else {
            Vertex::Node(0)
        };

        // Deterministic BFS: neighbors are explored in port order.
        let mut parent: HashMap<Vertex, Vertex> = HashMap::new();
        let mut seen: HashMap<Vertex, bool> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert(root, true);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &(nbr, _) in topology.ports_of(v) {
                if !seen.get(&nbr).copied().unwrap_or(false) {
                    seen.insert(nbr, true);
                    parent.insert(nbr, v);
                    queue.push_back(nbr);
                }
            }
        }
        for s in 0..topology.switch_count() {
            let v = Vertex::Switch(s as u16);
            if !seen.get(&v).copied().unwrap_or(false) {
                return Err(RouteError::Disconnected(v));
            }
        }
        for n in 0..topology.endpoint_count() {
            let v = Vertex::Node(n as u16);
            if !seen.get(&v).copied().unwrap_or(false) {
                return Err(RouteError::Disconnected(v));
            }
        }

        // Tree path from any vertex to each destination endpoint: walk both
        // ends up to the root, find the meeting point. We precompute, per
        // switch, the next hop toward every destination node.
        let path_to_root = |mut v: Vertex| -> Vec<Vertex> {
            let mut path = vec![v];
            while let Some(&p) = parent.get(&v) {
                path.push(p);
                v = p;
            }
            path
        };

        let mut tables = Vec::with_capacity(topology.switch_count());
        for s in 0..topology.switch_count() {
            let from = Vertex::Switch(s as u16);
            let up_from = path_to_root(from);
            let mut table = vec![u32::MAX; topology.endpoint_count()];
            for (dst, slot) in table.iter_mut().enumerate() {
                let to = Vertex::Node(dst as u16);
                if to == from {
                    continue;
                }
                let up_to = path_to_root(to);
                // Lowest common ancestor: deepest vertex on both root paths.
                let next = next_hop_on_tree(&up_from, &up_to);
                let port = topology
                    .ports_of(from)
                    .iter()
                    .position(|&(nbr, _)| nbr == next)
                    .expect("tree edge is a real port");
                *slot = port as u32;
            }
            tables.push(table);
        }
        Ok(Routes {
            tables,
            parent,
            unreachable: Vec::new(),
        })
    }

    /// Recomputes routes over the surviving fabric: a fresh BFS spanning
    /// tree that never enters a `dead` vertex. Unlike [`Routes::compute`]
    /// this cannot fail — a fault domain whose loss disconnects the graph
    /// yields *partial* tables instead: destinations with no surviving
    /// path get [`u32::MAX`] entries (the switch blackholes such traffic,
    /// counted, rather than wedging), and the cut-off vertices are named
    /// by [`Routes::unreachable`] so the deadlock report can describe the
    /// partition instead of a mystery stall.
    ///
    /// The tree is rooted at the first live switch (first live node in a
    /// switchless wiring), so every survivor computes the identical tree
    /// from the identical dead set — route-around stays deterministic.
    pub fn compute_avoiding(topology: &Topology, dead: &BTreeSet<Vertex>) -> Routes {
        let root = (0..topology.switch_count())
            .map(|s| Vertex::Switch(s as u16))
            .chain((0..topology.endpoint_count()).map(|n| Vertex::Node(n as u16)))
            .find(|v| !dead.contains(v));

        let mut parent: HashMap<Vertex, Vertex> = HashMap::new();
        let mut seen: HashMap<Vertex, bool> = HashMap::new();
        if let Some(root) = root {
            let mut queue = VecDeque::new();
            seen.insert(root, true);
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                for &(nbr, _) in topology.ports_of(v) {
                    if dead.contains(&nbr) {
                        continue;
                    }
                    if !seen.get(&nbr).copied().unwrap_or(false) {
                        seen.insert(nbr, true);
                        parent.insert(nbr, v);
                        queue.push_back(nbr);
                    }
                }
            }
        }

        let path_to_root = |mut v: Vertex| -> Vec<Vertex> {
            let mut path = vec![v];
            while let Some(&p) = parent.get(&v) {
                path.push(p);
                v = p;
            }
            path
        };

        let mut tables = Vec::with_capacity(topology.switch_count());
        for s in 0..topology.switch_count() {
            let from = Vertex::Switch(s as u16);
            let mut table = vec![u32::MAX; topology.endpoint_count()];
            if seen.get(&from).copied().unwrap_or(false) {
                let up_from = path_to_root(from);
                for (dst, slot) in table.iter_mut().enumerate() {
                    let to = Vertex::Node(dst as u16);
                    if to == from || !seen.get(&to).copied().unwrap_or(false) {
                        continue;
                    }
                    let up_to = path_to_root(to);
                    let next = next_hop_on_tree(&up_from, &up_to);
                    let port = topology
                        .ports_of(from)
                        .iter()
                        .position(|&(nbr, _)| nbr == next)
                        .expect("tree edge is a real port");
                    *slot = port as u32;
                }
            }
            tables.push(table);
        }

        let mut unreachable: Vec<Vertex> = (0..topology.switch_count())
            .map(|s| Vertex::Switch(s as u16))
            .chain((0..topology.endpoint_count()).map(|n| Vertex::Node(n as u16)))
            .filter(|v| !seen.get(v).copied().unwrap_or(false))
            .collect();
        unreachable.sort();
        Routes {
            tables,
            parent,
            unreachable,
        }
    }

    /// Vertices no surviving route reaches (the partition cut off by the
    /// dead set handed to [`Routes::compute_avoiding`]; dead vertices
    /// themselves are included). Empty for a fully connected computation.
    pub fn unreachable(&self) -> &[Vertex] {
        &self.unreachable
    }

    /// The routing table for switch `s`: `table[dst.index()]` is the output
    /// port toward `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn table_for_switch(&self, s: u16) -> Vec<u32> {
        self.tables[s as usize].clone()
    }

    /// The spanning-tree parent of a vertex (`None` for the root).
    pub fn tree_parent(&self, v: Vertex) -> Option<Vertex> {
        self.parent.get(&v).copied()
    }

    /// The full tree path between two endpoints (inclusive of both), for
    /// tests and hop-count estimates.
    pub fn path(&self, from: NodeId, to: NodeId) -> Vec<Vertex> {
        let up_a = self.root_path(Vertex::Node(from.raw()));
        let up_b = self.root_path(Vertex::Node(to.raw()));
        join_tree_paths(&up_a, &up_b)
    }

    fn root_path(&self, mut v: Vertex) -> Vec<Vertex> {
        let mut path = vec![v];
        while let Some(&p) = self.parent.get(&v) {
            path.push(p);
            v = p;
        }
        path
    }
}

#[derive(Debug)]
struct ViewInner {
    topology: Topology,
    dead: BTreeSet<Vertex>,
    version: u64,
    routes: Routes,
    recomputes: u64,
}

/// The fabric's shared, versioned view of which vertices are dead and
/// what the surviving routes are — the simulation's stand-in for the
/// route-distribution a fabric manager (or a link-state flood) would
/// perform in hardware. Every switch holds a clone (cheap: shared state,
/// like [`FaultInjector`](crate::FaultInjector)); a switch whose failure
/// detector convicts an adjacent vertex calls [`declare_down`], which
/// recomputes a single globally-consistent spanning tree avoiding the
/// whole dead set, and every other switch picks the new table up at its
/// next event (a version compare, one branch in the common case).
///
/// Distributing one global tree — rather than letting each survivor
/// patch its own table from local knowledge — is what keeps route-around
/// loop-free: two switches routing on *different* trees can forward a
/// packet back and forth forever. Updates happen at deterministic event
/// boundaries, so recovery replays bit-for-bit under a fixed seed.
///
/// [`declare_down`]: FabricView::declare_down
#[derive(Clone, Debug)]
pub struct FabricView {
    inner: Rc<RefCell<ViewInner>>,
}

impl FabricView {
    /// Wraps the initial (fault-free) routes over `topology`.
    pub fn new(topology: Topology, routes: Routes) -> Self {
        FabricView {
            inner: Rc::new(RefCell::new(ViewInner {
                topology,
                dead: BTreeSet::new(),
                version: 0,
                routes,
                recomputes: 0,
            })),
        }
    }

    /// Declares `v` dead and recomputes the surviving routes. Returns
    /// `true` if this was news (the version bumped); duplicate verdicts
    /// from independent observers are idempotent.
    pub fn declare_down(&self, v: Vertex) -> bool {
        let mut st = self.inner.borrow_mut();
        if !st.dead.insert(v) {
            return false;
        }
        st.version += 1;
        st.recomputes += 1;
        st.routes = Routes::compute_avoiding(&st.topology, &st.dead);
        true
    }

    /// Declares `v` alive again and recomputes. Returns `true` if `v`
    /// was previously dead.
    pub fn declare_up(&self, v: Vertex) -> bool {
        let mut st = self.inner.borrow_mut();
        if !st.dead.remove(&v) {
            return false;
        }
        st.version += 1;
        st.recomputes += 1;
        st.routes = Routes::compute_avoiding(&st.topology, &st.dead);
        true
    }

    /// Monotone change counter; a switch whose cached table carries an
    /// older version must refresh it.
    pub fn version(&self) -> u64 {
        self.inner.borrow().version
    }

    /// The current routing table for switch `s`.
    pub fn table_for_switch(&self, s: u16) -> Vec<u32> {
        self.inner.borrow().routes.table_for_switch(s)
    }

    /// Vertices currently declared dead, in ascending order.
    pub fn dead_set(&self) -> Vec<Vertex> {
        self.inner.borrow().dead.iter().copied().collect()
    }

    /// True when `v` is currently declared dead.
    pub fn is_dead(&self, v: Vertex) -> bool {
        self.inner.borrow().dead.contains(&v)
    }

    /// Vertices no surviving route reaches (the named partition; includes
    /// the dead vertices themselves). Empty while the survivors are
    /// fully connected.
    pub fn unreachable(&self) -> Vec<Vertex> {
        self.inner.borrow().routes.unreachable().to_vec()
    }

    /// Route recomputations performed over the view's life.
    pub fn recomputes(&self) -> u64 {
        self.inner.borrow().recomputes
    }
}

/// Given root paths of `from` and `to`, the first hop from `from` toward
/// `to` along the tree.
fn next_hop_on_tree(up_from: &[Vertex], up_to: &[Vertex]) -> Vertex {
    let full = join_tree_paths(up_from, up_to);
    full[1]
}

/// Joins two root paths into the tree path `a .. lca .. b`.
fn join_tree_paths(up_a: &[Vertex], up_b: &[Vertex]) -> Vec<Vertex> {
    // Find the lowest common ancestor: scan a's root path for the first
    // vertex present in b's root path.
    let lca_in_a = up_a
        .iter()
        .position(|v| up_b.contains(v))
        .expect("connected tree has an LCA");
    let lca = up_a[lca_in_a];
    let lca_in_b = up_b.iter().position(|&v| v == lca).expect("lca in b");
    let mut path: Vec<Vertex> = up_a[..=lca_in_a].to_vec();
    path.extend(up_b[..lca_in_b].iter().rev().copied());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_routes_through_single_switch() {
        let topo = Topology::star(3);
        let routes = Routes::compute(&topo).unwrap();
        let table = routes.table_for_switch(0);
        // Switch port i is node i (links added in node order).
        assert_eq!(table, vec![0, 1, 2]);
        let p = routes.path(NodeId::new(0), NodeId::new(2));
        assert_eq!(p, vec![Vertex::Node(0), Vertex::Switch(0), Vertex::Node(2)]);
    }

    #[test]
    fn chain_routes_walk_the_line() {
        let topo = Topology::chain(4);
        let routes = Routes::compute(&topo).unwrap();
        let p = routes.path(NodeId::new(0), NodeId::new(3));
        assert_eq!(
            p,
            vec![
                Vertex::Node(0),
                Vertex::Switch(0),
                Vertex::Switch(1),
                Vertex::Switch(2),
                Vertex::Switch(3),
                Vertex::Node(3)
            ]
        );
    }

    #[test]
    fn ring_routing_avoids_the_closing_link() {
        // Tree rooted at switch 0: the 2-0 ring-closing edge is a non-tree
        // edge if BFS reaches 2 through 1 first... with ring(3):
        // links: n0-s0, s0-s1, n1-s1, s1-s2, n2-s2, s2-s0.
        // BFS from s0 explores ports in order: n0, s1, s2 — so s2's parent
        // is s0 and the tree uses the closing link; either way each pair has
        // exactly one tree path.
        let topo = Topology::ring(3);
        let routes = Routes::compute(&topo).unwrap();
        let p01 = routes.path(NodeId::new(0), NodeId::new(1));
        let p12 = routes.path(NodeId::new(1), NodeId::new(2));
        // Paths are simple: no repeated vertices.
        for p in [&p01, &p12] {
            let mut sorted = p.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), p.len(), "path revisits a vertex: {p:?}");
        }
    }

    #[test]
    fn mesh_routes_exist_between_all_pairs() {
        let topo = Topology::mesh(3, 3);
        let routes = Routes::compute(&topo).unwrap();
        for a in 0..9u16 {
            for b in 0..9u16 {
                if a == b {
                    continue;
                }
                let p = routes.path(NodeId::new(a), NodeId::new(b));
                assert!(p.len() >= 3);
                assert_eq!(p[0], Vertex::Node(a));
                assert_eq!(*p.last().unwrap(), Vertex::Node(b));
            }
        }
    }

    #[test]
    fn disconnected_is_rejected() {
        // A switch with no links.
        let topo = Topology::new(1, 2);
        let mut topo = topo;
        topo.link(Vertex::Node(0), Vertex::Switch(0)).unwrap();
        match Routes::compute(&topo) {
            Err(RouteError::Disconnected(v)) => assert_eq!(v, Vertex::Switch(1)),
            other => panic!("expected disconnection, got {other:?}"),
        }
    }

    #[test]
    fn avoiding_a_ring_switch_routes_the_long_way_around() {
        // ring(4): s0-s1-s2-s3-s0 with node i on switch i. With s1 dead,
        // s0 still reaches n2 via the closing edge through s3, and only
        // s1's own endpoint n1 is cut off.
        let topo = Topology::ring(4);
        let dead: BTreeSet<Vertex> = [Vertex::Switch(1)].into();
        let routes = Routes::compute_avoiding(&topo, &dead);
        assert_eq!(routes.unreachable(), &[Vertex::Node(1), Vertex::Switch(1)]);
        // Walk the surviving tables from s0 to n2 and confirm arrival
        // without ever entering s1.
        let mut at = Vertex::Switch(0);
        let mut hops = 0;
        loop {
            match at {
                Vertex::Node(n) => {
                    assert_eq!(n, 2);
                    break;
                }
                Vertex::Switch(sw) => {
                    assert_ne!(sw, 1, "route entered the dead switch");
                    let port = routes.tables[sw as usize][2];
                    assert_ne!(port, u32::MAX, "n2 must stay reachable");
                    at = topo.ports_of(at)[port as usize].0;
                    hops += 1;
                    assert!(hops < 8, "routing loop");
                }
            }
        }
        // Traffic for the dead switch's endpoint is blackholed, not wedged.
        assert_eq!(routes.tables[0][1], u32::MAX);
    }

    #[test]
    fn avoiding_a_chain_cut_names_the_partition() {
        // chain(3): s0-s1-s2. Losing s1 severs s2's side entirely.
        let topo = Topology::chain(3);
        let dead: BTreeSet<Vertex> = [Vertex::Switch(1)].into();
        let routes = Routes::compute_avoiding(&topo, &dead);
        assert_eq!(
            routes.unreachable(),
            &[
                Vertex::Node(1),
                Vertex::Node(2),
                Vertex::Switch(1),
                Vertex::Switch(2)
            ]
        );
        assert_eq!(routes.tables[0][2], u32::MAX, "severed side blackholes");
        assert_ne!(routes.tables[0][0], u32::MAX, "own side still routes");
        // The severed survivor s2 also keeps a partial table: it can
        // still reach its own endpoint even though BFS never found it.
        // (Rooted at s0, s2 is unreached, so its table is all-blackhole;
        // the fabric-level recompute hands every switch the same tree.)
        assert_eq!(routes.tables[2][2], u32::MAX);
    }

    #[test]
    fn route_tables_are_consistent_with_paths() {
        let topo = Topology::chain_of_stars(3, 2);
        let routes = Routes::compute(&topo).unwrap();
        // Walk the table hop by hop from every switch to every node and
        // confirm we arrive.
        for s in 0..topo.switch_count() as u16 {
            for dst in 0..topo.endpoint_count() as u16 {
                let mut at = Vertex::Switch(s);
                let mut hops = 0;
                loop {
                    match at {
                        Vertex::Node(n) => {
                            assert_eq!(n, dst);
                            break;
                        }
                        Vertex::Switch(sw) => {
                            let port = routes.table_for_switch(sw)[dst as usize];
                            at = topo.ports_of(at)[port as usize].0;
                            hops += 1;
                            assert!(hops < 32, "routing loop");
                        }
                    }
                }
            }
        }
    }
}
