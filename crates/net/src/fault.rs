//! Seeded, deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes *what can go wrong* — per-hop frame drop and
//! corruption probabilities, link outage windows, credit-loss probability,
//! and a one-shot HIB rx-FIFO wedge — and a [`FaultInjector`] executes the
//! plan with a [`SimRng`] stream, so a fixed seed replays the exact same
//! fault sequence bit-for-bit. Every link hop consults the injector at
//! launch time; the link-level reliability protocol (checksums, per-link
//! sequence numbers, ACK/NACK retransmission, credit resync) masks what
//! the injector breaks.
//!
//! Since reliability round 2 the link-layer *control* traffic (ACKs,
//! NACKs, credit-resync handshakes) is first-class corruptible wire
//! traffic too: control messages ride in checksummed
//! [`CtrlFrame`](tg_wire::CtrlFrame)s and the injector decides their
//! fate via [`FaultInjector::ctrl_fate`] under separate `ctrl_drop` /
//! `ctrl_corrupt` probabilities (outage windows kill them like anything
//! else on the link). Receivers discard control frames whose checksum
//! fails, and the protocol's sender-side machinery — timeout-driven
//! retransmit, probe retry with fresh tokens, the ack-starvation
//! watchdog — recovers, so no assumption of an incorruptible control
//! plane remains.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tg_sim::{SimRng, SimTime};
use tg_wire::trace::Site;
use tg_wire::{CtrlFrame, NodeId, Packet};

/// One directed link hop, named by its endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId {
    /// Transmitting end.
    pub from: Site,
    /// Receiving end.
    pub to: Site,
}

impl LinkId {
    /// Directed link from `from` to `to`.
    pub fn new(from: Site, to: Site) -> Self {
        LinkId { from, to }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// A scheduled window during which a directed link delivers nothing:
/// data frames and credits launched in `[from, until)` are lost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Outage {
    /// The affected directed link.
    pub link: LinkId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` makes the outage permanent.
    pub until: SimTime,
}

/// A crash-stop window for a whole fault domain (a workstation or a
/// switch): between `from` (inclusive) and `until` (exclusive) the site
/// is *network-silent* — every data frame, control frame and credit on
/// any link touching the site is dropped, in both directions. The
/// component itself keeps running (its memory and protocol state
/// survive, as a crashed-and-rebooted workstation's disk image would);
/// what "crashes" is its network personality, which is exactly the
/// failure the fabric can observe. `until == SimTime::MAX` models a
/// node that never comes back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrashWindow {
    /// The crashed fault domain.
    pub site: Site,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `SimTime::MAX` makes the crash permanent.
    pub until: SimTime,
}

impl CrashWindow {
    /// True when the window covers `now`.
    pub fn covers(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A window during which one HIB's receive pipeline wedges: arrived frames
/// sit in the rx FIFO undrained (and no credits flow back) until the wedge
/// releases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Wedge {
    /// The wedged workstation.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// What can go wrong, and with what probability. Build with the chained
/// setters; an all-zero plan injects nothing.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the injector's RNG stream.
    pub seed: u64,
    /// Per-hop probability that a data frame is dropped in flight.
    pub drop_p: f64,
    /// Per-hop probability that a data frame arrives corrupted.
    pub corrupt_p: f64,
    /// Per-return probability that a flow-control credit is lost.
    pub credit_loss_p: f64,
    /// Per-hop probability that a link-layer control frame (ack, nack,
    /// resync handshake) is dropped in flight.
    pub ctrl_drop_p: f64,
    /// Per-hop probability that a link-layer control frame arrives
    /// corrupted (checksum broken; the receiver discards it).
    pub ctrl_corrupt_p: f64,
    /// Scheduled link outage windows.
    pub outages: Vec<Outage>,
    /// Scheduled crash-stop windows for whole fault domains (nodes and
    /// switches).
    pub crashes: Vec<CrashWindow>,
    /// Optional one-shot HIB rx-FIFO wedge.
    pub wedge: Option<Wedge>,
}

impl FaultPlan {
    /// A plan that injects nothing, with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            corrupt_p: 0.0,
            credit_loss_p: 0.0,
            ctrl_drop_p: 0.0,
            ctrl_corrupt_p: 0.0,
            outages: Vec::new(),
            crashes: Vec::new(),
            wedge: None,
        }
    }

    /// Sets the per-hop frame drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_p = p;
        self
    }

    /// Sets the per-hop frame corruption probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_p = p;
        self
    }

    /// Sets the per-return credit loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn credit_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.credit_loss_p = p;
        self
    }

    /// Sets the per-hop control-frame drop probability (acks, nacks,
    /// credit-resync handshakes).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn ctrl_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.ctrl_drop_p = p;
        self
    }

    /// Sets the per-hop control-frame corruption probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn ctrl_corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.ctrl_corrupt_p = p;
        self
    }

    /// Adds an outage window `[from, until)` on the directed link.
    pub fn outage(mut self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        self.outages.push(Outage { link, from, until });
        self
    }

    /// Adds a permanent outage starting at `from` on the directed link.
    pub fn permanent_outage(self, link: LinkId, from: SimTime) -> Self {
        self.outage(link, from, SimTime::MAX)
    }

    /// Schedules the one-shot HIB rx-FIFO wedge on `node` over
    /// `[from, until)`.
    pub fn wedge(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.wedge = Some(Wedge { node, from, until });
        self
    }

    /// Crashes workstation `node` at `at`. The crash is permanent unless
    /// a later [`FaultPlan::node_restart`] closes the window.
    pub fn node_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push(CrashWindow {
            site: Site::Node(node),
            from: at,
            until: SimTime::MAX,
        });
        self
    }

    /// Restarts workstation `node` at `at`: closes the most recent
    /// still-open crash window for that node.
    ///
    /// # Panics
    ///
    /// Panics if the node has no open crash window, or if `at` precedes
    /// the crash it would close — both are plan bugs, caught eagerly so
    /// a campaign cannot silently run a different schedule than written.
    pub fn node_restart(mut self, node: NodeId, at: SimTime) -> Self {
        let w = self
            .crashes
            .iter_mut()
            .rev()
            .find(|w| w.site == Site::Node(node) && w.until == SimTime::MAX)
            .expect("node_restart without a matching node_crash");
        assert!(w.from <= at, "restart precedes the crash it closes");
        w.until = at;
        self
    }

    /// Takes switch `s` out over `[from, until)`: crash-stop silence on
    /// every link touching the switch, exactly like a node crash.
    pub fn switch_outage(mut self, s: u16, from: SimTime, until: SimTime) -> Self {
        self.crashes.push(CrashWindow {
            site: Site::Switch(s),
            from,
            until,
        });
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.drop_p == 0.0
            && self.corrupt_p == 0.0
            && self.credit_loss_p == 0.0
            && self.ctrl_drop_p == 0.0
            && self.ctrl_corrupt_p == 0.0
            && self.outages.is_empty()
            && self.crashes.is_empty()
            && self.wedge.is_none()
    }

    /// All crash-stop windows, in plan order (for trace reconciliation
    /// and declared-dead filtering in diagnostics).
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// True when `site` is inside one of the plan's crash windows at
    /// `now`.
    pub fn site_down(&self, site: Site, now: SimTime) -> bool {
        self.crashes.iter().any(|w| w.site == site && w.covers(now))
    }
}

/// The fate the injector assigns to one launched data frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameFate {
    /// Delivered intact.
    Deliver,
    /// Lost in flight: the arrival event is never scheduled.
    Drop,
    /// Delivered with a flipped checksum; the receiving link layer will
    /// discard it and NACK.
    Corrupt,
}

/// Running totals of what the injector has actually done.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStats {
    /// Data frames dropped by probability.
    pub drops: u64,
    /// Data frames corrupted.
    pub corrupts: u64,
    /// Data frames lost to an outage window.
    pub outage_drops: u64,
    /// Flow-control credits lost (probability or outage).
    pub credits_lost: u64,
    /// Control frames dropped (probability or outage).
    pub ctrl_drops: u64,
    /// Control frames corrupted (the receiver discards them on checksum
    /// failure — reconciled exactly against fabric control discards).
    pub ctrl_corrupts: u64,
    /// Data frames swallowed by a crashed fault domain (either link
    /// endpoint inside an active crash window).
    pub crash_frame_drops: u64,
    /// Control frames (acks, heartbeats, resyncs…) swallowed by a
    /// crashed fault domain.
    pub crash_ctrl_drops: u64,
    /// Flow-control credits swallowed by a crashed fault domain.
    pub crash_credit_drops: u64,
}

impl FaultStats {
    /// Total data frames that never arrived intact.
    pub fn frames_lost(&self) -> u64 {
        self.drops + self.corrupts + self.outage_drops + self.crash_frame_drops
    }
}

#[derive(Debug)]
struct InjectorState {
    plan: FaultPlan,
    rng: SimRng,
    stats: FaultStats,
}

/// The shared executor of a [`FaultPlan`]. Cloning shares the state (the
/// simulation is single-threaded); every link hop in the fabric holds a
/// clone and consults it in the engine's deterministic delivery order, so
/// the RNG stream — and therefore the fault sequence — is identical on
/// every run with the same seed.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: Rc<RefCell<InjectorState>>,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::new(plan.seed);
        FaultInjector {
            state: Rc::new(RefCell::new(InjectorState {
                plan,
                rng,
                stats: FaultStats::default(),
            })),
        }
    }

    /// True if an outage window covers `now` on the directed link.
    pub fn outage_active(&self, link: LinkId, now: SimTime) -> bool {
        let st = self.state.borrow();
        st.plan
            .outages
            .iter()
            .any(|o| o.link == link && o.from <= now && now < o.until)
    }

    /// True when `site` is inside an active crash-stop window at `now`.
    pub fn site_down(&self, site: Site, now: SimTime) -> bool {
        self.state.borrow().plan.site_down(site, now)
    }

    /// True when either endpoint of the directed link is crashed at
    /// `now` — nothing crosses such a link, in either direction.
    pub fn link_crashed(&self, link: LinkId, now: SimTime) -> bool {
        let st = self.state.borrow();
        st.plan.site_down(link.from, now) || st.plan.site_down(link.to, now)
    }

    /// Decides the fate of a data frame launched on `link` at `now`,
    /// corrupting `packet` in place when the fate is
    /// [`FrameFate::Corrupt`]. One injector-RNG consultation per hop.
    pub fn frame_fate(&self, link: LinkId, now: SimTime, packet: &mut Packet) -> FrameFate {
        let mut st = self.state.borrow_mut();
        // Crash-stop silence is checked first and consumes no RNG, so a
        // plan that only adds crash windows replays the same probability
        // stream as the plan without them.
        if st.plan.site_down(link.from, now) || st.plan.site_down(link.to, now) {
            st.stats.crash_frame_drops += 1;
            return FrameFate::Drop;
        }
        if st
            .plan
            .outages
            .iter()
            .any(|o| o.link == link && o.from <= now && now < o.until)
        {
            st.stats.outage_drops += 1;
            return FrameFate::Drop;
        }
        let drop_p = st.plan.drop_p;
        if drop_p > 0.0 && st.rng.chance(drop_p) {
            st.stats.drops += 1;
            return FrameFate::Drop;
        }
        let corrupt_p = st.plan.corrupt_p;
        if corrupt_p > 0.0 && st.rng.chance(corrupt_p) {
            st.stats.corrupts += 1;
            // Flip a bit of the wire checksum: detectable, recoverable.
            packet.checksum ^= 0x8000_0001;
            return FrameFate::Corrupt;
        }
        FrameFate::Deliver
    }

    /// Decides the fate of a link-layer control frame (ack, nack, resync
    /// handshake) launched on `link` at `now`, breaking `frame`'s
    /// checksum in place when the fate is [`FrameFate::Corrupt`]. Zero
    /// control probabilities consume no RNG, so plans written before the
    /// control plane became corruptible replay identical fault streams.
    pub fn ctrl_fate(&self, link: LinkId, now: SimTime, frame: &mut CtrlFrame) -> FrameFate {
        let mut st = self.state.borrow_mut();
        if st.plan.site_down(link.from, now) || st.plan.site_down(link.to, now) {
            st.stats.crash_ctrl_drops += 1;
            return FrameFate::Drop;
        }
        if st
            .plan
            .outages
            .iter()
            .any(|o| o.link == link && o.from <= now && now < o.until)
        {
            st.stats.ctrl_drops += 1;
            return FrameFate::Drop;
        }
        let drop_p = st.plan.ctrl_drop_p;
        if drop_p > 0.0 && st.rng.chance(drop_p) {
            st.stats.ctrl_drops += 1;
            return FrameFate::Drop;
        }
        let corrupt_p = st.plan.ctrl_corrupt_p;
        if corrupt_p > 0.0 && st.rng.chance(corrupt_p) {
            st.stats.ctrl_corrupts += 1;
            frame.corrupt();
            return FrameFate::Corrupt;
        }
        FrameFate::Deliver
    }

    /// Decides whether a flow-control credit returned on `link` at `now`
    /// is lost.
    pub fn credit_lost(&self, link: LinkId, now: SimTime) -> bool {
        let mut st = self.state.borrow_mut();
        if st.plan.site_down(link.from, now) || st.plan.site_down(link.to, now) {
            st.stats.crash_credit_drops += 1;
            return true;
        }
        if st
            .plan
            .outages
            .iter()
            .any(|o| o.link == link && o.from <= now && now < o.until)
        {
            st.stats.credits_lost += 1;
            return true;
        }
        let p = st.plan.credit_loss_p;
        if p > 0.0 && st.rng.chance(p) {
            st.stats.credits_lost += 1;
            return true;
        }
        false
    }

    /// If `node`'s rx pipeline is wedged at `now`, returns when the wedge
    /// releases.
    pub fn wedged_until(&self, node: NodeId, now: SimTime) -> Option<SimTime> {
        let st = self.state.borrow();
        st.plan
            .wedge
            .filter(|w| w.node == node && w.from <= now && now < w.until)
            .map(|w| w.until)
    }

    /// Running fault totals.
    pub fn stats(&self) -> FaultStats {
        self.state.borrow().stats
    }

    /// The plan being executed.
    pub fn plan(&self) -> FaultPlan {
        self.state.borrow().plan.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::WireMsg;

    fn pkt() -> Packet {
        let mut p = Packet::new(
            NodeId::new(0),
            NodeId::new(1),
            WireMsg::WriteAck { tag: 0 },
            0,
        );
        p.link_seq = 1;
        p.seal();
        p
    }

    fn link() -> LinkId {
        LinkId::new(Site::Node(NodeId::new(0)), Site::Switch(0))
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::new(1));
        let mut p = pkt();
        for _ in 0..1000 {
            assert_eq!(
                inj.frame_fate(link(), SimTime::from_ns(5), &mut p),
                FrameFate::Deliver
            );
            assert!(!inj.credit_lost(link(), SimTime::from_ns(5)));
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(inj.plan().is_zero());
    }

    #[test]
    fn same_seed_same_fates() {
        let fates = |seed| {
            let inj = FaultInjector::new(FaultPlan::new(seed).drop(0.3).corrupt(0.2));
            (0..200)
                .map(|i| {
                    let mut p = pkt();
                    inj.frame_fate(link(), SimTime::from_ns(i), &mut p)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(42), fates(42));
        assert_ne!(fates(42), fates(43), "different seeds should diverge");
    }

    #[test]
    fn corruption_breaks_the_checksum() {
        let inj = FaultInjector::new(FaultPlan::new(7).corrupt(1.0));
        let mut p = pkt();
        assert!(p.checksum_ok());
        assert_eq!(
            inj.frame_fate(link(), SimTime::ZERO, &mut p),
            FrameFate::Corrupt
        );
        assert!(!p.checksum_ok());
        assert_eq!(inj.stats().corrupts, 1);
    }

    #[test]
    fn outage_window_drops_everything_inside_it() {
        let inj = FaultInjector::new(FaultPlan::new(7).outage(
            link(),
            SimTime::from_ns(100),
            SimTime::from_ns(200),
        ));
        let mut p = pkt();
        assert_eq!(
            inj.frame_fate(link(), SimTime::from_ns(99), &mut p),
            FrameFate::Deliver
        );
        assert_eq!(
            inj.frame_fate(link(), SimTime::from_ns(100), &mut p),
            FrameFate::Drop
        );
        assert_eq!(
            inj.frame_fate(link(), SimTime::from_ns(199), &mut p),
            FrameFate::Drop
        );
        assert_eq!(
            inj.frame_fate(link(), SimTime::from_ns(200), &mut p),
            FrameFate::Deliver
        );
        // The other direction is unaffected.
        let back = LinkId::new(link().to, link().from);
        assert_eq!(
            inj.frame_fate(back, SimTime::from_ns(150), &mut p),
            FrameFate::Deliver
        );
        assert!(inj.credit_lost(link(), SimTime::from_ns(150)));
        assert_eq!(inj.stats().outage_drops, 2);
    }

    #[test]
    fn ctrl_frames_are_first_class_fault_targets() {
        use tg_wire::CtrlMsg;
        let inj = FaultInjector::new(FaultPlan::new(9).ctrl_corrupt(1.0));
        let mut f = CtrlFrame::seal(CtrlMsg::Ack { seq: 3, sack: 0 });
        assert_eq!(
            inj.ctrl_fate(link(), SimTime::ZERO, &mut f),
            FrameFate::Corrupt
        );
        assert!(!f.checksum_ok(), "corruption must break the checksum");
        assert_eq!(inj.stats().ctrl_corrupts, 1);

        let inj = FaultInjector::new(FaultPlan::new(9).ctrl_drop(1.0));
        let mut f = CtrlFrame::seal(CtrlMsg::SyncReq { token: 1 });
        assert_eq!(
            inj.ctrl_fate(link(), SimTime::ZERO, &mut f),
            FrameFate::Drop
        );
        assert_eq!(inj.stats().ctrl_drops, 1);

        // An outage window kills control traffic like everything else.
        let inj = FaultInjector::new(FaultPlan::new(9).outage(
            link(),
            SimTime::from_ns(100),
            SimTime::from_ns(200),
        ));
        let mut f = CtrlFrame::seal(CtrlMsg::Ack { seq: 1, sack: 0 });
        assert_eq!(
            inj.ctrl_fate(link(), SimTime::from_ns(150), &mut f),
            FrameFate::Drop
        );
        assert_eq!(inj.stats().ctrl_drops, 1);

        // Zero control probabilities consume no RNG: the data-frame fault
        // stream is unchanged by interleaved control consultations.
        let with_ctrl = {
            let inj = FaultInjector::new(FaultPlan::new(42).drop(0.3));
            (0..100)
                .map(|i| {
                    let mut c = CtrlFrame::seal(CtrlMsg::Ack { seq: i, sack: 0 });
                    assert_eq!(
                        inj.ctrl_fate(link(), SimTime::from_ns(i), &mut c),
                        FrameFate::Deliver
                    );
                    let mut p = pkt();
                    inj.frame_fate(link(), SimTime::from_ns(i), &mut p)
                })
                .collect::<Vec<_>>()
        };
        let without = {
            let inj = FaultInjector::new(FaultPlan::new(42).drop(0.3));
            (0..100)
                .map(|i| {
                    let mut p = pkt();
                    inj.frame_fate(link(), SimTime::from_ns(i), &mut p)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(with_ctrl, without);
    }

    #[test]
    fn crash_windows_silence_every_link_touching_the_site() {
        use tg_wire::CtrlMsg;
        let n0 = NodeId::new(0);
        let inj = FaultInjector::new(
            FaultPlan::new(5)
                .node_crash(n0, SimTime::from_us(10))
                .node_restart(n0, SimTime::from_us(20)),
        );
        let up = link(); // node0 -> switch0
        let down = LinkId::new(link().to, link().from);
        let far = LinkId::new(Site::Node(NodeId::new(2)), Site::Switch(0));
        let mut p = pkt();
        // Before the crash everything flows.
        assert_eq!(
            inj.frame_fate(up, SimTime::from_us(9), &mut p),
            FrameFate::Deliver
        );
        // Inside the window: both directions dead, ctrl and credits too.
        for t in [SimTime::from_us(10), SimTime::from_us(19)] {
            assert!(inj.site_down(Site::Node(n0), t));
            assert!(inj.link_crashed(up, t) && inj.link_crashed(down, t));
            assert_eq!(inj.frame_fate(up, t, &mut p), FrameFate::Drop);
            assert_eq!(inj.frame_fate(down, t, &mut p), FrameFate::Drop);
            let mut f = CtrlFrame::seal(CtrlMsg::Heartbeat { origin: n0, seq: 1 });
            assert_eq!(inj.ctrl_fate(down, t, &mut f), FrameFate::Drop);
            assert!(inj.credit_lost(up, t));
            // A link not touching the crashed site is unaffected.
            assert_eq!(inj.frame_fate(far, t, &mut p), FrameFate::Deliver);
        }
        // The restart closes the window.
        assert!(!inj.site_down(Site::Node(n0), SimTime::from_us(20)));
        assert_eq!(
            inj.frame_fate(up, SimTime::from_us(20), &mut p),
            FrameFate::Deliver
        );
        let s = inj.stats();
        assert_eq!(s.crash_frame_drops, 4);
        assert_eq!(s.crash_ctrl_drops, 2);
        assert_eq!(s.crash_credit_drops, 2);
        assert!(!inj.plan().is_zero());
    }

    #[test]
    fn switch_outage_is_a_crash_window_on_the_switch() {
        let inj = FaultInjector::new(FaultPlan::new(5).switch_outage(
            0,
            SimTime::from_us(1),
            SimTime::from_us(2),
        ));
        let mut p = pkt();
        assert!(inj.site_down(Site::Switch(0), SimTime::from_us(1)));
        assert_eq!(
            inj.frame_fate(link(), SimTime::from_us(1), &mut p),
            FrameFate::Drop
        );
        assert_eq!(
            inj.frame_fate(link(), SimTime::from_us(2), &mut p),
            FrameFate::Deliver
        );
    }

    #[test]
    fn crash_windows_consume_no_rng() {
        // Interleaving crash-window consultations (hit or miss) must not
        // perturb the probability stream: same fates with and without.
        let fates = |with_crash: bool| {
            let mut plan = FaultPlan::new(42).drop(0.3);
            if with_crash {
                plan = plan.node_crash(NodeId::new(7), SimTime::from_us(1));
            }
            let inj = FaultInjector::new(plan);
            let dead = LinkId::new(Site::Node(NodeId::new(7)), Site::Switch(0));
            (0..200)
                .map(|_i| {
                    if with_crash {
                        // A consultation that hits the window…
                        let mut q = pkt();
                        inj.frame_fate(dead, SimTime::from_us(2), &mut q);
                    }
                    // …leaves the live link's stream untouched.
                    let mut p = pkt();
                    inj.frame_fate(link(), SimTime::from_us(2), &mut p)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(true), fates(false));
    }

    #[test]
    #[should_panic(expected = "node_restart without a matching node_crash")]
    fn restart_requires_a_crash() {
        let _ = FaultPlan::new(1).node_restart(NodeId::new(0), SimTime::from_us(1));
    }

    #[test]
    fn wedge_reports_release_time() {
        let n = NodeId::new(3);
        let inj = FaultInjector::new(FaultPlan::new(1).wedge(
            n,
            SimTime::from_us(1),
            SimTime::from_us(2),
        ));
        assert_eq!(inj.wedged_until(n, SimTime::from_ns(900)), None);
        assert_eq!(
            inj.wedged_until(n, SimTime::from_us(1)),
            Some(SimTime::from_us(2))
        );
        assert_eq!(inj.wedged_until(NodeId::new(4), SimTime::from_us(1)), None);
        assert_eq!(inj.wedged_until(n, SimTime::from_us(2)), None);
    }
}
