//! The cut-through switch component.

use tg_sim::{Component, Ctx, SimTime};
use tg_wire::trace::{PacketEvent, SharedProbe, Site, Stage};
use tg_wire::{Packet, TimingConfig};

use crate::event::{NetEvent, NetMessage};
use crate::port::{RxFifo, TxPort};

/// Traffic counters for one switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwitchStats {
    /// Packets forwarded.
    pub packets: u64,
    /// Payload + header bytes forwarded.
    pub bytes: u64,
    /// Forwarding attempts deferred for want of credit or a busy output.
    pub blocked: u64,
}

/// A Telegraphos switch: one input FIFO per port, a routing table mapping
/// destination nodes to output ports, round-robin arbitration across
/// inputs, and credit-based back-pressure on every link.
///
/// Forwarding a packet costs the configured cut-through latency plus
/// serialization on the output link; a credit is returned to the upstream
/// sender the moment the packet leaves the input FIFO.
#[derive(Debug)]
pub struct Switch {
    name: String,
    fifos: Vec<RxFifo>,
    out: Vec<Option<TxPort>>,
    /// dst node index -> output port.
    table: Vec<u32>,
    timing: TimingConfig,
    /// Per-output-port round-robin pointer: the input to consider first the
    /// next time this output is free. A single shared pointer would let
    /// traffic on one output reset the arbitration state of another and
    /// starve high-numbered inputs under saturation.
    rr_next: Vec<usize>,
    fifo_capacity: u32,
    stats: SwitchStats,
    /// Observability sink; `None` (the default) costs one branch per hook.
    probe: Option<SharedProbe>,
    /// This switch's fabric index, reported as the probe [`Site`].
    site: Site,
}

impl Switch {
    /// Creates a switch with `ports` ports and the given routing table
    /// (`table[dst.index()]` = output port). Ports must then be attached
    /// with [`Switch::attach_port`] before traffic flows.
    pub fn new(name: String, ports: usize, table: Vec<u32>, timing: TimingConfig) -> Self {
        Switch {
            name,
            fifos: Vec::new(),
            out: (0..ports).map(|_| None).collect(),
            table,
            timing,
            rr_next: Vec::new(),
            fifo_capacity: 8,
            stats: SwitchStats::default(),
            probe: None,
            site: Site::Switch(0),
        }
    }

    /// Installs a packet-lifecycle probe, reporting this switch as fabric
    /// index `index` in emitted events.
    pub fn set_probe(&mut self, probe: SharedProbe, index: u16) {
        self.probe = Some(probe);
        self.site = Site::Switch(index);
    }

    fn emit(&self, at: SimTime, packet: &Packet, stage: Stage) {
        if let Some(probe) = &self.probe {
            probe.packet(PacketEvent {
                at,
                trace: packet.trace_id(),
                parent: None,
                site: self.site,
                stage,
                kind: packet.msg.kind_str(),
                bytes: packet.size_bytes(),
            });
        }
    }

    /// Overrides the per-port input FIFO capacity (must match the credits
    /// granted to upstream senders; the network builder keeps these in
    /// sync).
    pub fn set_fifo_capacity(&mut self, cap: u32) {
        assert!(self.fifos.is_empty(), "set capacity before traffic");
        self.fifo_capacity = cap;
    }

    /// Wires output port `port` (and implicitly its input FIFO).
    ///
    /// # Panics
    ///
    /// Panics if the port index is out of range or already attached.
    pub fn attach_port(&mut self, port: u32, tx: TxPort) {
        let slot = self
            .out
            .get_mut(port as usize)
            .expect("port index in range");
        assert!(slot.is_none(), "port attached twice");
        *slot = Some(tx);
        while self.fifos.len() < self.out.len() {
            let cap = self.fifo_capacity;
            self.fifos.push(RxFifo::new(cap));
            self.rr_next.push(0);
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Deepest input-FIFO occupancy seen on any port.
    pub fn max_fifo_high_water(&self) -> u32 {
        self.fifos.iter().map(RxFifo::high_water).max().unwrap_or(0)
    }

    /// Packets currently queued across all input FIFOs.
    pub fn fifo_depth_total(&self) -> usize {
        self.fifos.iter().map(RxFifo::len).sum()
    }

    /// Total simulated time this switch's output ports spent blocked on
    /// credits (summed across ports; see [`TxPort::credit_stall`]).
    pub fn credit_stall(&self) -> SimTime {
        self.out
            .iter()
            .flatten()
            .map(TxPort::credit_stall)
            .fold(SimTime::ZERO, |acc, t| acc + t)
    }

    fn route(&self, packet: &Packet) -> u32 {
        let port = self.table[packet.dst.index()];
        assert_ne!(port, u32::MAX, "no route for {}", packet.dst);
        port
    }

    /// The input port whose head is routed to `out_port`, round-robin from
    /// this output's arbitration pointer.
    fn pick_input(&self, out_port: usize) -> Option<usize> {
        let nports = self.fifos.len();
        let start = self.rr_next[out_port];
        for k in 0..nports {
            let in_port = (start + k) % nports;
            if let Some(packet) = self.fifos[in_port].head() {
                if self.route(packet) as usize == out_port {
                    return Some(in_port);
                }
            }
        }
        None
    }

    /// Forwards as many FIFO heads as ports allow: each free output port
    /// arbitrates round-robin over the inputs requesting it.
    fn pump<M: NetMessage>(&mut self, ctx: &mut Ctx<'_, M>) {
        let nports = self.fifos.len();
        loop {
            let mut progressed = false;
            for out_port in 0..nports {
                let ready = self.out[out_port]
                    .as_ref()
                    .map(TxPort::ready)
                    .unwrap_or(false);
                let Some(in_port) = self.pick_input(out_port) else {
                    continue;
                };
                if !ready {
                    self.stats.blocked += 1;
                    // Start the credit-stall clock when it is specifically
                    // credits (not a busy wire) holding this output back.
                    if let Some(tx) = self.out[out_port].as_mut() {
                        tx.note_blocked(ctx.now());
                    }
                    continue;
                }
                let packet = self.fifos[in_port].pop().expect("head checked");
                self.emit(ctx.now(), &packet, Stage::SwitchTx);
                // Return a credit to whoever feeds this input port: the
                // same neighbor our own output port `in_port` points at,
                // because links come in bidirectional pairs.
                let upstream = {
                    let p = self.out[in_port].as_ref().expect("paired port attached");
                    (p.neighbor(), p.neighbor_port())
                };
                ctx.send(
                    upstream.0,
                    self.timing.link_prop,
                    M::from_net(NetEvent::Credit { port: upstream.1 }),
                );
                self.stats.packets += 1;
                self.stats.bytes += u64::from(packet.size_bytes());
                let tx = self.out[out_port].as_mut().expect("checked ready");
                let times = tx.launch(&packet, &self.timing);
                let lat = self.timing.switch_latency;
                let (nbr, nbr_port) = (tx.neighbor(), tx.neighbor_port());
                ctx.send(
                    nbr,
                    lat + times.arrival,
                    M::from_net(NetEvent::Arrive {
                        port: nbr_port,
                        packet,
                    }),
                );
                ctx.send_self(
                    lat + times.free,
                    M::from_net(NetEvent::PumpOut {
                        port: out_port as u32,
                    }),
                );
                self.rr_next[out_port] = (in_port + 1) % nports;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

impl<M: NetMessage> Component<M> for Switch {
    fn on_event(&mut self, ev: M, ctx: &mut Ctx<'_, M>) {
        let ev = match ev.into_net() {
            Ok(ev) => ev,
            Err(_) => panic!("switch {} received a non-network event", self.name),
        };
        match ev {
            NetEvent::Arrive { port, packet } => {
                self.emit(ctx.now(), &packet, Stage::SwitchEnqueue);
                self.fifos[port as usize].push(packet);
                self.pump(ctx);
            }
            NetEvent::Credit { port } => {
                self.out[port as usize]
                    .as_mut()
                    .expect("credited port attached")
                    .on_credit_at(ctx.now());
                self.pump(ctx);
            }
            NetEvent::PumpOut { port } => {
                self.out[port as usize]
                    .as_mut()
                    .expect("pumped port attached")
                    .on_free();
                self.pump(ctx);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// Unit tests for the switch live in tests/network.rs (they need endpoints
// and an engine); pure routing/port logic is tested in `route` and `port`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_zero() {
        let s = Switch::new("s".into(), 2, vec![0, 1], TimingConfig::telegraphos_i());
        assert_eq!(s.stats(), SwitchStats::default());
        assert_eq!(s.max_fifo_high_water(), 0);
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_rejected() {
        let mut s = Switch::new("s".into(), 1, vec![0], TimingConfig::telegraphos_i());
        let id = {
            struct Noop;
            impl Component<NetEvent> for Noop {
                fn on_event(&mut self, _: NetEvent, _: &mut Ctx<'_, NetEvent>) {}
                fn name(&self) -> &str {
                    "noop"
                }
            }
            let mut eng: tg_sim::Engine<NetEvent> = tg_sim::Engine::new();
            eng.add(Noop)
        };
        s.attach_port(0, TxPort::new(id, 0, 8));
        s.attach_port(0, TxPort::new(id, 0, 8));
    }
}
