//! The cut-through switch component.

use std::collections::BTreeMap;

use tg_sim::{Component, Ctx, SimTime};
use tg_wire::trace::{PacketEvent, SharedProbe, Site, Stage, TraceId};
use tg_wire::{CtrlFrame, CtrlMsg, NodeId, Packet, TimingConfig};

use crate::detect::{HeartbeatDetector, Liveness};
use crate::event::{NetEvent, NetMessage};
use crate::fault::{FaultInjector, FrameFate, LinkId};
use crate::link::{CreditLedger, LinkError, LinkRx, RelParams, RxVerdict, StalledLink};
use crate::port::{PortSnapshot, RxFifo, TimerAction, TxPort};
use crate::route::FabricView;
use crate::topology::Vertex;

/// Traffic counters for one switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwitchStats {
    /// Packets forwarded.
    pub packets: u64,
    /// Payload + header bytes forwarded.
    pub bytes: u64,
    /// Forwarding attempts deferred for want of credit or a busy output.
    pub blocked: u64,
    /// Packets dropped (counted, credit returned) because no surviving
    /// route reaches their destination — the graceful degradation of a
    /// partitioned fabric, in place of the old no-route panic.
    pub blackholed: u64,
}

/// The fabric vertex at the far end of a port's directed link.
fn vertex_of_site(s: Site) -> Vertex {
    match s {
        Site::Switch(i) => Vertex::Switch(i),
        Site::Node(n) => Vertex::Node(n.raw()),
    }
}

/// A Telegraphos switch: one input FIFO per port, a routing table mapping
/// destination nodes to output ports, round-robin arbitration across
/// inputs, and credit-based back-pressure on every link.
///
/// Forwarding a packet costs the configured cut-through latency plus
/// serialization on the output link; a credit is returned to the upstream
/// sender the moment the packet leaves the input FIFO.
///
/// With [`Switch::set_reliability`] the switch additionally runs the
/// link-level reliability protocol on every port: arriving frames are
/// checksum- and sequence-verified by a per-input [`LinkRx`], acknowledged
/// or NACKed, and each output's [`TxPort`] buffers frames for go-back-N
/// retransmission. A [`FaultInjector`] installed with
/// [`Switch::set_injector`] then decides the fate of every launched frame
/// and returned credit.
#[derive(Debug)]
pub struct Switch {
    name: String,
    fifos: Vec<RxFifo>,
    out: Vec<Option<TxPort>>,
    /// dst node index -> output port.
    table: Vec<u32>,
    timing: TimingConfig,
    /// Per-output-port round-robin pointer: the input to consider first the
    /// next time this output is free. A single shared pointer would let
    /// traffic on one output reset the arbitration state of another and
    /// starve high-numbered inputs under saturation.
    rr_next: Vec<usize>,
    fifo_capacity: u32,
    /// The pending-work set: output ports whose state changed since the
    /// last pump (new routed arrival, freed wire, returned credit, ack,
    /// armed retransmission). `pump` examines only these, so quiescent
    /// ports cost nothing; every event handler marks the ports it touches.
    pending: Vec<bool>,
    /// Count of set bits in `pending`, for the O(1) quiescent fast path.
    pending_count: usize,
    /// Ports examined during the current pump call; only these can need a
    /// recovery timer (re)armed, since `TxPort::poll_timer` is a pure
    /// function of port state and these are the only ports whose state
    /// changed since the last pump armed everything it touched.
    touched: Vec<bool>,
    stats: SwitchStats,
    /// Observability sink; `None` (the default) costs one branch per hook.
    probe: Option<SharedProbe>,
    /// This switch's fabric index, reported as the probe [`Site`].
    site: Site,
    /// Per-input receive-side link-layer state; `None` entries mean the
    /// reliability protocol is off on that port.
    rx_links: Vec<Option<LinkRx>>,
    reliability: Option<RelParams>,
    injector: Option<FaultInjector>,
    /// Neighbor-originated protocol violations and dead-link declarations
    /// observed so far.
    errors: Vec<LinkError>,
    /// Control frames discarded because their checksum failed (the
    /// injector corrupted them in flight).
    ctrl_discards: u64,
    /// Per-port failure detector over heartbeat arrivals; present when
    /// the reliability parameters enable heartbeats. Ports are watched
    /// lazily, from their first beacon.
    detector: Option<HeartbeatDetector>,
    /// Per-origin highest heartbeat sequence flooded so far: the dedupe
    /// that keeps beacon floods from circulating forever on cyclic
    /// topologies.
    hb_last: BTreeMap<u16, u64>,
    /// The fabric's shared dead-set + route view; `None` leaves the
    /// boot-time table in place forever.
    view: Option<FabricView>,
    /// Version of `view` the cached `table` reflects.
    view_version: u64,
    /// Times this switch refreshed its table from the view.
    route_refreshes: u64,
}

impl Switch {
    /// Creates a switch with `ports` ports and the given routing table
    /// (`table[dst.index()]` = output port). Ports must then be attached
    /// with [`Switch::attach_port`] before traffic flows.
    pub fn new(name: String, ports: usize, table: Vec<u32>, timing: TimingConfig) -> Self {
        Switch {
            name,
            fifos: Vec::new(),
            out: (0..ports).map(|_| None).collect(),
            table,
            timing,
            rr_next: Vec::new(),
            fifo_capacity: 8,
            pending: Vec::new(),
            pending_count: 0,
            touched: Vec::new(),
            stats: SwitchStats::default(),
            probe: None,
            site: Site::Switch(0),
            rx_links: Vec::new(),
            reliability: None,
            injector: None,
            errors: Vec::new(),
            ctrl_discards: 0,
            detector: None,
            hb_last: BTreeMap::new(),
            view: None,
            view_version: 0,
            route_refreshes: 0,
        }
    }

    /// Installs a packet-lifecycle probe, reporting this switch as fabric
    /// index `index` in emitted events.
    pub fn set_probe(&mut self, probe: SharedProbe, index: u16) {
        self.probe = Some(probe);
        self.site = Site::Switch(index);
    }

    /// Sets this switch's fabric index (the [`Site`] used in probe events
    /// and link diagnostics) without installing a probe.
    pub fn set_site(&mut self, index: u16) {
        self.site = Site::Switch(index);
    }

    /// Turns on the link-level reliability protocol for every port. Must be
    /// called before [`Switch::attach_port`].
    pub fn set_reliability(&mut self, params: RelParams) {
        assert!(self.fifos.is_empty(), "set reliability before wiring ports");
        if params.heartbeat_every.is_some() {
            self.detector = Some(HeartbeatDetector::new(
                params.peer_timeout,
                params.phi_factor,
            ));
        }
        self.reliability = Some(params);
    }

    /// Installs the shared fabric view this switch reports peer verdicts
    /// to and refreshes its routing table from.
    pub fn set_fabric(&mut self, view: FabricView) {
        self.view_version = view.version();
        self.view = Some(view);
    }

    /// Installs the fault injector consulted at every frame launch and
    /// credit return.
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    fn emit(&self, at: SimTime, packet: &Packet, stage: Stage) {
        if let Some(probe) = &self.probe {
            probe.packet(PacketEvent {
                at,
                trace: packet.trace_id(),
                parent: None,
                site: self.site,
                stage,
                kind: packet.msg.kind_str(),
                bytes: packet.size_bytes(),
            });
        }
    }

    /// Marks a credit-resync probe launch in the packet trace. Probes carry
    /// no [`Packet`], so the event is keyed by the switch index and the
    /// handshake token instead of an inject sequence.
    fn emit_resync(&self, at: SimTime, token: u64) {
        if let Some(probe) = &self.probe {
            let Site::Switch(idx) = self.site else {
                return;
            };
            probe.packet(PacketEvent {
                at,
                trace: TraceId::packet(NodeId::new(idx), token),
                parent: None,
                site: self.site,
                stage: Stage::CreditResync,
                kind: "credit-resync",
                bytes: 0,
            });
        }
    }

    /// Overrides the per-port input FIFO capacity (must match the credits
    /// granted to upstream senders; the network builder keeps these in
    /// sync).
    pub fn set_fifo_capacity(&mut self, cap: u32) {
        assert!(self.fifos.is_empty(), "set capacity before traffic");
        self.fifo_capacity = cap;
    }

    /// Wires output port `port` (and implicitly its input FIFO). If
    /// reliability is on, the transmit port is enrolled in the protocol.
    ///
    /// # Panics
    ///
    /// Panics if the port index is out of range or already attached.
    pub fn attach_port(&mut self, port: u32, mut tx: TxPort) {
        if let Some(params) = self.reliability {
            if !tx.is_reliable() {
                tx.enable_reliability(params);
            }
        }
        let slot = self
            .out
            .get_mut(port as usize)
            .expect("port index in range");
        assert!(slot.is_none(), "port attached twice");
        *slot = Some(tx);
        while self.fifos.len() < self.out.len() {
            let cap = self.fifo_capacity;
            self.fifos.push(RxFifo::new(cap));
            self.rr_next.push(0);
            self.pending.push(false);
            self.touched.push(false);
            self.rx_links
                .push(self.reliability.map(|p| LinkRx::for_params(&p)));
        }
    }

    /// Adds `port` to the pending-work set examined by the next pump.
    fn mark_pending(&mut self, port: usize) {
        if let Some(p) = self.pending.get_mut(port) {
            if !*p {
                *p = true;
                self.pending_count += 1;
            }
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Deepest input-FIFO occupancy seen on any port.
    pub fn max_fifo_high_water(&self) -> u32 {
        self.fifos.iter().map(RxFifo::high_water).max().unwrap_or(0)
    }

    /// Packets currently queued across all input FIFOs.
    pub fn fifo_depth_total(&self) -> usize {
        self.fifos.iter().map(RxFifo::len).sum()
    }

    /// Total simulated time this switch's output ports spent blocked on
    /// credits (summed across ports; see [`TxPort::credit_stall`]).
    pub fn credit_stall(&self) -> SimTime {
        self.out
            .iter()
            .flatten()
            .map(TxPort::credit_stall)
            .fold(SimTime::ZERO, |acc, t| acc + t)
    }

    /// Total frames retransmitted across all output ports.
    pub fn retransmits(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::retransmits).sum()
    }

    /// Completed credit-resync handshakes across all output ports.
    pub fn resyncs(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::resyncs).sum()
    }

    /// Frames discarded by the receive link layer (corrupt + out of
    /// sequence), across all input ports.
    pub fn rx_discards(&self) -> u64 {
        self.rx_links
            .iter()
            .flatten()
            .map(|rx| rx.corrupt_discards() + rx.seq_discards())
            .sum()
    }

    /// Frames NACKed for landing beyond the reorder window (go-back-N:
    /// past the expected frame), across all input ports.
    pub fn rx_gap_discards(&self) -> u64 {
        self.rx_links
            .iter()
            .flatten()
            .map(LinkRx::gap_discards)
            .sum()
    }

    /// Credit-resync probes issued across all output ports.
    pub fn resync_probes(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::resync_probes).sum()
    }

    /// Payload + header bytes retransmitted across all output ports.
    pub fn retx_bytes(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::retx_bytes).sum()
    }

    /// Control frames discarded for a failed checksum, across all ports.
    pub fn ctrl_discards(&self) -> u64 {
        self.ctrl_discards
    }

    /// (down verdicts, up transitions) this switch's port detector has
    /// issued over its life.
    pub fn peer_transitions(&self) -> (u64, u64) {
        self.detector
            .as_ref()
            .map_or((0, 0), HeartbeatDetector::transition_counts)
    }

    /// Packets dropped for want of a surviving route.
    pub fn blackholed(&self) -> u64 {
        self.stats.blackholed
    }

    /// Times this switch refreshed its table from the fabric view.
    pub fn route_refreshes(&self) -> u64 {
        self.route_refreshes
    }

    /// Frames abandoned by link-epoch resets across all output ports.
    pub fn abandoned(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::abandoned).sum()
    }

    /// Link-epoch resets (peer revivals) across all output ports.
    pub fn revivals(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::revivals).sum()
    }

    /// Frames flushed from reorder windows by epoch resets, across all
    /// input ports.
    pub fn reset_flushes(&self) -> u64 {
        self.rx_links
            .iter()
            .flatten()
            .map(LinkRx::reset_flushes)
            .sum()
    }

    /// Stale pre-epoch credits swallowed after revivals, across ports.
    pub fn stale_credits(&self) -> u64 {
        self.out.iter().flatten().map(TxPort::stale_credits).sum()
    }

    /// Frames currently parked in SACK reorder windows, across all input
    /// ports (must be zero at quiescence).
    pub fn reorder_depth_total(&self) -> usize {
        self.rx_links
            .iter()
            .flatten()
            .map(LinkRx::reorder_depth)
            .sum()
    }

    /// Per-port statistics: one snapshot per attached output port, pairing
    /// that port's transmit side (the directed link it drives) with the
    /// input FIFO fed by the reverse hop (links come in bidirectional
    /// pairs, so output `i` and input `i` share a neighbor).
    pub fn port_snapshots(&self) -> Vec<PortSnapshot> {
        self.out
            .iter()
            .enumerate()
            .filter_map(|(i, tx)| tx.as_ref().map(|tx| (i, tx)))
            .map(|(i, tx)| PortSnapshot {
                link: tx
                    .link()
                    .unwrap_or_else(|| LinkId::new(self.site, self.site)),
                tx_packets: tx.tx_packets(),
                tx_bytes: tx.tx_bytes(),
                credits: tx.credits(),
                allowance: tx.allowance(),
                credit_stall: tx.credit_stall(),
                retransmits: tx.retransmits(),
                retx_bytes: tx.retx_bytes(),
                resyncs: tx.resyncs(),
                resync_probes: tx.resync_probes(),
                rx_fifo_depth: self.fifos.get(i).map_or(0, |f| f.len() as u32),
                rx_fifo_high_water: self.fifos.get(i).map_or(0, RxFifo::high_water),
                rx_discards: self
                    .rx_links
                    .get(i)
                    .and_then(Option::as_ref)
                    .map_or(0, |rx| rx.corrupt_discards() + rx.seq_discards()),
            })
            .collect()
    }

    /// Neighbor-originated protocol violations and dead-link declarations
    /// recorded so far.
    pub fn link_errors(&self) -> &[LinkError] {
        &self.errors
    }

    /// Links held up right now: dead, carrying unacknowledged frames, or
    /// credit-starved with traffic pending. The watchdog's deadlock report
    /// is assembled from these.
    pub fn stalled_links(&self) -> Vec<StalledLink> {
        self.out
            .iter()
            .flatten()
            .filter(|tx| tx.is_dead() || tx.unacked() > 0 || tx.is_credit_stalled())
            .map(|tx| StalledLink {
                link: tx
                    .link()
                    .unwrap_or_else(|| LinkId::new(self.site, self.site)),
                dead: tx.is_dead(),
                stranded: tx.unacked(),
                credits: tx.credits(),
                retransmits: tx.retransmits(),
                attempts: tx.consecutive_attempts(),
                starved: tx.ack_starved(),
            })
            .collect()
    }

    /// Credit bookkeeping of every attached output port, for the cluster's
    /// quiescence-time conservation check.
    pub fn credit_ledgers(&self) -> Vec<CreditLedger> {
        self.out
            .iter()
            .flatten()
            .map(|tx| CreditLedger {
                link: tx
                    .link()
                    .unwrap_or_else(|| LinkId::new(self.site, self.site)),
                credits: tx.credits(),
                unacked: tx.unacked(),
                allowance: tx.allowance(),
            })
            .collect()
    }

    /// Conservation check at quiescence: for every attached output port,
    /// credits in hand + unacknowledged frames must equal the allowance
    /// minus whatever still sits in the *neighbor's* FIFO. Since a switch
    /// cannot see its neighbor's FIFO, this local check reports ports whose
    /// credits + unacked exceed the allowance (an over-credit leak) —
    /// cluster-level checks add the FIFO term.
    pub fn credit_overcommit(&self) -> Vec<LinkId> {
        self.out
            .iter()
            .flatten()
            .filter(|tx| u64::from(tx.credits()) + tx.unacked() as u64 > u64::from(tx.allowance()))
            .map(|tx| {
                tx.link()
                    .unwrap_or_else(|| LinkId::new(self.site, self.site))
            })
            .collect()
    }

    /// The output port toward `packet.dst`, or `None` when no surviving
    /// route reaches it (the caller blackholes the packet, counted).
    fn route(&self, packet: &Packet) -> Option<u32> {
        let port = self.table[packet.dst.index()];
        (port != u32::MAX).then_some(port)
    }

    /// The input port whose head is routed to `out_port`, round-robin from
    /// this output's arbitration pointer.
    fn pick_input(&self, out_port: usize) -> Option<usize> {
        let nports = self.fifos.len();
        let start = self.rr_next[out_port];
        for k in 0..nports {
            let in_port = (start + k) % nports;
            if let Some(packet) = self.fifos[in_port].head() {
                if self.route(packet) == Some(out_port as u32) {
                    return Some(in_port);
                }
            }
        }
        None
    }

    /// Disposes of a packet with no surviving route: counted drop, drain
    /// bookkeeping, and the upstream credit returned — the slot it held
    /// must not leak just because its destination is partitioned away.
    fn blackhole_one<M: NetMessage>(
        &mut self,
        in_port: usize,
        packet: &Packet,
        ctx: &mut Ctx<'_, M>,
    ) {
        self.emit(ctx.now(), packet, Stage::Dropped);
        self.stats.blackholed += 1;
        if let Some(rx) = self.rx_links.get_mut(in_port).and_then(Option::as_mut) {
            rx.on_drain();
        }
        self.return_credit(in_port, ctx);
    }

    /// Re-reads the routing table from the shared fabric view when its
    /// version moved (one compare in the common case), then blackholes
    /// any already-queued traffic the new table orphans and re-examines
    /// every output for redirected heads.
    fn refresh_routes<M: NetMessage>(&mut self, ctx: &mut Ctx<'_, M>) {
        let Some(view) = self.view.clone() else {
            return;
        };
        let version = view.version();
        if version == self.view_version {
            return;
        }
        self.view_version = version;
        let Site::Switch(idx) = self.site else {
            return;
        };
        self.table = view.table_for_switch(idx);
        self.route_refreshes += 1;
        let table = self.table.clone();
        for in_port in 0..self.fifos.len() {
            let orphaned = self.fifos[in_port].drain_matching(|p| table[p.dst.index()] == u32::MAX);
            for p in orphaned {
                self.blackhole_one(in_port, &p, ctx);
            }
        }
        for port in 0..self.out.len() {
            if self.out[port].is_some() {
                self.mark_pending(port);
            }
        }
    }

    /// Marks a peer liveness transition in the packet trace. The trace id
    /// encodes the convicted peer (switch peers carry bit 15) and this
    /// observer's running verdict count; the site is the observer.
    fn emit_peer(&self, at: SimTime, peer: Site, stage: Stage, count: u64) {
        if let Some(probe) = &self.probe {
            let raw = match peer {
                Site::Node(n) => n.raw(),
                Site::Switch(s) => 0x8000 | s,
            };
            probe.packet(PacketEvent {
                at,
                trace: TraceId::packet(NodeId::new(raw), count),
                parent: None,
                site: self.site,
                stage,
                kind: match stage {
                    Stage::PeerDown => "peer-down",
                    _ => "peer-up",
                },
                bytes: 0,
            });
        }
    }

    /// Handles a beacon arriving on `in_port`: feeds the port detector
    /// (reviving a convicted port if its silence ended), floods the
    /// beacon out every other port unless an equal-or-newer sequence from
    /// this origin was already flooded (the loop-killer on rings), and
    /// sweeps all watched ports for silence — detection is event-driven,
    /// clocked by the surviving ports' beacon arrivals.
    fn on_heartbeat<M: NetMessage>(
        &mut self,
        in_port: usize,
        origin: NodeId,
        seq: u64,
        ctx: &mut Ctx<'_, M>,
    ) {
        let now = ctx.now();
        let revived = self
            .detector
            .as_mut()
            .and_then(|d| d.saw(in_port as u64, now))
            == Some(Liveness::Up);
        if revived {
            self.on_peer_up(in_port, ctx);
        }
        let fresh = self
            .hb_last
            .get(&origin.raw())
            .is_none_or(|&last| seq > last);
        if fresh {
            self.hb_last.insert(origin.raw(), seq);
            for port in 0..self.out.len() {
                if port != in_port && self.out[port].is_some() {
                    self.send_ctrl(port, CtrlMsg::Heartbeat { origin, seq }, ctx);
                }
            }
        }
        let newly_down = self
            .detector
            .as_mut()
            .map(|d| d.check(now))
            .unwrap_or_default();
        for port in newly_down {
            self.on_peer_down(port as usize, ctx);
        }
        self.pump(ctx);
    }

    /// Reacts to a transmit port dying of exhausted recovery (retransmit
    /// or resync-probe budget): records the error and — like a heartbeat
    /// conviction — declares the silent neighbor down in the fabric view
    /// so routes recompute around it even when no detector is running.
    fn on_link_dead<M: NetMessage>(&mut self, port: usize, err: LinkError, ctx: &mut Ctx<'_, M>) {
        self.errors.push(err);
        let Some(link) = self
            .out
            .get(port)
            .and_then(Option::as_ref)
            .and_then(TxPort::link)
        else {
            return;
        };
        if let Some(view) = self.view.clone() {
            if !view.is_dead(vertex_of_site(link.to)) {
                view.declare_down(vertex_of_site(link.to));
                self.refresh_routes(ctx);
            }
        }
    }

    /// Reacts to this switch's own detector convicting the peer on
    /// `port`: trace the verdict and report it to the fabric view, which
    /// recomputes routes around the dead vertex for every switch.
    fn on_peer_down<M: NetMessage>(&mut self, port: usize, ctx: &mut Ctx<'_, M>) {
        let Some(link) = self
            .out
            .get(port)
            .and_then(Option::as_ref)
            .and_then(TxPort::link)
        else {
            return;
        };
        let downs = self
            .detector
            .as_ref()
            .map_or(0, |d| d.transition_counts().0);
        self.emit_peer(ctx.now(), link.to, Stage::PeerDown, downs);
        if let Some(view) = self.view.clone() {
            view.declare_down(vertex_of_site(link.to));
            self.refresh_routes(ctx);
        }
    }

    /// Reacts to beacons resuming on a convicted `port`: trace the
    /// revival, restore the vertex in the fabric view, and start a fresh
    /// link epoch on the transmit side (abandoning frames stranded for
    /// the dead incarnation), announcing it to the receiver so both ends
    /// agree on sequence numbers and drain counts.
    fn on_peer_up<M: NetMessage>(&mut self, port: usize, ctx: &mut Ctx<'_, M>) {
        let Some(link) = self
            .out
            .get(port)
            .and_then(Option::as_ref)
            .and_then(TxPort::link)
        else {
            return;
        };
        let ups = self
            .detector
            .as_ref()
            .map_or(0, |d| d.transition_counts().1);
        self.emit_peer(ctx.now(), link.to, Stage::PeerUp, ups);
        if let Some(view) = self.view.clone() {
            view.declare_up(vertex_of_site(link.to));
            self.refresh_routes(ctx);
        }
        let reliable = self
            .out
            .get(port)
            .and_then(Option::as_ref)
            .is_some_and(TxPort::is_reliable);
        if reliable {
            let next = self.out[port]
                .as_mut()
                .expect("checked reliable")
                .reset_epoch(ctx.now());
            self.send_ctrl(port, CtrlMsg::Reset { next }, ctx);
            self.mark_pending(port);
        }
    }

    /// Returns a credit for a frame drained from input `in_port`, unless
    /// the injector loses it in flight.
    fn return_credit<M: NetMessage>(&mut self, in_port: usize, ctx: &mut Ctx<'_, M>) {
        let (up, up_port, link) = {
            let p = self.out[in_port].as_ref().expect("paired port attached");
            (p.neighbor(), p.neighbor_port(), p.link())
        };
        if let (Some(inj), Some(link)) = (self.injector.as_ref(), link) {
            if inj.credit_lost(link, ctx.now()) {
                return;
            }
        }
        ctx.send(
            up,
            self.timing.link_prop,
            M::from_net(NetEvent::Credit { port: up_port }),
        );
    }

    /// Seals and launches one control frame toward the neighbor on the
    /// link paired with `port`. Control frames are wire traffic like any
    /// other: the injector may drop them outright (silent return) or
    /// corrupt them in flight, in which case the receiver's checksum
    /// check discards them.
    fn send_ctrl<M: NetMessage>(&mut self, port: usize, msg: CtrlMsg, ctx: &mut Ctx<'_, M>) {
        let (nbr, nbr_port, link) = {
            let p = self.out[port].as_ref().expect("paired port attached");
            (p.neighbor(), p.neighbor_port(), p.link())
        };
        let mut frame = CtrlFrame::seal(msg);
        if let (Some(inj), Some(link)) = (self.injector.as_ref(), link) {
            if inj.ctrl_fate(link, ctx.now(), &mut frame) == FrameFate::Drop {
                return;
            }
        }
        ctx.send(
            nbr,
            self.timing.link_prop,
            M::from_net(NetEvent::Ctrl {
                port: nbr_port,
                frame,
            }),
        );
    }

    /// Occupies output `out_port` with `packet` (a fresh launch consumes a
    /// credit; a retransmission reuses its original reservation), consults
    /// the fault injector, and schedules the arrival unless the frame was
    /// lost.
    fn dispatch<M: NetMessage>(
        &mut self,
        out_port: usize,
        mut packet: Packet,
        fresh: bool,
        ctx: &mut Ctx<'_, M>,
    ) {
        let lat = self.timing.switch_latency;
        let now = ctx.now();
        let (times, nbr, nbr_port, link) = {
            let tx = self.out[out_port]
                .as_mut()
                .expect("dispatch on attached port");
            let times = if fresh {
                tx.launch(&packet, &self.timing)
            } else {
                tx.relaunch(&packet, &self.timing)
            };
            (times, tx.neighbor(), tx.neighbor_port(), tx.link())
        };
        ctx.send_self(
            lat + times.free,
            M::from_net(NetEvent::PumpOut {
                port: out_port as u32,
            }),
        );
        let fate = match (self.injector.as_ref(), link) {
            (Some(inj), Some(link)) => inj.frame_fate(link, now, &mut packet),
            _ => FrameFate::Deliver,
        };
        if fate == FrameFate::Drop {
            self.emit(now, &packet, Stage::Dropped);
            return;
        }
        ctx.send(
            nbr,
            lat + times.arrival,
            M::from_net(NetEvent::Arrive {
                port: nbr_port,
                packet,
            }),
        );
    }

    /// Arms the recovery timer on `out_port` if the port needs one and none
    /// is pending.
    fn arm_timer<M: NetMessage>(&mut self, out_port: usize, ctx: &mut Ctx<'_, M>) {
        if let Some(tx) = self.out.get_mut(out_port).and_then(Option::as_mut) {
            if let Some((delay, gen)) = tx.poll_timer(ctx.now()) {
                ctx.send_self(
                    delay,
                    M::from_net(NetEvent::RetxTimer {
                        port: out_port as u32,
                        gen,
                    }),
                );
            }
        }
    }

    /// Forwards as many FIFO heads as ports allow: each marked output port
    /// arbitrates round-robin over the inputs requesting it. Go-back-N
    /// retransmissions outrank fresh traffic on their output.
    ///
    /// Only ports in the pending-work set are examined (quiescent ports
    /// cost nothing — the common case exits on `pending_count == 0`). The
    /// pass structure mirrors the old full-rescan loop exactly: a grant
    /// that exposes a new FIFO head re-marks that head's output, and a
    /// mark at a higher index than the current scan position is processed
    /// within the same pass — so the grant order (and therefore every
    /// scheduled event) is identical to the rescan's. An output leaves the
    /// set when it grants (wire now busy until `PumpOut`), blocks on
    /// credit (woken by `Credit`), or has no requesting input (woken by
    /// `Arrive`); each wake-up event re-marks it.
    fn pump<M: NetMessage>(&mut self, ctx: &mut Ctx<'_, M>) {
        if self.pending_count == 0 {
            return;
        }
        let nports = self.fifos.len();
        loop {
            let mut progressed = false;
            for out_port in 0..nports {
                if !self.pending[out_port] {
                    continue;
                }
                self.pending[out_port] = false;
                self.pending_count -= 1;
                self.touched[out_port] = true;
                // Recovery first: a retransmission reuses the receiver slot
                // its original launch reserved, so it needs no credit —
                // only a free wire — and fresh traffic must wait behind it
                // to preserve go-back-N order.
                let retx_pending = self.out[out_port]
                    .as_ref()
                    .map(TxPort::has_retx_pending)
                    .unwrap_or(false);
                if retx_pending {
                    let wire_free = self.out[out_port]
                        .as_ref()
                        .map(TxPort::wire_free)
                        .unwrap_or(false);
                    if wire_free {
                        let packet = self.out[out_port]
                            .as_mut()
                            .and_then(TxPort::take_retx)
                            .expect("retx pending on a free wire");
                        self.emit(ctx.now(), &packet, Stage::Retransmit);
                        self.dispatch(out_port, packet, false, ctx);
                        progressed = true;
                    } else if let Some(in_port) = self.pick_input(out_port) {
                        // Fresh traffic is waiting behind the in-flight
                        // recovery frame: that deferral is a block, and if
                        // it is credits holding the port (the dropped
                        // frame's credit never came back), the stall clock
                        // must run — recovery is exactly when the
                        // credit-stall series matters.
                        self.stats.blocked += 1;
                        let opened = self.out[out_port]
                            .as_mut()
                            .is_some_and(|tx| tx.note_blocked(ctx.now()));
                        if opened {
                            if let Some(head) = self.fifos[in_port].head() {
                                self.emit(ctx.now(), head, Stage::CreditStall);
                            }
                        }
                    }
                    continue;
                }
                let can_send = self.out[out_port]
                    .as_ref()
                    .map(TxPort::can_send_new)
                    .unwrap_or(false);
                let Some(in_port) = self.pick_input(out_port) else {
                    continue;
                };
                if !can_send {
                    self.stats.blocked += 1;
                    // Start the credit-stall clock when it is specifically
                    // credits (not a busy wire) holding this output back.
                    let opened = self.out[out_port]
                        .as_mut()
                        .is_some_and(|tx| tx.note_blocked(ctx.now()));
                    if opened {
                        if let Some(head) = self.fifos[in_port].head() {
                            self.emit(ctx.now(), head, Stage::CreditStall);
                        }
                    }
                    continue;
                }
                let mut packet = self.fifos[in_port].pop().expect("head checked");
                self.emit(ctx.now(), &packet, Stage::SwitchTx);
                if let Some(rx) = self.rx_links.get_mut(in_port).and_then(Option::as_mut) {
                    rx.on_drain();
                }
                self.return_credit(in_port, ctx);
                self.stats.packets += 1;
                self.stats.bytes += u64::from(packet.size_bytes());
                let reliable = self.out[out_port]
                    .as_ref()
                    .map(TxPort::is_reliable)
                    .unwrap_or(false);
                if reliable {
                    packet = self.out[out_port]
                        .as_mut()
                        .expect("checked reliable")
                        .frame(packet, ctx.now());
                }
                self.dispatch(out_port, packet, true, ctx);
                // One grant per pass per output (the wire is busy until
                // PumpOut), so advancing past the granted input here is
                // exactly one round-robin step.
                self.rr_next[out_port] = (in_port + 1) % nports;
                // The pop may have exposed a new head behind this one;
                // its output is work the rescan loop would have found.
                // (An unroutable head cannot appear here — arrivals and
                // route refreshes blackhole those — but degrade to a
                // no-op rather than trusting that invariant with a panic.)
                if let Some(next) = self.fifos[in_port].head() {
                    if let Some(next_out) = self.route(next) {
                        self.mark_pending(next_out as usize);
                    }
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        for out_port in 0..self.out.len() {
            if self.touched[out_port] {
                self.touched[out_port] = false;
                self.arm_timer(out_port, ctx);
            }
        }
    }
}

impl<M: NetMessage> Component<M> for Switch {
    fn on_event(&mut self, ev: M, ctx: &mut Ctx<'_, M>) {
        let ev = match ev.into_net() {
            Ok(ev) => ev,
            Err(_) => panic!("switch {} received a non-network event", self.name),
        };
        // Another switch may have moved the fabric view since our last
        // event; one version compare keeps every switch's table current.
        self.refresh_routes(ctx);
        match ev {
            NetEvent::Arrive { port, packet } => {
                let in_port = port as usize;
                let verdict = self
                    .rx_links
                    .get_mut(in_port)
                    .and_then(Option::as_mut)
                    .map(|rx| rx.accept(&packet));
                match verdict {
                    None | Some(RxVerdict::Accept { .. }) => {
                        if let Some(RxVerdict::Accept { ack }) = verdict {
                            let sack = self.rx_links[in_port].as_ref().map_or(0, LinkRx::sack_bits);
                            self.send_ctrl(in_port, CtrlMsg::Ack { seq: ack, sack }, ctx);
                        }
                        // If the arrival became a FIFO head it is new work
                        // for its routed output; if it queued behind others
                        // the mark is a cheap no-op grant check. With no
                        // surviving route it is blackholed instead.
                        match self.route(&packet) {
                            Some(out) => {
                                self.emit(ctx.now(), &packet, Stage::SwitchEnqueue);
                                if let Err(err) = self.fifos[in_port].push(packet) {
                                    self.errors.push(err);
                                }
                                self.mark_pending(out as usize);
                            }
                            None => self.blackhole_one(in_port, &packet, ctx),
                        }
                        // The arrival may have closed a reorder-window gap:
                        // deliver the released successors in sequence order.
                        // Credit accounting bounds FIFO + window occupancy
                        // by the allowance, so the burst cannot overflow.
                        let released = self.rx_links[in_port]
                            .as_mut()
                            .map(LinkRx::take_ready)
                            .unwrap_or_default();
                        for p in released {
                            match self.route(&p) {
                                Some(out) => {
                                    self.emit(ctx.now(), &p, Stage::SwitchEnqueue);
                                    if let Err(err) = self.fifos[in_port].push(p) {
                                        self.errors.push(err);
                                    }
                                    self.mark_pending(out as usize);
                                }
                                None => self.blackhole_one(in_port, &p, ctx),
                            }
                        }
                        self.pump(ctx);
                    }
                    Some(RxVerdict::Held { ack, nack, dup }) => {
                        if dup {
                            // A spurious retransmit of an already-parked
                            // frame: drop the copy silently (the sweep that
                            // resent it leads with the missing base frame,
                            // whose ack will carry the bitmap).
                            self.emit(ctx.now(), &packet, Stage::Dropped);
                        } else if nack {
                            self.send_ctrl(
                                in_port,
                                CtrlMsg::Nack {
                                    expected: ack + 1,
                                    sack: self.rx_links[in_port]
                                        .as_ref()
                                        .map_or(0, LinkRx::sack_bits),
                                },
                                ctx,
                            );
                        } else {
                            // Refresh the sender's view of the window with
                            // a duplicate cumulative ack + grown bitmap.
                            let sack = self.rx_links[in_port].as_ref().map_or(0, LinkRx::sack_bits);
                            self.send_ctrl(in_port, CtrlMsg::Ack { seq: ack, sack }, ctx);
                        }
                    }
                    Some(RxVerdict::DupAck { ack }) => {
                        self.emit(ctx.now(), &packet, Stage::Dropped);
                        let sack = self.rx_links[in_port].as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(in_port, CtrlMsg::Ack { seq: ack, sack }, ctx);
                    }
                    Some(RxVerdict::NackCorrupt { expected })
                    | Some(RxVerdict::NackGap { expected }) => {
                        self.emit(ctx.now(), &packet, Stage::Dropped);
                        let sack = self.rx_links[in_port].as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(in_port, CtrlMsg::Nack { expected, sack }, ctx);
                    }
                    Some(RxVerdict::Discard) => {
                        self.emit(ctx.now(), &packet, Stage::Dropped);
                    }
                }
            }
            NetEvent::Credit { port } => {
                let result = self.out[port as usize]
                    .as_mut()
                    .expect("credited port attached")
                    .on_credit_at(ctx.now());
                if let Err(err) = result {
                    self.errors.push(err);
                }
                self.mark_pending(port as usize);
                self.pump(ctx);
            }
            NetEvent::PumpOut { port } => {
                self.out[port as usize]
                    .as_mut()
                    .expect("pumped port attached")
                    .on_free();
                self.mark_pending(port as usize);
                self.pump(ctx);
            }
            NetEvent::Ctrl { port, frame } => {
                if !frame.checksum_ok() {
                    self.ctrl_discards += 1;
                    return;
                }
                match frame.msg {
                    CtrlMsg::Ack { seq, sack } => {
                        if let Some(tx) = self.out.get_mut(port as usize).and_then(Option::as_mut) {
                            tx.on_ack(seq, sack, ctx.now());
                            self.mark_pending(port as usize);
                        }
                        self.pump(ctx);
                    }
                    CtrlMsg::Nack { expected, sack } => {
                        let action = self
                            .out
                            .get_mut(port as usize)
                            .and_then(Option::as_mut)
                            .map(|tx| tx.on_nack(expected, sack, ctx.now()));
                        if let Some(TimerAction::Dead(err)) = action {
                            self.on_link_dead(port as usize, err, ctx);
                        }
                        if action.is_some() {
                            self.mark_pending(port as usize);
                        }
                        self.pump(ctx);
                    }
                    CtrlMsg::SyncReq { token } => {
                        // Resync replies are idempotent: the drain counter
                        // is monotone, so answering a retried (or
                        // duplicated) probe never double-credits.
                        let drained = self
                            .rx_links
                            .get(port as usize)
                            .and_then(Option::as_ref)
                            .map(LinkRx::drained)
                            .unwrap_or(0);
                        self.send_ctrl(port as usize, CtrlMsg::SyncAck { token, drained }, ctx);
                    }
                    CtrlMsg::SyncAck { token, drained } => {
                        let applied = self
                            .out
                            .get_mut(port as usize)
                            .and_then(Option::as_mut)
                            .map(|tx| tx.on_sync_ack(token, drained, ctx.now()));
                        if let Some(applied) = applied {
                            if applied {
                                // Mirror the HIB: a completed handshake is
                                // traced too, so collectors can reconcile
                                // traced resync events against probe +
                                // completion counters.
                                self.emit_resync(ctx.now(), token);
                            }
                            self.mark_pending(port as usize);
                        }
                        self.pump(ctx);
                    }
                    CtrlMsg::Heartbeat { origin, seq } => {
                        self.on_heartbeat(port as usize, origin, seq, ctx);
                    }
                    CtrlMsg::Reset { next } => {
                        // The neighbor's transmit side started a fresh
                        // epoch after our revival: reseat the expected
                        // sequence, flush the reorder window (counted),
                        // and zero the drain counter for resync math.
                        if let Some(rx) = self
                            .rx_links
                            .get_mut(port as usize)
                            .and_then(Option::as_mut)
                        {
                            rx.on_reset(next);
                        }
                    }
                }
            }
            NetEvent::RetxTimer { port, gen } => {
                let action = self
                    .out
                    .get_mut(port as usize)
                    .and_then(Option::as_mut)
                    .map(|tx| tx.on_timer(gen, ctx.now()))
                    .unwrap_or(TimerAction::Stale);
                match action {
                    TimerAction::Retransmit => {
                        self.mark_pending(port as usize);
                        self.pump(ctx);
                    }
                    TimerAction::Resync { token } => {
                        self.emit_resync(ctx.now(), token);
                        self.send_ctrl(port as usize, CtrlMsg::SyncReq { token }, ctx);
                    }
                    TimerAction::Dead(err) => self.on_link_dead(port as usize, err, ctx),
                    TimerAction::Stale | TimerAction::Idle => {}
                }
                self.arm_timer(port as usize, ctx);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// Unit tests for the switch live in tests/network.rs (they need endpoints
// and an engine); pure routing/port logic is tested in `route` and `port`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_zero() {
        let s = Switch::new("s".into(), 2, vec![0, 1], TimingConfig::telegraphos_i());
        assert_eq!(s.stats(), SwitchStats::default());
        assert_eq!(s.max_fifo_high_water(), 0);
        assert!(s.link_errors().is_empty());
        assert!(s.stalled_links().is_empty());
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_rejected() {
        let mut s = Switch::new("s".into(), 1, vec![0], TimingConfig::telegraphos_i());
        let id = {
            struct Noop;
            impl Component<NetEvent> for Noop {
                fn on_event(&mut self, _: NetEvent, _: &mut Ctx<'_, NetEvent>) {}
                fn name(&self) -> &str {
                    "noop"
                }
            }
            let mut eng: tg_sim::Engine<NetEvent> = tg_sim::Engine::new();
            eng.add(Noop)
        };
        s.attach_port(0, TxPort::new(id, 0, 8));
        s.attach_port(0, TxPort::new(id, 0, 8));
    }
}
