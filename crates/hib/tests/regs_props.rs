//! Randomized tests for the launch encodings: shadow-store arguments and
//! context register decoding must round-trip for every representable
//! input — a malformed encoding here would let a process reach another
//! process's context (the §2.2.5 security argument). Cases come from a
//! seeded [`tg_sim::SimRng`] so the sweep is deterministic and
//! dependency-free.

use tg_hib::regs::{decode_ctx_reg, reg, ShadowArg};
use tg_sim::SimRng;

#[test]
fn shadow_arg_round_trips() {
    let mut rng = SimRng::new(0x51AD);
    for _ in 0..1024 {
        let a = ShadowArg {
            ctx: rng.next_u64() as u16,
            key: rng.next_u64() as u32,
            slot: rng.range(2) as u16,
        };
        let decoded = ShadowArg::decode(a.encode());
        assert_eq!(decoded, a);
    }
}

#[test]
fn shadow_arg_fields_do_not_bleed() {
    let mut rng = SimRng::new(0xB1EED);
    for _ in 0..1024 {
        // Two different argument tuples (restricted to the encodable slot
        // width) encode differently.
        let a = (
            rng.next_u64() as u16,
            rng.next_u64() as u32,
            rng.range(2) as u16,
        );
        let b = (
            rng.next_u64() as u16,
            rng.next_u64() as u32,
            rng.range(2) as u16,
        );
        let (sa, sb) = (
            ShadowArg {
                ctx: a.0,
                key: a.1,
                slot: a.2,
            },
            ShadowArg {
                ctx: b.0,
                key: b.1,
                slot: b.2,
            },
        );
        if a != b {
            assert_ne!(sa.encode(), sb.encode());
        }
    }
}

#[test]
fn ctx_reg_decode_inverts_the_layout() {
    let mut rng = SimRng::new(0x1A707);
    for _ in 0..1024 {
        let ctx = rng.range(256);
        let slot = rng.range(8);
        let regno = reg::CTX_BASE + ctx * reg::CTX_STRIDE + slot * 8;
        assert_eq!(decode_ctx_reg(regno), Some((ctx as usize, slot)));
    }
}

#[test]
fn unaligned_ctx_regs_are_rejected() {
    let mut rng = SimRng::new(0x0FF5E7);
    for _ in 0..1024 {
        let ctx = rng.range(64);
        let slot = rng.range(8);
        let off = rng.range_between(1, 8);
        let regno = reg::CTX_BASE + ctx * reg::CTX_STRIDE + slot * 8 + off;
        assert_eq!(decode_ctx_reg(regno), None);
    }
}

#[test]
fn low_registers_never_decode_as_contexts() {
    let mut rng = SimRng::new(0x10);
    for _ in 0..1024 {
        let regno = rng.range(reg::CTX_BASE);
        assert_eq!(decode_ctx_reg(regno), None);
    }
}
