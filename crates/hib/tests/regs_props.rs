//! Property tests for the launch encodings: shadow-store arguments and
//! context register decoding must round-trip for every representable
//! input — a malformed encoding here would let a process reach another
//! process's context (the §2.2.5 security argument).

use proptest::prelude::*;
use tg_hib::regs::{decode_ctx_reg, reg, ShadowArg};

proptest! {
    #[test]
    fn shadow_arg_round_trips(ctx in any::<u16>(), key in any::<u32>(), slot in 0u16..2) {
        let a = ShadowArg { ctx, key, slot };
        let decoded = ShadowArg::decode(a.encode());
        prop_assert_eq!(decoded, a);
    }

    #[test]
    fn shadow_arg_fields_do_not_bleed(
        a in any::<(u16, u32, u16)>(),
        b in any::<(u16, u32, u16)>(),
    ) {
        // Two different argument tuples (restricted to the encodable slot
        // width) encode differently.
        let (sa, sb) = (
            ShadowArg { ctx: a.0, key: a.1, slot: a.2 },
            ShadowArg { ctx: b.0, key: b.1, slot: b.2 },
        );
        if (a.0, a.1, a.2) != (b.0, b.1, b.2) {
            prop_assert_ne!(sa.encode(), sb.encode());
        }
    }

    #[test]
    fn ctx_reg_decode_inverts_the_layout(ctx in 0u64..256, slot in 0u64..8) {
        let regno = reg::CTX_BASE + ctx * reg::CTX_STRIDE + slot * 8;
        prop_assert_eq!(decode_ctx_reg(regno), Some((ctx as usize, slot)));
    }

    #[test]
    fn unaligned_ctx_regs_are_rejected(ctx in 0u64..64, slot in 0u64..8, off in 1u64..8) {
        let regno = reg::CTX_BASE + ctx * reg::CTX_STRIDE + slot * 8 + off;
        prop_assert_eq!(decode_ctx_reg(regno), None);
    }

    #[test]
    fn low_registers_never_decode_as_contexts(regno in 0u64..reg::CTX_BASE) {
        prop_assert_eq!(decode_ctx_reg(regno), None);
    }
}
