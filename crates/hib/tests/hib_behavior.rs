//! Behavioral tests of the Host Interface Board, driven through a mock
//! host and a zero-switch "hub" that routes packets between boards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tg_hib::regs::{opcode, reg, ShadowArg};
use tg_hib::{
    CounterKind, CpuResult, Hib, HibConfig, HibFault, HibHost, HibInterrupt, HibTick, LoadOutcome,
    LocalWritePolicy, PageMode, StoreOutcome,
};
use tg_mem::{PAddr, PhysMem};
use tg_net::NetEvent;
use tg_sim::{CompId, SimTime};
use tg_wire::{GOffset, NodeId, PageNum, TimingConfig, WireMsg, PAGE_BYTES};

/// Events queued by the harness.
#[derive(Debug)]
enum Ev {
    Net(NetEvent),
    Tick(HibTick),
}

/// Per-dispatch host implementation: collects everything the HIB asks for.
struct Host<'a> {
    segment: &'a mut PhysMem,
    hub: CompId,
    board: usize,
    out: Vec<(SimTime, usize, Ev)>,
    completions: &'a mut Vec<(SimTime, CpuResult)>,
    interrupts: &'a mut Vec<(SimTime, HibInterrupt)>,
    os_msgs: &'a mut Vec<(NodeId, WireMsg)>,
    now: SimTime,
}

impl HibHost for Host<'_> {
    fn schedule_net(&mut self, delay: SimTime, dst: CompId, ev: NetEvent) {
        assert_eq!(dst, self.hub, "all traffic flows through the hub");
        if let NetEvent::Arrive { packet, .. } = ev {
            let target = packet.dst.index();
            self.out.push((
                self.now + delay,
                target,
                Ev::Net(NetEvent::Arrive { port: 0, packet }),
            ));
        }
        // Credits to the hub are dropped: the hub has infinite capacity.
    }
    fn schedule_tick(&mut self, delay: SimTime, tick: HibTick) {
        self.out
            .push((self.now + delay, self.board, Ev::Tick(tick)));
    }
    fn cpu_complete(&mut self, delay: SimTime, res: CpuResult) {
        self.completions.push((self.now + delay, res));
    }
    fn interrupt(&mut self, delay: SimTime, int: HibInterrupt) {
        self.interrupts.push((self.now + delay, int));
    }
    fn to_os(&mut self, _delay: SimTime, src: NodeId, msg: WireMsg) {
        self.os_msgs.push((src, msg));
    }
    fn segment(&mut self) -> &mut PhysMem {
        self.segment
    }
}

struct Bench {
    boards: Vec<Hib>,
    segments: Vec<PhysMem>,
    completions: Vec<Vec<(SimTime, CpuResult)>>,
    interrupts: Vec<Vec<(SimTime, HibInterrupt)>>,
    os_msgs: Vec<Vec<(NodeId, WireMsg)>>,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<Ev>>,
    hub: CompId,
    now: SimTime,
}

fn dummy_comp_id() -> CompId {
    struct Noop;
    impl tg_sim::Component<u32> for Noop {
        fn on_event(&mut self, _: u32, _: &mut tg_sim::Ctx<'_, u32>) {}
        fn name(&self) -> &str {
            "hub"
        }
    }
    let mut eng: tg_sim::Engine<u32> = tg_sim::Engine::new();
    eng.add(Noop)
}

impl Bench {
    fn new(n: usize, config: HibConfig) -> Self {
        let timing = TimingConfig::telegraphos_i();
        let hub = dummy_comp_id();
        let mut boards = Vec::new();
        for i in 0..n {
            let mut hib = Hib::new(NodeId::new(i as u16), config.clone(), timing.clone());
            hib.wire(
                tg_net::TxPort::new(hub, i as u32, 1_000_000),
                (hub, i as u32),
                1_000_000,
            );
            boards.push(hib);
        }
        Bench {
            boards,
            segments: (0..n).map(|_| PhysMem::new()).collect(),
            completions: (0..n).map(|_| Vec::new()).collect(),
            interrupts: (0..n).map(|_| Vec::new()).collect(),
            os_msgs: (0..n).map(|_| Vec::new()).collect(),
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            hub,
            now: SimTime::ZERO,
        }
    }

    /// Runs `f` against one board with a fresh host, then queues whatever
    /// the board scheduled.
    fn with_board<R>(&mut self, board: usize, f: impl FnOnce(&mut Hib, &mut Host) -> R) -> R {
        let out;
        let r;
        {
            let Bench {
                boards,
                segments,
                completions,
                interrupts,
                os_msgs,
                hub,
                now,
                ..
            } = self;
            let mut host = Host {
                segment: &mut segments[board],
                hub: *hub,
                board,
                out: Vec::new(),
                completions: &mut completions[board],
                interrupts: &mut interrupts[board],
                os_msgs: &mut os_msgs[board],
                now: *now,
            };
            r = f(&mut boards[board], &mut host);
            out = std::mem::take(&mut host.out);
        }
        self.absorb(out);
        r
    }

    fn absorb(&mut self, out: Vec<(SimTime, usize, Ev)>) {
        for (at, board, ev) in out {
            let idx = self.payloads.len() as u64;
            self.payloads.push(Some(ev));
            self.queue.push(Reverse((at, idx, board)));
        }
    }

    fn store(&mut self, board: usize, pa: PAddr, val: u64) -> StoreOutcome {
        self.with_board(board, |b, host| b.cpu_store(pa, val, host))
    }

    fn load(&mut self, board: usize, pa: PAddr) -> LoadOutcome {
        self.with_board(board, |b, host| b.cpu_load(pa, host))
    }

    fn fence(&mut self, board: usize) -> bool {
        self.boards[board].fence()
    }

    fn run(&mut self) {
        let mut guard = 0u64;
        while let Some(Reverse((at, payload_idx, board))) = self.queue.pop() {
            guard += 1;
            assert!(guard < 1_000_000, "harness livelock");
            self.now = at;
            let ev = self.payloads[payload_idx as usize]
                .take()
                .expect("payload consumed once");
            self.with_board(board, |b, host| match ev {
                Ev::Net(ev) => b.on_net(ev, host),
                Ev::Tick(t) => b.on_tick(t, host),
            });
        }
    }
}

fn remote(node: u16, off: u64) -> PAddr {
    PAddr::remote(NodeId::new(node), GOffset::new(off))
}

fn local(off: u64) -> PAddr {
    PAddr::local_shared(GOffset::new(off))
}

#[test]
fn remote_write_lands_and_acks() {
    let mut b = Bench::new(2, HibConfig::default());
    assert_eq!(b.store(0, remote(1, 64), 99), StoreOutcome::Done);
    assert!(!b.boards[0].quiescent(), "write outstanding");
    b.run();
    assert_eq!(b.segments[1].read(GOffset::new(64)), 99);
    assert!(b.boards[0].quiescent(), "ack consumed");
    assert_eq!(b.boards[0].stats().remote_writes, 1);
    assert_eq!(b.boards[0].stats().acks_rx, 1);
}

#[test]
fn remote_read_returns_value() {
    let mut b = Bench::new(2, HibConfig::default());
    b.segments[1].write(GOffset::new(128), 7777);
    assert_eq!(b.load(0, remote(1, 128)), LoadOutcome::Pending);
    b.run();
    assert_eq!(b.completions[0].len(), 1);
    assert_eq!(b.completions[0][0].1, CpuResult::LoadDone { val: 7777 });
    // Read latency is multiple microseconds end to end.
    assert!(b.completions[0][0].0 > SimTime::from_us(1));
}

#[test]
fn only_one_outstanding_read() {
    let mut b = Bench::new(2, HibConfig::default());
    assert_eq!(b.load(0, remote(1, 0)), LoadOutcome::Pending);
    assert_eq!(
        b.load(0, remote(1, 8)),
        LoadOutcome::Fault(HibFault::ReadBusy)
    );
    b.run();
    assert_eq!(b.completions[0].len(), 1);
}

#[test]
fn special_mode_atomic_fetch_inc() {
    let mut b = Bench::new(2, HibConfig::default()); // Telegraphos I launch
    b.segments[1].write(GOffset::new(40), 10);
    // PAL sequence: enter special mode, pass the target address (datum =
    // increment), then GO.
    assert_eq!(
        b.store(0, PAddr::hib_reg(reg::SPECIAL_MODE), opcode::FETCH_INC),
        StoreOutcome::Done
    );
    assert_eq!(b.store(0, remote(1, 40), 5), StoreOutcome::Done);
    assert_eq!(b.load(0, PAddr::hib_reg(reg::GO)), LoadOutcome::Pending);
    b.run();
    assert_eq!(
        b.completions[0].last().unwrap().1,
        CpuResult::LaunchDone { result: 10 }
    );
    assert_eq!(b.segments[1].read(GOffset::new(40)), 15);
    assert_eq!(b.boards[0].stats().atomics, 1);
}

#[test]
fn special_mode_compare_swap_failure_leaves_value() {
    let mut b = Bench::new(2, HibConfig::default());
    b.segments[1].write(GOffset::new(0), 3);
    b.store(0, PAddr::hib_reg(reg::SPECIAL_MODE), opcode::COMPARE_SWAP);
    // expected = 9 (mismatch), new = 1.
    assert_eq!(b.store(0, remote(1, 0), 9), StoreOutcome::Done);
    assert_eq!(b.store(0, remote(1, 0), 1), StoreOutcome::Done);
    assert_eq!(b.load(0, PAddr::hib_reg(reg::GO)), LoadOutcome::Pending);
    b.run();
    assert_eq!(
        b.completions[0].last().unwrap().1,
        CpuResult::LaunchDone { result: 3 }
    );
    assert_eq!(b.segments[1].read(GOffset::new(0)), 3, "CAS must not store");
}

#[test]
fn context_shadow_launch_with_key() {
    let mut b = Bench::new(2, HibConfig::telegraphos_ii());
    b.boards[0].install_context_key(1, 0xABCD);
    b.segments[1].write(GOffset::new(16), 100);
    let ctx_reg = |slot: u64| PAddr::hib_reg(reg::CTX_BASE + reg::CTX_STRIDE + slot * 8);
    assert_eq!(
        b.store(0, ctx_reg(reg::SLOT_OP), opcode::FETCH_STORE),
        StoreOutcome::Done
    );
    assert_eq!(
        b.store(0, ctx_reg(reg::SLOT_DATUM0), 555),
        StoreOutcome::Done
    );
    // Shadow store: the physical address rides in the address, the context
    // id + key + slot in the datum.
    let arg = ShadowArg {
        ctx: 1,
        key: 0xABCD,
        slot: 0,
    };
    assert_eq!(
        b.store(0, remote(1, 16).shadow(), arg.encode()),
        StoreOutcome::Done
    );
    assert_eq!(b.load(0, ctx_reg(reg::SLOT_GO)), LoadOutcome::Pending);
    b.run();
    assert_eq!(
        b.completions[0].last().unwrap().1,
        CpuResult::LaunchDone { result: 100 }
    );
    assert_eq!(b.segments[1].read(GOffset::new(16)), 555);
}

#[test]
fn bad_context_key_faults_and_interrupts() {
    let mut b = Bench::new(2, HibConfig::telegraphos_ii());
    b.boards[0].install_context_key(0, 42);
    let arg = ShadowArg {
        ctx: 0,
        key: 41,
        slot: 0,
    };
    assert_eq!(
        b.store(0, remote(1, 16).shadow(), arg.encode()),
        StoreOutcome::Fault(HibFault::BadContextKey)
    );
    assert!(matches!(
        b.interrupts[0].as_slice(),
        [(_, HibInterrupt::Protection)]
    ));
}

#[test]
fn remote_copy_streams_into_local_segment() {
    let mut b = Bench::new(2, HibConfig::telegraphos_ii());
    b.boards[0].install_context_key(0, 1);
    for i in 0..20u64 {
        b.segments[1].write(GOffset::new(i * 8), 1000 + i);
    }
    let ctx_reg = |slot: u64| PAddr::hib_reg(reg::CTX_BASE + slot * 8);
    b.store(0, ctx_reg(reg::SLOT_OP), opcode::COPY);
    // datum0 = word count travels with the source address slot.
    b.store(0, ctx_reg(reg::SLOT_DATUM0), 20);
    let src = ShadowArg {
        ctx: 0,
        key: 1,
        slot: 0,
    };
    let dst = ShadowArg {
        ctx: 0,
        key: 1,
        slot: 1,
    };
    b.store(0, remote(1, 0).shadow(), src.encode());
    b.store(0, local(PAGE_BYTES).shadow(), dst.encode());
    // Copy returns immediately (non-blocking).
    assert_eq!(b.load(0, ctx_reg(reg::SLOT_GO)), LoadOutcome::Ready(0));
    assert!(!b.boards[0].quiescent(), "copy outstanding");
    b.run();
    for i in 0..20u64 {
        assert_eq!(
            b.segments[0].read(GOffset::new(PAGE_BYTES + i * 8)),
            1000 + i
        );
    }
    assert!(b.boards[0].quiescent());
    assert_eq!(b.boards[0].stats().copies, 1);
}

#[test]
fn fence_waits_for_acks() {
    let mut b = Bench::new(2, HibConfig::default());
    for i in 0..10u64 {
        assert_eq!(b.store(0, remote(1, i * 8), i), StoreOutcome::Done);
    }
    assert!(!b.fence(0), "writes still outstanding");
    b.run();
    let fences: Vec<_> = b.completions[0]
        .iter()
        .filter(|(_, r)| matches!(r, CpuResult::FenceDone))
        .collect();
    assert_eq!(fences.len(), 1);
    // Fence completes only after the last ack.
    assert!(b.boards[0].quiescent());
}

#[test]
fn fence_on_quiescent_board_is_immediate() {
    let mut b = Bench::new(2, HibConfig::default());
    assert!(b.fence(0));
}

#[test]
fn eager_multicast_fans_out_on_local_store() {
    let mut b = Bench::new(3, HibConfig::default());
    // Page 0 of node 0 maps out to page 2 of node 1 and page 3 of node 2.
    b.boards[0].shared_map().set_mode(
        PageNum::new(0),
        PageMode::EagerMapped {
            outs: vec![
                (NodeId::new(1), PageNum::new(2)),
                (NodeId::new(2), PageNum::new(3)),
            ],
        },
    );
    assert_eq!(b.store(0, local(24), 4242), StoreOutcome::Done);
    b.run();
    assert_eq!(b.segments[0].read(GOffset::new(24)), 4242);
    assert_eq!(b.segments[1].read(GOffset::new(2 * PAGE_BYTES + 24)), 4242);
    assert_eq!(b.segments[2].read(GOffset::new(3 * PAGE_BYTES + 24)), 4242);
    assert_eq!(b.boards[0].stats().fanout_tx, 2);
    assert!(b.boards[0].quiescent(), "multicasts acked");
}

/// Sets up the coherent-page triangle used by several tests: node 1 owns
/// page 0; nodes 0 and 2 hold replicas on their own page 0.
fn coherent_triangle(config: HibConfig) -> Bench {
    let mut b = Bench::new(3, config);
    b.boards[1].shared_map().set_mode(
        PageNum::new(0),
        PageMode::Owned {
            copies: vec![
                (NodeId::new(0), PageNum::new(0)),
                (NodeId::new(2), PageNum::new(0)),
            ],
        },
    );
    for i in [0usize, 2] {
        b.boards[i].shared_map().set_mode(
            PageNum::new(0),
            PageMode::Replica {
                owner: NodeId::new(1),
                owner_page: PageNum::new(0),
            },
        );
    }
    b
}

#[test]
fn coherent_write_propagates_through_owner() {
    let mut b = coherent_triangle(HibConfig::default());
    assert_eq!(b.store(0, local(8), 5), StoreOutcome::Done);
    // Immediate local visibility (§2.3.2: read your own writes).
    assert_eq!(b.segments[0].read(GOffset::new(8)), 5);
    b.run();
    for i in 0..3 {
        assert_eq!(b.segments[i].read(GOffset::new(8)), 5, "node {i}");
    }
    assert!(b.boards[0].quiescent());
    assert!(b.boards[0].cam().is_empty(), "pending counter consumed");
    assert_eq!(b.boards[0].stats().reflections_own, 1);
    assert_eq!(b.boards[2].stats().reflections_rx, 1);
}

#[test]
fn owner_write_multicasts_directly() {
    let mut b = coherent_triangle(HibConfig::default());
    assert_eq!(b.store(1, local(16), 9), StoreOutcome::Done);
    b.run();
    for i in 0..3 {
        assert_eq!(b.segments[i].read(GOffset::new(16)), 9, "node {i}");
    }
}

#[test]
fn pending_counter_filters_older_updates() {
    // Drive rule 3 deterministically: node 0 stores locally (counter = 1),
    // then a foreign reflected write arrives before node 0's own — it must
    // be ignored; after node 0's own reflection, later foreign updates
    // apply again.
    let mut b = coherent_triangle(HibConfig::default());
    assert_eq!(b.store(0, local(8), 5), StoreOutcome::Done);
    // Craft the foreign reflection ahead of the in-flight traffic by
    // injecting directly.
    b.with_board(0, |board, host| {
        board.on_net(
            NetEvent::Arrive {
                port: 0,
                packet: tg_wire::Packet::new(
                    NodeId::new(1),
                    NodeId::new(0),
                    WireMsg::ReflectedWrite {
                        addr: GOffset::new(8),
                        val: 777,
                        writer: NodeId::new(2),
                    },
                    0,
                ),
            },
            host,
        );
    });
    b.run();
    // The foreign 777 was older than our pending 5: never applied.
    assert_eq!(b.segments[0].read(GOffset::new(8)), 5);
    assert_eq!(b.boards[0].stats().reflections_filtered, 1);
}

#[test]
fn cam_full_stalls_until_reflection_returns() {
    let config = HibConfig {
        cam_entries: 1,
        ..HibConfig::default()
    };
    let mut b = coherent_triangle(config);
    assert_eq!(b.store(0, local(8), 1), StoreOutcome::Done);
    // Second store to a *different* word needs a second CAM entry: stall.
    assert_eq!(b.store(0, local(16), 2), StoreOutcome::Stalled);
    b.run();
    // After the reflection freed the entry, the store retried and retired.
    let retired: Vec<_> = b.completions[0]
        .iter()
        .filter(|(_, r)| matches!(r, CpuResult::StoreRetired))
        .collect();
    assert_eq!(retired.len(), 1);
    assert_eq!(b.segments[0].read(GOffset::new(16)), 2);
    assert_eq!(b.segments[1].read(GOffset::new(16)), 2);
    assert!(b.boards[0].cam().stall_events() >= 1);
}

#[test]
fn same_word_rewrites_share_a_cam_entry() {
    let config = HibConfig {
        cam_entries: 1,
        ..HibConfig::default()
    };
    let mut b = coherent_triangle(config);
    assert_eq!(b.store(0, local(8), 1), StoreOutcome::Done);
    assert_eq!(b.store(0, local(8), 2), StoreOutcome::Done, "same entry");
    b.run();
    for i in 0..3 {
        assert_eq!(b.segments[i].read(GOffset::new(8)), 2, "node {i}");
    }
}

#[test]
fn stall_until_reflected_policy_blocks_the_store() {
    let config = HibConfig {
        local_write_policy: LocalWritePolicy::StallUntilReflected,
        ..HibConfig::default()
    };
    let mut b = coherent_triangle(config);
    assert_eq!(b.store(0, local(8), 5), StoreOutcome::Stalled);
    // Not locally visible yet — the cost the paper rejects.
    assert_eq!(b.segments[0].read(GOffset::new(8)), 0);
    b.run();
    assert_eq!(b.segments[0].read(GOffset::new(8)), 5);
    let retired = b.completions[0]
        .iter()
        .any(|(_, r)| matches!(r, CpuResult::StoreRetired));
    assert!(retired, "CPU released after the reflection");
}

#[test]
fn tx_queue_full_stalls_and_retries() {
    let config = HibConfig {
        tx_queue_depth: 2,
        ..HibConfig::default()
    };
    let mut b = Bench::new(2, config);
    let mut stalls = 0;
    for i in 0..5u64 {
        match b.store(0, remote(1, i * 8), i + 1) {
            StoreOutcome::Done => {}
            StoreOutcome::Stalled => {
                stalls += 1;
                b.run(); // drain, then the stalled store retires
            }
            StoreOutcome::Fault(f) => panic!("unexpected fault {f}"),
        }
    }
    b.run();
    assert!(stalls > 0, "a 2-deep queue must backpressure 5 writes");
    for i in 0..5u64 {
        assert_eq!(b.segments[1].read(GOffset::new(i * 8)), i + 1);
    }
    assert!(b.boards[0].stats().tx_stalls > 0);
}

#[test]
fn page_access_counters_raise_alarm_once() {
    let mut b = Bench::new(2, HibConfig::default());
    b.boards[0]
        .shared_map()
        .arm_counters(NodeId::new(1), PageNum::new(0), 100, 3);
    for i in 0..5u64 {
        assert_eq!(b.store(0, remote(1, i * 8), i), StoreOutcome::Done);
    }
    b.run();
    let alarms: Vec<_> = b.interrupts[0]
        .iter()
        .filter(|(_, i)| {
            matches!(
                i,
                HibInterrupt::PageAlarm {
                    counter: CounterKind::Write,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(alarms.len(), 1, "alarm fires exactly on the 1->0 edge");
    assert_eq!(b.boards[0].stats().alarms, 1);
}

#[test]
fn os_messages_are_routed_up() {
    let mut b = Bench::new(2, HibConfig::default());
    // Board 1's OS sends an invalidation to board 0.
    b.with_board(1, |board, host| {
        board.send_os_message(NodeId::new(0), WireMsg::InvalidateReq { page: 7 }, host);
    });
    b.run();
    assert_eq!(
        b.os_msgs[0].as_slice(),
        &[(NodeId::new(1), WireMsg::InvalidateReq { page: 7 })]
    );
}

#[test]
fn launch_mode_mismatch_faults() {
    let mut b = Bench::new(2, HibConfig::telegraphos_ii());
    assert_eq!(
        b.store(0, PAddr::hib_reg(reg::SPECIAL_MODE), 1),
        StoreOutcome::Fault(HibFault::BadRegister)
    );
    let mut b1 = Bench::new(2, HibConfig::default());
    assert_eq!(
        b1.store(0, remote(1, 0).shadow(), 0),
        StoreOutcome::Fault(HibFault::BadRegister)
    );
}

#[test]
fn out_of_segment_access_faults() {
    let mut b = Bench::new(2, HibConfig::default());
    let beyond = (HibConfig::default().segment_pages as u64 + 1) * PAGE_BYTES;
    assert_eq!(
        b.store(0, local(beyond), 1),
        StoreOutcome::Fault(HibFault::OutOfSegment)
    );
    assert_eq!(
        b.load(0, local(beyond)),
        LoadOutcome::Fault(HibFault::OutOfSegment)
    );
}

#[test]
fn go_without_arming_faults() {
    let mut b = Bench::new(2, HibConfig::default());
    assert_eq!(
        b.load(0, PAddr::hib_reg(reg::GO)),
        LoadOutcome::Fault(HibFault::MalformedLaunch)
    );
}

#[test]
fn interleaved_context_launches_do_not_corrupt_each_other() {
    // §2.2.4's whole point: two processes' launch sequences, interleaved
    // instruction by instruction (as a context switch would interleave
    // them), stay isolated because each writes its own context registers.
    let mut b = Bench::new(2, HibConfig::telegraphos_ii());
    b.boards[0].install_context_key(0, 100);
    b.boards[0].install_context_key(1, 200);
    b.segments[1].write(GOffset::new(0), 7);
    b.segments[1].write(GOffset::new(8), 50);

    let ctx_reg =
        |ctx: u64, slot: u64| PAddr::hib_reg(reg::CTX_BASE + ctx * reg::CTX_STRIDE + slot * 8);
    // Process A arms a fetch&inc(+1) on word 0 in context 0...
    b.store(0, ctx_reg(0, reg::SLOT_OP), opcode::FETCH_INC);
    // ...interleaved: process B arms a fetch&store(999) on word 1 in
    // context 1.
    b.store(0, ctx_reg(1, reg::SLOT_OP), opcode::FETCH_STORE);
    b.store(0, ctx_reg(0, reg::SLOT_DATUM0), 1);
    b.store(0, ctx_reg(1, reg::SLOT_DATUM0), 999);
    let arg_a = ShadowArg {
        ctx: 0,
        key: 100,
        slot: 0,
    };
    let arg_b = ShadowArg {
        ctx: 1,
        key: 200,
        slot: 0,
    };
    b.store(0, remote(1, 8).shadow(), arg_b.encode());
    b.store(0, remote(1, 0).shadow(), arg_a.encode());
    // B fires first, then A.
    assert_eq!(b.load(0, ctx_reg(1, reg::SLOT_GO)), LoadOutcome::Pending);
    b.run();
    assert_eq!(b.load(0, ctx_reg(0, reg::SLOT_GO)), LoadOutcome::Pending);
    b.run();
    // B's fetch&store hit word 1 with 999; A's fetch&inc hit word 0.
    assert_eq!(b.segments[1].read(GOffset::new(8)), 999);
    assert_eq!(b.segments[1].read(GOffset::new(0)), 8);
    let results: Vec<_> = b.completions[0]
        .iter()
        .filter_map(|(_, r)| match r {
            CpuResult::LaunchDone { result } => Some(*result),
            _ => None,
        })
        .collect();
    assert_eq!(results, vec![50, 7], "old values, B then A");
}

#[test]
fn multicast_write_is_acked_for_fence_coverage() {
    let mut b = Bench::new(3, HibConfig::default());
    b.boards[0].shared_map().set_mode(
        PageNum::new(0),
        PageMode::EagerMapped {
            outs: vec![
                (NodeId::new(1), PageNum::new(0)),
                (NodeId::new(2), PageNum::new(0)),
            ],
        },
    );
    assert_eq!(b.store(0, local(0), 5), StoreOutcome::Done);
    assert!(!b.boards[0].quiescent(), "multicasts outstanding");
    assert!(!b.fence(0), "fence must wait for multicast acks");
    b.run();
    let fences = b.completions[0]
        .iter()
        .filter(|(_, r)| matches!(r, CpuResult::FenceDone))
        .count();
    assert_eq!(fences, 1);
    assert_eq!(b.boards[0].stats().acks_rx, 2);
}

#[test]
fn hardware_page_fetch_streams_a_whole_page() {
    let mut b = Bench::new(2, HibConfig::default());
    for w in 0..1024u64 {
        b.segments[1].write(GOffset::new(w * 8), w + 1);
    }
    // Board 0's OS requests a page image via the hardware stream.
    b.with_board(0, |board, host| {
        board.send_os_message(
            NodeId::new(1),
            WireMsg::PageFetchReq { page: 0, tag: 77 },
            host,
        );
    });
    b.run();
    // Board 0's OS received the full page as PageData bursts.
    let mut words = 0u64;
    let mut saw_last = false;
    for (_, msg) in &b.os_msgs[0] {
        if let WireMsg::PageData {
            tag, vals, last, ..
        } = msg
        {
            assert_eq!(*tag, 77);
            words += vals.len() as u64;
            saw_last |= *last;
        }
    }
    assert_eq!(words, 1024);
    assert!(saw_last);
    // The home OS was notified who fetched (VSM copyset tracking hook).
    assert!(b.os_msgs[1]
        .iter()
        .any(|(src, msg)| *src == NodeId::new(0)
            && matches!(msg, WireMsg::PageFetchReq { tag: 77, .. })));
}
