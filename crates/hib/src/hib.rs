//! The Host Interface Board state machine.

use std::collections::{BTreeMap, HashMap, VecDeque};

use tg_mem::{Decoded, PAddr};
use tg_net::{
    DetectParams, FaultInjector, FrameFate, HeartbeatDetector, LinkError, LinkRx, Liveness,
    NetEvent, RxFifo, RxVerdict, TimerAction, TxPort,
};
use tg_proto::PendingCam;
use tg_sim::{CompId, SimTime};
use tg_wire::trace::{PacketEvent, SharedProbe, Site, Stage, TraceId};
use tg_wire::{
    AtomicOp, CtrlFrame, CtrlMsg, GOffset, NodeId, Packet, PageNum, PayloadPool, TimingConfig,
    WireMsg,
};

use crate::config::{HibConfig, LaunchMode, LocalWritePolicy};
use crate::host::{
    CounterKind, CpuResult, HibFault, HibHost, HibInterrupt, HibTick, LoadOutcome, OpError,
    StoreOutcome,
};

/// Recently-seen request tags remembered per source for idempotent-retry
/// deduplication. Retries arrive well within this window: a source has at
/// most `tx_queue_depth` (64) requests in flight toward one destination.
const DEDUPE_WINDOW: usize = 128;
use crate::pagemode::{PageMode, SharedMap};
use crate::regs::{decode_ctx_reg, opcode, reg, ShadowArg};

/// Operation counters exported for the experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HibStats {
    /// Remote writes issued by the local CPU.
    pub remote_writes: u64,
    /// Remote (blocking) reads issued.
    pub remote_reads: u64,
    /// Remote atomic operations launched.
    pub atomics: u64,
    /// Remote copies launched.
    pub copies: u64,
    /// Coherent updates sent to page owners.
    pub updates_sent: u64,
    /// Reflected writes received.
    pub reflections_rx: u64,
    /// Reflected writes ignored under rule 3 (counter non-zero).
    pub reflections_filtered: u64,
    /// Own reflected writes consumed under rule 2.
    pub reflections_own: u64,
    /// Multicast/reflected packets fanned out by this board.
    pub fanout_tx: u64,
    /// Write acknowledgements received.
    pub acks_rx: u64,
    /// Packets transmitted / received.
    pub pkts_tx: u64,
    /// Packets received.
    pub pkts_rx: u64,
    /// Bytes transmitted.
    pub bytes_tx: u64,
    /// Bytes received.
    pub bytes_rx: u64,
    /// CPU stalls because the TX queue was full.
    pub tx_stalls: u64,
    /// Page-access alarms raised.
    pub alarms: u64,
    /// Deepest TX-queue occupancy observed.
    pub tx_high_water: usize,
    /// Received packets fully processed (committed) by the rx pipeline.
    pub committed: u64,
    /// Link-layer faults surfaced as [`HibInterrupt::LinkFault`].
    pub link_faults: u64,
    /// Ack-starvation episodes surfaced as [`HibInterrupt::LinkStarved`].
    pub starvation_alarms: u64,
    /// Liveness beacons originated by this board.
    pub heartbeats_tx: u64,
    /// Liveness beacons received from peers.
    pub heartbeats_rx: u64,
    /// Peers this board's failure detector convicted.
    pub peer_downs: u64,
    /// Convicted peers whose beacons later resumed.
    pub peer_ups: u64,
    /// Tagged requests retried after the request timeout.
    pub op_retries: u64,
    /// Tagged requests failed with [`OpError::PeerUnreachable`].
    pub op_failures: u64,
    /// Completions that arrived for an operation already resolved (late
    /// acks after a failover, duplicate responses to a retry).
    pub stale_acks: u64,
    /// Duplicate requests suppressed by the idempotent-retry dedupe.
    pub dup_requests: u64,
    /// OS messages refused at issue time because the destination peer was
    /// already convicted (fail-fast instead of burning the retry budget).
    pub os_sends_refused: u64,
}

/// Why a store is parked at the HIB waiting to retry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StallReason {
    TxFull,
    CamFull,
    WaitReflect,
}

#[derive(Clone, Copy, Debug)]
struct StalledStore {
    pa: PAddr,
    val: u64,
    reason: StallReason,
}

#[derive(Clone, Debug)]
struct CopyInFlight {
    dst: GOffset,
}

/// Enough of a tagged request to rebuild its wire message for an
/// idempotent retry.
#[derive(Clone, Copy, Debug)]
enum OpKind {
    Write {
        addr: GOffset,
        val: u64,
    },
    Multicast {
        addr: GOffset,
        val: u64,
    },
    Read {
        addr: GOffset,
    },
    Atomic {
        op: AtomicOp,
        addr: GOffset,
        arg0: u64,
        arg1: u64,
    },
    Copy {
        from: GOffset,
        words: u32,
    },
}

/// A tagged remote request awaiting its completion, tracked for
/// request-level timeout/retry recovery.
#[derive(Clone, Copy, Debug)]
struct PendingOp {
    dst: NodeId,
    kind: OpKind,
    issued_at: SimTime,
    attempts: u32,
}

#[derive(Clone, Copy, Debug, Default)]
struct Context {
    key: u32,
    op: u64,
    addr: [Option<PAddr>; 2],
    datum: [u64; 2],
}

#[derive(Clone, Debug)]
struct SpecialMode {
    op: u64,
    args: Vec<(PAddr, u64)>,
}

/// The Telegraphos Host Interface Board (§2.2).
///
/// A passive state machine hosted inside a workstation component: the node
/// feeds it CPU transactions ([`cpu_store`], [`cpu_load`], [`fence`]) and
/// network events ([`on_net`], [`on_tick`]), and it reacts through the
/// [`HibHost`] callbacks. See the crate docs for the full transaction map.
///
/// [`cpu_store`]: Hib::cpu_store
/// [`cpu_load`]: Hib::cpu_load
/// [`fence`]: Hib::fence
/// [`on_net`]: Hib::on_net
/// [`on_tick`]: Hib::on_tick
#[derive(Debug)]
pub struct Hib {
    node: NodeId,
    config: HibConfig,
    timing: TimingConfig,
    // Network wiring.
    tx: Option<TxPort>,
    rx_upstream: Option<(CompId, u32)>,
    rx_fifo: RxFifo,
    tx_queue: VecDeque<Packet>,
    tx_busy: bool,
    rx_current: Option<Packet>,
    inject_seq: u64,
    // Sharing metadata.
    shared: SharedMap,
    // Outstanding-operation state (§2.2, completion detection).
    cam: PendingCam,
    outstanding_writes: u64,
    outstanding_updates: u64,
    copies_in_flight: HashMap<u32, CopyInFlight>,
    read_pending: Option<u32>,
    launch_pending: Option<u32>,
    next_tag: u32,
    fence_waiting: bool,
    stalled_store: Option<StalledStore>,
    // Special-operation launch.
    special: Option<SpecialMode>,
    contexts: Vec<Context>,
    /// Freelist for outgoing `CopyData`/`PageData` burst buffers; consumed
    /// incoming bursts are recycled here too, so a node in a symmetric
    /// copy exchange stops allocating once warm.
    pool: PayloadPool,
    stats: HibStats,
    // Observability (all `None`/no-op unless a probe is installed).
    probe: Option<SharedProbe>,
    /// Trace id of the packet currently being processed in `handle_rx`;
    /// packets enqueued while set are responses and get it as parent.
    rx_handling: Option<TraceId>,
    /// Trace id of the most recently injected packet, for the host to
    /// attribute to the CPU operation that caused it.
    last_injected: Option<TraceId>,
    /// Receiver half of the link-level reliability protocol on the input
    /// link, when the transmit port is enrolled.
    rx_link: Option<LinkRx>,
    /// Fault injector consulted at frame launch and credit return.
    injector: Option<FaultInjector>,
    /// Structured link errors observed (also surfaced as interrupts).
    link_errors: Vec<LinkError>,
    /// An RxUnwedge tick is already scheduled.
    unwedge_scheduled: bool,
    /// Watchdog progress meter, ticked on every packet commit.
    meter: Option<tg_sim::ProgressMeter>,
    /// Control frames discarded for a failed checksum on the input link.
    ctrl_discards: u64,
    /// The current ack-starvation episode has already raised its
    /// interrupt; cleared when ack progress resumes.
    starvation_alarmed: bool,
    /// Tagged remote requests in flight, for timeout/retry recovery.
    pending_ops: BTreeMap<u32, PendingOp>,
    /// An OpCheck sweep tick is already scheduled.
    op_check_armed: bool,
    /// Per-peer failure detector, fed by heartbeat beacons; present when
    /// the link reliability parameters enable heartbeats.
    detector: Option<HeartbeatDetector>,
    /// Beacon origination period, from the link reliability parameters.
    hb_every: Option<SimTime>,
    /// Sequence number of the next beacon (for switch flood dedupe).
    hb_seq: u64,
    /// Beacons are being originated; the Heartbeat tick rearms while set.
    /// Off by default so fault-free runs stay beacon-free and drain.
    hb_active: bool,
    /// Word keys of coherent updates awaiting their reflection, per owner:
    /// released one-by-one by rule-2 reflections, or wholesale when the
    /// owner is declared dead.
    updates_to: BTreeMap<u16, Vec<u64>>,
    /// Last atomic served per requester `(tag, old)`: a retried atomic is
    /// answered from here instead of being re-applied (idempotence).
    atomic_served: HashMap<u16, (u32, u64)>,
    /// Recently applied write/multicast tags per source, so a retried
    /// write is acked but not re-applied.
    writes_seen: HashMap<u16, VecDeque<u32>>,
    /// Structured request failures observed (also posted to the CPU for
    /// blocking operations).
    op_errors: Vec<OpError>,
}

impl Hib {
    /// Creates a board for `node`.
    pub fn new(node: NodeId, config: HibConfig, timing: TimingConfig) -> Self {
        let contexts = vec![Context::default(); config.contexts];
        let cam = PendingCam::new(config.cam_entries.max(1));
        Hib {
            node,
            config,
            timing,
            tx: None,
            rx_upstream: None,
            rx_fifo: RxFifo::new(8),
            tx_queue: VecDeque::new(),
            tx_busy: false,
            rx_current: None,
            inject_seq: 0,
            shared: SharedMap::new(),
            cam,
            outstanding_writes: 0,
            outstanding_updates: 0,
            copies_in_flight: HashMap::new(),
            read_pending: None,
            launch_pending: None,
            next_tag: 1,
            fence_waiting: false,
            stalled_store: None,
            special: None,
            contexts,
            pool: PayloadPool::new(),
            stats: HibStats::default(),
            probe: None,
            rx_handling: None,
            last_injected: None,
            rx_link: None,
            injector: None,
            link_errors: Vec::new(),
            unwedge_scheduled: false,
            meter: None,
            ctrl_discards: 0,
            starvation_alarmed: false,
            pending_ops: BTreeMap::new(),
            op_check_armed: false,
            detector: None,
            hb_every: None,
            hb_seq: 0,
            hb_active: false,
            updates_to: BTreeMap::new(),
            atomic_served: HashMap::new(),
            writes_seen: HashMap::new(),
            op_errors: Vec::new(),
        }
    }

    /// Installs a packet-lifecycle probe; events report this board's node
    /// as their [`Site`].
    pub fn set_probe(&mut self, probe: SharedProbe) {
        self.probe = Some(probe);
    }

    /// Trace id of the most recently injected packet, consumed by the host
    /// to attribute an injection to the CPU operation that caused it.
    pub fn take_last_injected(&mut self) -> Option<TraceId> {
        self.last_injected.take()
    }

    /// Deepest receive-FIFO occupancy observed.
    pub fn rx_fifo_high_water(&self) -> u32 {
        self.rx_fifo.high_water()
    }

    /// Packets currently queued in the receive FIFO.
    pub fn rx_fifo_depth(&self) -> usize {
        self.rx_fifo.len()
    }

    /// Total simulated time the transmit port spent blocked on credits.
    pub fn credit_stall(&self) -> SimTime {
        self.tx
            .as_ref()
            .map(TxPort::credit_stall)
            .unwrap_or(SimTime::ZERO)
    }

    /// Packets queued behind the transmit port.
    pub fn tx_queue_depth(&self) -> usize {
        self.tx_queue.len()
    }

    fn emit(&self, now: SimTime, packet: &Packet, stage: Stage, parent: Option<TraceId>) {
        if let Some(probe) = &self.probe {
            probe.packet(PacketEvent {
                at: now,
                trace: packet.trace_id(),
                parent,
                site: Site::Node(self.node),
                stage,
                kind: packet.msg.kind_str(),
                bytes: packet.size_bytes(),
            });
        }
    }

    /// Wires the board to the fabric (from `tg-net`'s builder output). A
    /// reliability-enrolled transmit port implies the receiver half of the
    /// protocol on the input link.
    pub fn wire(&mut self, tx: TxPort, rx_upstream: (CompId, u32), rx_capacity: u32) {
        if let Some(params) = tx.rel_params() {
            self.rx_link = Some(LinkRx::for_params(&params));
            if let Some(every) = params.heartbeat_every {
                self.hb_every = Some(every);
                self.detector = Some(HeartbeatDetector::new(
                    params.peer_timeout,
                    params.phi_factor,
                ));
            }
        }
        self.tx = Some(tx);
        self.rx_upstream = Some(rx_upstream);
        self.rx_fifo = RxFifo::new(rx_capacity);
    }

    /// Starts originating liveness beacons and arms the failure detector
    /// for `peers` (everyone else in the cluster), reconfiguring the
    /// beacon period and suspicion thresholds from `params` (which the
    /// caller has validated). The caller must follow up by routing a
    /// [`HibTick::Heartbeat`] into [`on_tick`]; the tick then self-rearms
    /// every `heartbeat_every` until [`stop_heartbeats`]. No-op unless
    /// the link reliability parameters enable heartbeats.
    ///
    /// [`on_tick`]: Hib::on_tick
    /// [`stop_heartbeats`]: Hib::stop_heartbeats
    pub fn prime_heartbeats(&mut self, peers: &[NodeId], now: SimTime, params: &DetectParams) {
        if self.hb_every.is_none() {
            return;
        }
        self.hb_every = Some(params.heartbeat_every);
        self.detector = Some(HeartbeatDetector::new(
            params.peer_timeout,
            params.phi_factor,
        ));
        self.hb_active = true;
        if let Some(det) = self.detector.as_mut() {
            for &p in peers {
                if p != self.node {
                    det.track(u64::from(p.raw()), now);
                }
            }
        }
    }

    /// Stops beacon origination: the next Heartbeat tick does not rearm,
    /// letting the event queue drain.
    pub fn stop_heartbeats(&mut self) {
        self.hb_active = false;
    }

    /// True while this board originates beacons.
    pub fn heartbeats_active(&self) -> bool {
        self.hb_active
    }

    /// True once this board's failure detector convicted `peer`.
    pub fn peer_down(&self, peer: NodeId) -> bool {
        self.detector
            .as_ref()
            .is_some_and(|d| d.is_down(u64::from(peer.raw())))
    }

    /// Peers currently convicted by this board's failure detector.
    pub fn down_peers(&self) -> Vec<NodeId> {
        self.detector
            .as_ref()
            .map(|d| {
                d.down_keys()
                    .into_iter()
                    .map(|k| NodeId::new(k as u16))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `(down, up)` transitions this board's failure detector recorded.
    pub fn peer_transitions(&self) -> (u64, u64) {
        self.detector
            .as_ref()
            .map(HeartbeatDetector::transition_counts)
            .unwrap_or((0, 0))
    }

    /// Structured request failures observed so far, in order.
    pub fn op_errors(&self) -> &[OpError] {
        &self.op_errors
    }

    /// Tagged remote requests currently awaiting completion.
    pub fn pending_op_count(&self) -> usize {
        self.pending_ops.len()
    }

    /// Installs the fault injector consulted when this board launches
    /// frames or returns credits (and for the rx-wedge fault).
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Installs a watchdog progress meter, ticked on every committed
    /// packet — the fabric-side signal that work is still flowing.
    pub fn set_progress_meter(&mut self, meter: tg_sim::ProgressMeter) {
        self.meter = Some(meter);
    }

    /// The directed link this board's transmit port feeds, once wired.
    pub fn tx_link(&self) -> Option<tg_net::LinkId> {
        self.tx.as_ref().and_then(TxPort::link)
    }

    /// Credit bookkeeping of the output link, for quiescence-time
    /// conservation checks. `None` until the board is wired.
    pub fn credit_ledger(&self) -> Option<tg_net::CreditLedger> {
        let tx = self.tx.as_ref()?;
        Some(tg_net::CreditLedger {
            link: tx.link()?,
            credits: tx.credits(),
            unacked: tx.unacked(),
            allowance: tx.allowance(),
        })
    }

    /// Structured link errors observed so far.
    pub fn link_errors(&self) -> &[LinkError] {
        &self.link_errors
    }

    /// Frames retransmitted on this board's output link.
    pub fn retransmits(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::retransmits)
    }

    /// Completed credit-resync handshakes on this board's output link.
    pub fn resyncs(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::resyncs)
    }

    /// Credit-resync probes issued on this board's output link.
    pub fn resync_probes(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::resync_probes)
    }

    /// Wire bytes retransmitted on this board's output link.
    pub fn retx_bytes(&self) -> u64 {
        self.tx.as_ref().map_or(0, TxPort::retx_bytes)
    }

    /// Control frames this board discarded for a failed checksum.
    pub fn ctrl_discards(&self) -> u64 {
        self.ctrl_discards
    }

    /// Frames parked in this board's SACK reorder window (must be zero
    /// at quiescence).
    pub fn reorder_depth(&self) -> usize {
        self.rx_link.as_ref().map_or(0, LinkRx::reorder_depth)
    }

    /// Consecutive unanswered (re)transmissions of the oldest
    /// unacknowledged frame on the output link.
    pub fn consecutive_attempts(&self) -> u32 {
        self.tx.as_ref().map_or(0, TxPort::consecutive_attempts)
    }

    /// True while the ack-starvation watchdog considers the output link
    /// starved.
    pub fn ack_starved(&self) -> bool {
        self.tx.as_ref().is_some_and(TxPort::ack_starved)
    }

    /// Frames the receive link layer rejected on this board's input link
    /// (checksum or sequence violations, duplicates).
    pub fn rx_discards(&self) -> u64 {
        self.rx_link
            .as_ref()
            .map_or(0, |rx| rx.corrupt_discards() + rx.seq_discards())
    }

    /// Per-port statistics for this board's link pair: the transmit side
    /// of its uplink plus the receive side of the reverse hop. `None`
    /// until the board is wired.
    pub fn port_snapshot(&self) -> Option<tg_net::PortSnapshot> {
        let tx = self.tx.as_ref()?;
        Some(tg_net::PortSnapshot {
            link: tx.link()?,
            tx_packets: tx.tx_packets(),
            tx_bytes: tx.tx_bytes(),
            credits: tx.credits(),
            allowance: tx.allowance(),
            credit_stall: tx.credit_stall(),
            retransmits: tx.retransmits(),
            retx_bytes: tx.retx_bytes(),
            resyncs: tx.resyncs(),
            resync_probes: tx.resync_probes(),
            rx_fifo_depth: self.rx_fifo.len() as u32,
            rx_fifo_high_water: self.rx_fifo.high_water(),
            rx_discards: self.rx_discards(),
        })
    }

    /// True once this board's output link was declared dead.
    pub fn link_dead(&self) -> bool {
        self.tx.as_ref().is_some_and(TxPort::is_dead)
    }

    /// Frames launched but not yet link-acknowledged on the output link.
    pub fn unacked(&self) -> usize {
        self.tx.as_ref().map_or(0, TxPort::unacked)
    }

    /// Credits currently in hand at the transmit port.
    pub fn tx_credits(&self) -> u32 {
        self.tx.as_ref().map_or(0, TxPort::credits)
    }

    /// The transmit port's initial credit allowance.
    pub fn tx_allowance(&self) -> u32 {
        self.tx.as_ref().map_or(0, TxPort::allowance)
    }

    /// This board's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operation counters.
    pub fn stats(&self) -> HibStats {
        self.stats
    }

    /// The pending-write CAM (stall/occupancy statistics for E7).
    pub fn cam(&self) -> &PendingCam {
        &self.cam
    }

    /// The sharing-metadata table (privileged driver access).
    pub fn shared_map(&mut self) -> &mut SharedMap {
        &mut self.shared
    }

    /// Read-only sharing metadata.
    pub fn shared_map_ref(&self) -> &SharedMap {
        &self.shared
    }

    /// Installs the authentication key of a Telegraphos context
    /// (privileged; done by the OS when handing a context to a process).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn install_context_key(&mut self, ctx: usize, key: u32) {
        self.contexts[ctx].key = key;
    }

    /// True when every outstanding remote operation has completed — the
    /// FENCE condition of §2.3.5.
    pub fn quiescent(&self) -> bool {
        self.tx_queue.is_empty()
            && !self.tx_busy
            && self.outstanding_writes == 0
            && self.outstanding_updates == 0
            && self.copies_in_flight.is_empty()
            && self.read_pending.is_none()
            && self.launch_pending.is_none()
    }

    // ------------------------------------------------------------------
    // CPU side
    // ------------------------------------------------------------------

    /// Presents a CPU store that decoded to HIB-visible space.
    pub fn cpu_store(&mut self, pa: PAddr, val: u64, host: &mut dyn HibHost) -> StoreOutcome {
        if pa.is_shadow() {
            return self.shadow_store(pa, val, host);
        }
        if let Some(special) = self.special.as_mut() {
            if matches!(
                pa.decode(),
                Decoded::Remote { .. } | Decoded::LocalShared { .. }
            ) {
                // Telegraphos I special mode: shared-space stores are
                // latched as operands, not performed (§2.2.4).
                special.args.push((pa, val));
                return StoreOutcome::Done;
            }
        }
        match pa.decode() {
            Decoded::Remote { node, off } => self.store_remote(node, off, val, host),
            Decoded::LocalShared { off } => self.store_local_shared(off, val, host),
            Decoded::HibReg { reg: r } => self.store_reg(r, val),
            Decoded::Private { .. } => {
                unreachable!("private stores never reach the HIB")
            }
        }
    }

    /// Presents a CPU load that decoded to HIB-visible space.
    pub fn cpu_load(&mut self, pa: PAddr, host: &mut dyn HibHost) -> LoadOutcome {
        match pa.unshadow().decode() {
            Decoded::Remote { node, off } => self.load_remote(node, off, host),
            Decoded::LocalShared { off } => {
                if !self.in_segment(off) {
                    return LoadOutcome::Fault(HibFault::OutOfSegment);
                }
                LoadOutcome::Ready(host.segment().read(off))
            }
            Decoded::HibReg { reg: r } => self.load_reg(r, host),
            Decoded::Private { .. } => {
                unreachable!("private loads never reach the HIB")
            }
        }
    }

    /// CPU fence (§2.3.5): returns `true` if already complete; otherwise
    /// the HIB will deliver [`CpuResult::FenceDone`] when the outstanding
    /// counters drain.
    pub fn fence(&mut self) -> bool {
        if self.quiescent() {
            true
        } else {
            self.fence_waiting = true;
            false
        }
    }

    fn store_remote(
        &mut self,
        node: NodeId,
        off: GOffset,
        val: u64,
        host: &mut dyn HibHost,
    ) -> StoreOutcome {
        if node == self.node {
            // The window decodes back to ourselves: treat as local shared.
            return self.store_local_shared(off, val, host);
        }
        if self.peer_down(node) {
            // Fail fast: posted writes to a convicted peer resolve as a
            // recorded structured error instead of burning retries.
            return self.fail_posted(node);
        }
        if !self.tx_has_room(1) {
            self.stats.tx_stalls += 1;
            self.stalled_store = Some(StalledStore {
                pa: PAddr::remote(node, off),
                val,
                reason: StallReason::TxFull,
            });
            return StoreOutcome::Stalled;
        }
        self.count_page_access(node, off.page(), CounterKind::Write, host);
        self.stats.remote_writes += 1;
        self.outstanding_writes += 1;
        let tag = self.alloc_tag();
        self.register_op(tag, node, OpKind::Write { addr: off, val }, host);
        self.enqueue(
            node,
            WireMsg::WriteReq {
                addr: off,
                val,
                tag,
            },
            host,
        );
        StoreOutcome::Done
    }

    /// Resolves a posted (non-blocking) operation to a convicted peer: the
    /// error is recorded, the CPU proceeds — posted semantics never stall
    /// on a dead destination.
    fn fail_posted(&mut self, peer: NodeId) -> StoreOutcome {
        self.stats.op_failures += 1;
        self.op_errors.push(OpError::PeerUnreachable { peer });
        StoreOutcome::Done
    }

    fn store_local_shared(
        &mut self,
        off: GOffset,
        val: u64,
        host: &mut dyn HibHost,
    ) -> StoreOutcome {
        if !self.in_segment(off) {
            return StoreOutcome::Fault(HibFault::OutOfSegment);
        }
        match self.shared.mode(off.page()).clone() {
            PageMode::Plain => {
                host.segment().write(off, val);
                StoreOutcome::Done
            }
            PageMode::EagerMapped { outs } => {
                if !self.tx_has_room(outs.len()) {
                    self.stats.tx_stalls += 1;
                    self.stalled_store = Some(StalledStore {
                        pa: PAddr::local_shared(off),
                        val,
                        reason: StallReason::TxFull,
                    });
                    return StoreOutcome::Stalled;
                }
                host.segment().write(off, val);
                let in_page = off.in_page();
                for (dst, dst_page) in outs {
                    if self.peer_down(dst) {
                        self.fail_posted(dst);
                        continue;
                    }
                    self.outstanding_writes += 1;
                    self.stats.fanout_tx += 1;
                    let addr = GOffset::from_page(dst_page, in_page);
                    let tag = self.alloc_tag();
                    self.register_op(tag, dst, OpKind::Multicast { addr, val }, host);
                    self.enqueue(dst, WireMsg::MulticastWrite { addr, val, tag }, host);
                }
                StoreOutcome::Done
            }
            PageMode::Owned { copies } => {
                if !self.tx_has_room(copies.len()) {
                    self.stats.tx_stalls += 1;
                    self.stalled_store = Some(StalledStore {
                        pa: PAddr::local_shared(off),
                        val,
                        reason: StallReason::TxFull,
                    });
                    return StoreOutcome::Stalled;
                }
                host.segment().write(off, val);
                self.reflect_to_copies(&copies, off.in_page(), val, self.node, host);
                StoreOutcome::Done
            }
            PageMode::Replica { owner, owner_page } => {
                self.store_replica(off, val, owner, owner_page, host)
            }
        }
    }

    fn store_replica(
        &mut self,
        off: GOffset,
        val: u64,
        owner: NodeId,
        owner_page: PageNum,
        host: &mut dyn HibHost,
    ) -> StoreOutcome {
        if self.peer_down(owner) {
            // The serializing owner is dead: apply locally so the store is
            // at least visible here, record the structured error. Ownership
            // failover (the OS layer) re-homes the page.
            host.segment().write(off, val);
            return self.fail_posted(owner);
        }
        if !self.tx_has_room(1) {
            self.stats.tx_stalls += 1;
            self.stalled_store = Some(StalledStore {
                pa: PAddr::local_shared(off),
                val,
                reason: StallReason::TxFull,
            });
            return StoreOutcome::Stalled;
        }
        let owner_addr = GOffset::from_page(owner_page, off.in_page());
        match self.config.local_write_policy {
            LocalWritePolicy::CountFiltered => {
                // §2.3.3 rule 1: update the local copy, bump the counter,
                // send the value to the owner.
                if !self.cam.try_increment(off.word_index()) {
                    self.stalled_store = Some(StalledStore {
                        pa: PAddr::local_shared(off),
                        val,
                        reason: StallReason::CamFull,
                    });
                    return StoreOutcome::Stalled;
                }
                host.segment().write(off, val);
                self.outstanding_updates += 1;
                self.stats.updates_sent += 1;
                self.updates_to
                    .entry(owner.raw())
                    .or_default()
                    .push(off.word_index());
                self.enqueue(
                    owner,
                    WireMsg::UpdateToOwner {
                        addr: owner_addr,
                        val,
                        writer: self.node,
                    },
                    host,
                );
                StoreOutcome::Done
            }
            LocalWritePolicy::StallUntilReflected => {
                // The rejected §2.3.2 alternative: do not touch the local
                // copy; hold the CPU until our reflected write applies it.
                self.outstanding_updates += 1;
                self.stats.updates_sent += 1;
                self.updates_to
                    .entry(owner.raw())
                    .or_default()
                    .push(off.word_index());
                self.enqueue(
                    owner,
                    WireMsg::UpdateToOwner {
                        addr: owner_addr,
                        val,
                        writer: self.node,
                    },
                    host,
                );
                self.stalled_store = Some(StalledStore {
                    pa: PAddr::local_shared(off),
                    val,
                    reason: StallReason::WaitReflect,
                });
                StoreOutcome::Stalled
            }
        }
    }

    fn store_reg(&mut self, r: u64, val: u64) -> StoreOutcome {
        if r == reg::SPECIAL_MODE {
            if self.config.launch_mode != LaunchMode::SpecialModePal {
                return StoreOutcome::Fault(HibFault::BadRegister);
            }
            self.special = if val == 0 {
                None
            } else {
                Some(SpecialMode {
                    op: val,
                    args: Vec::new(),
                })
            };
            return StoreOutcome::Done;
        }
        if let Some((ctx, slot)) = decode_ctx_reg(r) {
            if self.config.launch_mode != LaunchMode::ContextShadow || ctx >= self.contexts.len() {
                return StoreOutcome::Fault(HibFault::BadRegister);
            }
            // Direct context-register stores are protected by the mapping:
            // the OS maps each context's register page only into its owner
            // process, so no key check is needed here (§2.2.4).
            match slot {
                reg::SLOT_OP => self.contexts[ctx].op = val,
                reg::SLOT_DATUM0 => self.contexts[ctx].datum[0] = val,
                reg::SLOT_DATUM1 => self.contexts[ctx].datum[1] = val,
                _ => return StoreOutcome::Fault(HibFault::BadRegister),
            }
            return StoreOutcome::Done;
        }
        StoreOutcome::Fault(HibFault::BadRegister)
    }

    fn shadow_store(&mut self, pa: PAddr, val: u64, host: &mut dyn HibHost) -> StoreOutcome {
        if self.config.launch_mode != LaunchMode::ContextShadow {
            return StoreOutcome::Fault(HibFault::BadRegister);
        }
        let arg = ShadowArg::decode(val);
        let Some(ctx) = self.contexts.get_mut(arg.ctx as usize) else {
            host.interrupt(self.timing.interrupt_latency, HibInterrupt::Protection);
            return StoreOutcome::Fault(HibFault::BadContextKey);
        };
        if ctx.key != arg.key {
            // §2.2.5: "Only processes that know the key that corresponds to
            // a specific context can write physical addresses into it."
            host.interrupt(self.timing.interrupt_latency, HibInterrupt::Protection);
            return StoreOutcome::Fault(HibFault::BadContextKey);
        }
        if arg.slot > 1 {
            return StoreOutcome::Fault(HibFault::MalformedLaunch);
        }
        ctx.addr[arg.slot as usize] = Some(pa.unshadow());
        StoreOutcome::Done
    }

    fn load_remote(&mut self, node: NodeId, off: GOffset, host: &mut dyn HibHost) -> LoadOutcome {
        if node == self.node {
            if !self.in_segment(off) {
                return LoadOutcome::Fault(HibFault::OutOfSegment);
            }
            return LoadOutcome::Ready(host.segment().read(off));
        }
        if self.read_pending.is_some() {
            // Footnote ¶: "there can be no more than one outstanding read".
            return LoadOutcome::Fault(HibFault::ReadBusy);
        }
        if self.peer_down(node) {
            return self.fail_blocking(node, host);
        }
        self.count_page_access(node, off.page(), CounterKind::Read, host);
        self.stats.remote_reads += 1;
        let tag = self.alloc_tag();
        self.read_pending = Some(tag);
        self.register_op(tag, node, OpKind::Read { addr: off }, host);
        self.enqueue(node, WireMsg::ReadReq { addr: off, tag }, host);
        LoadOutcome::Pending
    }

    /// Resolves a blocking operation addressed to a convicted peer: the
    /// CPU stalls as usual but is released immediately with the structured
    /// error instead of a value.
    fn fail_blocking(&mut self, peer: NodeId, host: &mut dyn HibHost) -> LoadOutcome {
        let err = OpError::PeerUnreachable { peer };
        self.stats.op_failures += 1;
        self.op_errors.push(err);
        host.cpu_complete(SimTime::ZERO, CpuResult::OpFailed { err });
        LoadOutcome::Pending
    }

    fn load_reg(&mut self, r: u64, host: &mut dyn HibHost) -> LoadOutcome {
        if r == reg::GO {
            if self.config.launch_mode != LaunchMode::SpecialModePal {
                return LoadOutcome::Fault(HibFault::BadRegister);
            }
            let Some(sp) = self.special.take() else {
                return LoadOutcome::Fault(HibFault::MalformedLaunch);
            };
            return self.launch(sp.op, &sp.args, host);
        }
        if let Some((ctx_idx, slot)) = decode_ctx_reg(r) {
            if self.config.launch_mode != LaunchMode::ContextShadow
                || ctx_idx >= self.contexts.len()
            {
                return LoadOutcome::Fault(HibFault::BadRegister);
            }
            if slot != reg::SLOT_GO {
                return LoadOutcome::Fault(HibFault::BadRegister);
            }
            let ctx = self.contexts[ctx_idx];
            let mut args: Vec<(PAddr, u64)> = Vec::new();
            if let Some(a0) = ctx.addr[0] {
                args.push((a0, ctx.datum[0]));
                match ctx.addr[1] {
                    Some(a1) => args.push((a1, ctx.datum[1])),
                    // Single-address operations (e.g. compare-and-swap)
                    // still consume the second datum register.
                    None => args.push((a0, ctx.datum[1])),
                }
            }
            let out = self.launch(ctx.op, &args, host);
            if !matches!(out, LoadOutcome::Fault(_)) {
                // Launch consumed the context arguments.
                let c = &mut self.contexts[ctx_idx];
                c.addr = [None, None];
            }
            return out;
        }
        LoadOutcome::Fault(HibFault::BadRegister)
    }

    /// Executes a special operation with latched arguments.
    fn launch(&mut self, op: u64, args: &[(PAddr, u64)], host: &mut dyn HibHost) -> LoadOutcome {
        match op {
            opcode::FETCH_STORE | opcode::FETCH_INC | opcode::COMPARE_SWAP => {
                let Some(&(target, datum0)) = args.first() else {
                    return LoadOutcome::Fault(HibFault::MalformedLaunch);
                };
                let datum1 = args.get(1).map(|&(_, d)| d).unwrap_or(0);
                let aop = match op {
                    opcode::FETCH_STORE => AtomicOp::FetchStore,
                    opcode::FETCH_INC => AtomicOp::FetchInc,
                    _ => AtomicOp::CompareSwap,
                };
                self.stats.atomics += 1;
                match target.decode() {
                    Decoded::Remote { node, off } if node != self.node => {
                        if self.peer_down(node) {
                            return self.fail_blocking(node, host);
                        }
                        self.count_page_access(node, off.page(), CounterKind::Write, host);
                        let tag = self.alloc_tag();
                        self.launch_pending = Some(tag);
                        self.register_op(
                            tag,
                            node,
                            OpKind::Atomic {
                                op: aop,
                                addr: off,
                                arg0: datum0,
                                arg1: datum1,
                            },
                            host,
                        );
                        self.enqueue(
                            node,
                            WireMsg::AtomicReq {
                                op: aop,
                                addr: off,
                                arg0: datum0,
                                arg1: datum1,
                                tag,
                            },
                            host,
                        );
                        LoadOutcome::Pending
                    }
                    Decoded::Remote { off, .. } | Decoded::LocalShared { off } => {
                        if !self.in_segment(off) {
                            return LoadOutcome::Fault(HibFault::OutOfSegment);
                        }
                        if let PageMode::Replica { owner, owner_page } =
                            self.shared.mode(off.page()).clone()
                        {
                            // Atomics on a replicated page must be
                            // serialized by its owner like any other write
                            // (§2.3.1); executing them on the local copy
                            // would break atomicity across copies.
                            if self.peer_down(owner) {
                                return self.fail_blocking(owner, host);
                            }
                            let owner_addr = GOffset::from_page(owner_page, off.in_page());
                            let tag = self.alloc_tag();
                            self.launch_pending = Some(tag);
                            self.register_op(
                                tag,
                                owner,
                                OpKind::Atomic {
                                    op: aop,
                                    addr: owner_addr,
                                    arg0: datum0,
                                    arg1: datum1,
                                },
                                host,
                            );
                            self.enqueue(
                                owner,
                                WireMsg::AtomicReq {
                                    op: aop,
                                    addr: owner_addr,
                                    arg0: datum0,
                                    arg1: datum1,
                                    tag,
                                },
                                host,
                            );
                            return LoadOutcome::Pending;
                        }
                        let old = self.apply_atomic(aop, off, datum0, datum1, host);
                        LoadOutcome::Ready(old)
                    }
                    _ => LoadOutcome::Fault(HibFault::MalformedLaunch),
                }
            }
            opcode::COPY => {
                // args[0] = remote source, args[1] = local destination;
                // datum of the source argument = word count.
                let (Some(&(src, words)), Some(&(dst, _))) = (args.first(), args.get(1)) else {
                    return LoadOutcome::Fault(HibFault::MalformedLaunch);
                };
                let (Decoded::Remote { node, off }, Decoded::LocalShared { off: dst_off }) =
                    (src.decode(), dst.decode())
                else {
                    return LoadOutcome::Fault(HibFault::MalformedLaunch);
                };
                if words == 0 {
                    return LoadOutcome::Fault(HibFault::MalformedLaunch);
                }
                if self.peer_down(node) {
                    // Copies are posted (§2.2.2): record the error and
                    // return control without tracking a transfer that can
                    // never complete.
                    self.fail_posted(node);
                    return LoadOutcome::Ready(0);
                }
                self.count_page_access(node, off.page(), CounterKind::Read, host);
                self.stats.copies += 1;
                let tag = self.alloc_tag();
                self.copies_in_flight
                    .insert(tag, CopyInFlight { dst: dst_off });
                self.register_op(
                    tag,
                    node,
                    OpKind::Copy {
                        from: off,
                        words: words as u32,
                    },
                    host,
                );
                self.enqueue(
                    node,
                    WireMsg::CopyReq {
                        from: off,
                        words: words as u32,
                        tag,
                    },
                    host,
                );
                // §2.2.2: "it returns control to the processor without
                // waiting for the completion of the operation".
                LoadOutcome::Ready(0)
            }
            _ => LoadOutcome::Fault(HibFault::MalformedLaunch),
        }
    }

    // ------------------------------------------------------------------
    // Network side
    // ------------------------------------------------------------------

    /// Handles a network event addressed to this board.
    pub fn on_net(&mut self, ev: NetEvent, host: &mut dyn HibHost) {
        match ev {
            NetEvent::Arrive { packet, .. } => {
                let verdict = self.rx_link.as_mut().map(|rx| rx.accept(&packet));
                match verdict {
                    None => {
                        self.emit(host.now(), &packet, Stage::RxEnqueue, None);
                        if let Err(err) = self.rx_fifo.push(packet) {
                            self.record_link_error(err, host);
                        }
                        self.pump_rx(host);
                    }
                    Some(RxVerdict::Accept { ack }) => {
                        let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(
                            CtrlMsg::Ack { seq: ack, sack },
                            self.timing.link_prop,
                            host,
                        );
                        self.emit(host.now(), &packet, Stage::RxEnqueue, None);
                        if let Err(err) = self.rx_fifo.push(packet) {
                            self.record_link_error(err, host);
                        }
                        // The arrival may have closed a reorder-window
                        // gap: enqueue the released successors in order.
                        // Credit accounting bounds FIFO + window occupancy
                        // by the allowance, so the burst cannot overflow.
                        let released = self
                            .rx_link
                            .as_mut()
                            .map(LinkRx::take_ready)
                            .unwrap_or_default();
                        for p in released {
                            self.emit(host.now(), &p, Stage::RxEnqueue, None);
                            if let Err(err) = self.rx_fifo.push(p) {
                                self.record_link_error(err, host);
                            }
                        }
                        self.pump_rx(host);
                    }
                    Some(RxVerdict::Held { ack, nack, dup }) => {
                        if dup {
                            // Spurious retransmit of an already-parked
                            // frame: drop the copy (the missing base
                            // frame's ack will carry the bitmap).
                            self.emit(host.now(), &packet, Stage::Dropped, None);
                        } else if nack {
                            let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                            self.send_ctrl(
                                CtrlMsg::Nack {
                                    expected: ack + 1,
                                    sack,
                                },
                                self.timing.link_prop,
                                host,
                            );
                        } else {
                            // Refresh the sender's view of the window with
                            // a duplicate cumulative ack + grown bitmap.
                            let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                            self.send_ctrl(
                                CtrlMsg::Ack { seq: ack, sack },
                                self.timing.link_prop,
                                host,
                            );
                        }
                    }
                    Some(RxVerdict::DupAck { ack }) => {
                        self.emit(host.now(), &packet, Stage::Dropped, None);
                        let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(
                            CtrlMsg::Ack { seq: ack, sack },
                            self.timing.link_prop,
                            host,
                        );
                    }
                    Some(RxVerdict::NackCorrupt { expected })
                    | Some(RxVerdict::NackGap { expected }) => {
                        self.emit(host.now(), &packet, Stage::Dropped, None);
                        let sack = self.rx_link.as_ref().map_or(0, LinkRx::sack_bits);
                        self.send_ctrl(
                            CtrlMsg::Nack { expected, sack },
                            self.timing.link_prop,
                            host,
                        );
                    }
                    Some(RxVerdict::Discard) => {
                        self.emit(host.now(), &packet, Stage::Dropped, None);
                    }
                }
            }
            NetEvent::Credit { .. } => {
                let now = host.now();
                if let Some(tx) = self.tx.as_mut() {
                    if let Err(err) = tx.on_credit_at(now) {
                        self.record_link_error(err, host);
                    }
                }
                self.pump_tx(host);
            }
            NetEvent::PumpOut { .. } => {
                // Switch-style pump events are not used by the HIB; its
                // own TX release travels as HibTick::TxFree.
                self.on_tick(HibTick::TxFree, host);
            }
            NetEvent::Ctrl { frame, .. } => {
                if !frame.checksum_ok() {
                    self.ctrl_discards += 1;
                    return;
                }
                match frame.msg {
                    CtrlMsg::Ack { seq, sack } => {
                        if let Some(tx) = self.tx.as_mut() {
                            tx.on_ack(seq, sack, host.now());
                        }
                        self.check_starvation(host);
                        self.pump_tx(host);
                    }
                    CtrlMsg::Nack { expected, sack } => {
                        let action = self
                            .tx
                            .as_mut()
                            .map(|tx| tx.on_nack(expected, sack, host.now()));
                        if let Some(TimerAction::Dead(err)) = action {
                            self.record_link_error(err, host);
                        }
                        self.check_starvation(host);
                        self.pump_tx(host);
                    }
                    CtrlMsg::SyncReq { token } => {
                        // Resync replies are idempotent: the drain counter
                        // is monotone, so answering a retried (or
                        // duplicated) probe never double-credits.
                        let drained = self.rx_link.as_ref().map(LinkRx::drained).unwrap_or(0);
                        self.send_ctrl(
                            CtrlMsg::SyncAck { token, drained },
                            self.timing.link_prop,
                            host,
                        );
                    }
                    CtrlMsg::SyncAck { token, drained } => {
                        let now = host.now();
                        let applied = self
                            .tx
                            .as_mut()
                            .map(|tx| tx.on_sync_ack(token, drained, now))
                            .unwrap_or(false);
                        if applied {
                            self.emit_resync(now, token);
                        }
                        self.pump_tx(host);
                    }
                    CtrlMsg::Heartbeat { origin, .. } => {
                        self.on_heartbeat(origin, host);
                    }
                    CtrlMsg::Reset { next } => {
                        // The neighbor revived its transmit epoch after an
                        // outage; resynchronize the receive sequence.
                        if let Some(rx) = self.rx_link.as_mut() {
                            rx.on_reset(next);
                        }
                    }
                }
            }
            NetEvent::RetxTimer { gen, .. } => {
                // Delivered when another component (tests) drives the HIB
                // with raw net events; the cluster uses HibTick::RetxTimer.
                self.on_tick(HibTick::RetxTimer { gen }, host);
            }
        }
    }

    /// Handles an internal timer scheduled through the host.
    pub fn on_tick(&mut self, tick: HibTick, host: &mut dyn HibHost) {
        match tick {
            HibTick::TxFree => {
                self.tx_busy = false;
                if let Some(tx) = self.tx.as_mut() {
                    tx.on_free();
                }
                self.retry_stalled(host);
                self.pump_tx(host);
                self.check_fence(host);
            }
            HibTick::RxDone => {
                let packet = self.rx_current.take().expect("rx pipeline was busy");
                self.handle_rx(packet, host);
                if let Some(rx) = self.rx_link.as_mut() {
                    rx.on_drain();
                }
                // Return the credit for the consumed packet.
                self.return_rx_credit(host);
                self.pump_rx(host);
                self.check_fence(host);
            }
            HibTick::RetxTimer { gen } => {
                let action = self
                    .tx
                    .as_mut()
                    .map(|tx| tx.on_timer(gen, host.now()))
                    .unwrap_or(TimerAction::Stale);
                match action {
                    TimerAction::Retransmit => {
                        self.check_starvation(host);
                        self.pump_tx(host);
                    }
                    TimerAction::Resync { token } => {
                        self.emit_resync(host.now(), token);
                        self.send_ctrl(CtrlMsg::SyncReq { token }, self.timing.link_prop, host);
                    }
                    TimerAction::Dead(err) => self.record_link_error(err, host),
                    TimerAction::Stale | TimerAction::Idle => {}
                }
                self.arm_timer(host);
            }
            HibTick::RxUnwedge => {
                self.unwedge_scheduled = false;
                self.pump_rx(host);
                self.check_fence(host);
            }
            HibTick::Heartbeat => {
                if !self.hb_active {
                    return;
                }
                self.hb_seq += 1;
                self.stats.heartbeats_tx += 1;
                self.send_ctrl(
                    CtrlMsg::Heartbeat {
                        origin: self.node,
                        seq: self.hb_seq,
                    },
                    self.timing.link_prop,
                    host,
                );
                self.sweep_detector(host);
                // Operations issued before heartbeats were enabled get
                // their sweep armed here.
                self.arm_op_check(host);
                if let Some(every) = self.hb_every {
                    host.schedule_tick(every, HibTick::Heartbeat);
                }
            }
            HibTick::OpCheck => {
                self.op_check_armed = false;
                self.scan_pending_ops(host);
                self.arm_op_check(host);
            }
        }
    }

    /// A peer's beacon reached this board (flooded by the switches).
    fn on_heartbeat(&mut self, origin: NodeId, host: &mut dyn HibHost) {
        if origin == self.node {
            return;
        }
        self.stats.heartbeats_rx += 1;
        let now = host.now();
        // A beacon reached this board, so the fabric path to it works
        // again; if our own uplink had been declared dead (a switch outage
        // severs both directions), revive it under a fresh epoch and tell
        // the neighbor to resynchronize its receive sequence.
        if self.tx.as_ref().is_some_and(TxPort::is_dead) {
            let next = self.tx.as_mut().expect("tx wired").reset_epoch(now);
            self.send_ctrl(CtrlMsg::Reset { next }, self.timing.link_prop, host);
            self.pump_tx(host);
            self.arm_timer(host);
        }
        let revived = self
            .detector
            .as_mut()
            .and_then(|d| d.saw(u64::from(origin.raw()), now));
        if revived == Some(Liveness::Up) {
            self.peer_up_transition(origin, host);
        }
        self.sweep_detector(host);
    }

    /// Runs the failure detector; every newly-convicted peer triggers the
    /// down transition (interrupt, trace point, sweep-fail of its ops).
    fn sweep_detector(&mut self, host: &mut dyn HibHost) {
        let newly = match self.detector.as_mut() {
            Some(d) => d.check(host.now()),
            None => return,
        };
        for key in newly {
            self.peer_down_transition(NodeId::new(key as u16), host);
        }
    }

    fn peer_down_transition(&mut self, peer: NodeId, host: &mut dyn HibHost) {
        self.stats.peer_downs += 1;
        self.emit_peer(host.now(), peer, Stage::PeerDown, self.stats.peer_downs);
        host.interrupt(
            self.timing.interrupt_latency,
            HibInterrupt::PeerDown { peer },
        );
        self.fail_ops_to(peer, host);
    }

    fn peer_up_transition(&mut self, peer: NodeId, host: &mut dyn HibHost) {
        self.stats.peer_ups += 1;
        // The restarted peer lost its volatile state and restarts its tag
        // space; stale dedupe entries would suppress its fresh requests.
        self.atomic_served.remove(&peer.raw());
        self.writes_seen.remove(&peer.raw());
        self.emit_peer(host.now(), peer, Stage::PeerUp, self.stats.peer_ups);
        host.interrupt(self.timing.interrupt_latency, HibInterrupt::PeerUp { peer });
    }

    /// Resolves every in-flight operation addressed to a convicted peer
    /// with [`OpError::PeerUnreachable`] so nothing hangs on a dead node.
    fn fail_ops_to(&mut self, peer: NodeId, host: &mut dyn HibHost) {
        let err = OpError::PeerUnreachable { peer };
        let tags: Vec<u32> = self
            .pending_ops
            .iter()
            .filter(|(_, op)| op.dst == peer)
            .map(|(&t, _)| t)
            .collect();
        for tag in tags {
            self.fail_op(tag, err, host);
        }
        // Coherent updates sent to a dead owner never reflect back:
        // release their completion accounting and pending-write counters.
        if let Some(keys) = self.updates_to.remove(&peer.raw()) {
            self.outstanding_updates = self.outstanding_updates.saturating_sub(keys.len() as u64);
            if self.config.local_write_policy == LocalWritePolicy::CountFiltered {
                for key in keys {
                    self.cam.decrement(key);
                }
            }
            self.retry_stalled(host);
        }
        // A store stalled on the dead owner's reflection resolves with the
        // error instead of holding the CPU forever.
        if let Some(s) = self.stalled_store {
            if s.reason == StallReason::WaitReflect {
                if let Decoded::LocalShared { off } = s.pa.decode() {
                    if let PageMode::Replica { owner, .. } = self.shared.mode(off.page()).clone() {
                        if owner == peer {
                            self.stalled_store = None;
                            self.stats.op_failures += 1;
                            self.op_errors.push(err);
                            host.cpu_complete(SimTime::ZERO, CpuResult::OpFailed { err });
                        }
                    }
                }
            }
        }
        self.check_fence(host);
    }

    /// Registers a tagged request for timeout/retry recovery.
    fn register_op(&mut self, tag: u32, dst: NodeId, kind: OpKind, host: &mut dyn HibHost) {
        self.pending_ops.insert(
            tag,
            PendingOp {
                dst,
                kind,
                issued_at: host.now(),
                attempts: 1,
            },
        );
        self.arm_op_check(host);
    }

    /// Arms the pending-operation sweep. Only active alongside heartbeats:
    /// without a failure detector there is no conviction to act on, and
    /// the reliable link layer already guarantees delivery to live peers.
    fn arm_op_check(&mut self, host: &mut dyn HibHost) {
        if self.op_check_armed || !self.hb_active || self.pending_ops.is_empty() {
            return;
        }
        self.op_check_armed = true;
        host.schedule_tick(self.config.op_timeout, HibTick::OpCheck);
    }

    /// Retries or fails every tagged request older than the op timeout.
    fn scan_pending_ops(&mut self, host: &mut dyn HibHost) {
        let now = host.now();
        let timeout = self.config.op_timeout;
        let due: Vec<u32> = self
            .pending_ops
            .iter()
            .filter(|(_, op)| now >= op.issued_at + timeout)
            .map(|(&t, _)| t)
            .collect();
        for tag in due {
            let Some(op) = self.pending_ops.get(&tag).copied() else {
                continue;
            };
            if self.peer_down(op.dst) || op.attempts >= self.config.op_retries.max(1) {
                self.fail_op(tag, OpError::PeerUnreachable { peer: op.dst }, host);
            } else if self.tx_has_room(1) {
                let entry = self.pending_ops.get_mut(&tag).expect("present");
                entry.attempts += 1;
                entry.issued_at = now;
                self.stats.op_retries += 1;
                self.enqueue(op.dst, Self::rebuild_msg(tag, op.kind), host);
            }
            // No TX room: leave issued_at alone; the next sweep retries.
        }
    }

    fn rebuild_msg(tag: u32, kind: OpKind) -> WireMsg {
        match kind {
            OpKind::Write { addr, val } => WireMsg::WriteReq { addr, val, tag },
            OpKind::Multicast { addr, val } => WireMsg::MulticastWrite { addr, val, tag },
            OpKind::Read { addr } => WireMsg::ReadReq { addr, tag },
            OpKind::Atomic {
                op,
                addr,
                arg0,
                arg1,
            } => WireMsg::AtomicReq {
                op,
                addr,
                arg0,
                arg1,
                tag,
            },
            OpKind::Copy { from, words } => WireMsg::CopyReq { from, words, tag },
        }
    }

    /// Resolves one tagged request as failed, releasing whatever CPU or
    /// fence accounting it held.
    fn fail_op(&mut self, tag: u32, err: OpError, host: &mut dyn HibHost) {
        let Some(op) = self.pending_ops.remove(&tag) else {
            return;
        };
        self.stats.op_failures += 1;
        self.op_errors.push(err);
        match op.kind {
            OpKind::Write { .. } | OpKind::Multicast { .. } => {
                self.outstanding_writes = self.outstanding_writes.saturating_sub(1);
            }
            OpKind::Read { .. } => {
                if self.read_pending == Some(tag) {
                    self.read_pending = None;
                    host.cpu_complete(SimTime::ZERO, CpuResult::OpFailed { err });
                }
            }
            OpKind::Atomic { .. } => {
                if self.launch_pending == Some(tag) {
                    self.launch_pending = None;
                    host.cpu_complete(SimTime::ZERO, CpuResult::OpFailed { err });
                }
            }
            OpKind::Copy { .. } => {
                self.copies_in_flight.remove(&tag);
            }
        }
        self.check_fence(host);
    }

    /// True when `(src, tag)` has not been applied before; records it.
    /// Retried requests (same tag) are acked but not re-applied.
    fn note_first_delivery(&mut self, src: NodeId, tag: u32) -> bool {
        let window = self.writes_seen.entry(src.raw()).or_default();
        if window.contains(&tag) {
            self.stats.dup_requests += 1;
            return false;
        }
        window.push_back(tag);
        if window.len() > DEDUPE_WINDOW {
            window.pop_front();
        }
        true
    }

    fn emit_peer(&self, now: SimTime, peer: NodeId, stage: Stage, count: u64) {
        if let Some(probe) = &self.probe {
            probe.packet(PacketEvent {
                at: now,
                trace: TraceId::packet(peer, count),
                parent: None,
                site: Site::Node(self.node),
                stage,
                kind: if stage == Stage::PeerDown {
                    "peer-down"
                } else {
                    "peer-up"
                },
                bytes: 0,
            });
        }
    }

    fn record_link_error(&mut self, err: LinkError, host: &mut dyn HibHost) {
        self.stats.link_faults += 1;
        self.link_errors.push(err);
        host.interrupt(
            self.timing.interrupt_latency,
            HibInterrupt::LinkFault { error: err },
        );
    }

    /// Ack-starvation watchdog: when half the retransmit budget has been
    /// burned on the oldest frame with no ack progress, the control plane
    /// toward the neighbor is effectively down — raise one interrupt per
    /// episode so the OS can react before the link is declared dead.
    fn check_starvation(&mut self, host: &mut dyn HibHost) {
        let starved = self.tx.as_ref().is_some_and(TxPort::ack_starved);
        if starved && !self.starvation_alarmed {
            self.starvation_alarmed = true;
            self.stats.starvation_alarms += 1;
            let attempts = self.consecutive_attempts();
            host.interrupt(
                self.timing.interrupt_latency,
                HibInterrupt::LinkStarved { attempts },
            );
        } else if !starved {
            self.starvation_alarmed = false;
        }
    }

    /// Seals and launches one control frame toward the upstream switch
    /// after `delay`, consulting the injector for its fate. The board's
    /// uplink and its credit-return path share one physical link, so
    /// control traffic in either role rides `tx.link()`.
    fn send_ctrl(&mut self, msg: CtrlMsg, delay: SimTime, host: &mut dyn HibHost) {
        let Some((up, port)) = self.rx_upstream else {
            return;
        };
        let link = self.tx.as_ref().and_then(TxPort::link);
        let mut frame = CtrlFrame::seal(msg);
        if let (Some(inj), Some(link)) = (self.injector.as_ref(), link) {
            if inj.ctrl_fate(link, host.now(), &mut frame) == FrameFate::Drop {
                return;
            }
        }
        host.schedule_net(delay, up, NetEvent::Ctrl { port, frame });
    }

    /// Returns the credit for a consumed arrival, unless the injector
    /// loses it on the way back upstream.
    fn return_rx_credit(&mut self, host: &mut dyn HibHost) {
        let Some((up, port)) = self.rx_upstream else {
            return;
        };
        let link = self.tx.as_ref().and_then(TxPort::link);
        if let (Some(inj), Some(link)) = (self.injector.as_ref(), link) {
            if inj.credit_lost(link, host.now()) {
                return;
            }
        }
        host.schedule_net(self.timing.link_prop, up, NetEvent::Credit { port });
    }

    fn emit_resync(&self, now: SimTime, token: u64) {
        if let Some(probe) = &self.probe {
            probe.packet(PacketEvent {
                at: now,
                trace: TraceId::packet(self.node, token),
                parent: None,
                site: Site::Node(self.node),
                stage: Stage::CreditResync,
                kind: "credit-resync",
                bytes: 0,
            });
        }
    }

    /// Arms the link-recovery timer when one is needed and none is armed.
    fn arm_timer(&mut self, host: &mut dyn HibHost) {
        if let Some(tx) = self.tx.as_mut() {
            if let Some((delay, gen)) = tx.poll_timer(host.now()) {
                host.schedule_tick(delay, HibTick::RetxTimer { gen });
            }
        }
    }

    fn pump_rx(&mut self, host: &mut dyn HibHost) {
        if self.rx_current.is_some() {
            return;
        }
        // A fault-injected wedge freezes the receive pipeline: frames sit
        // in the FIFO undrained and no credits flow back until release.
        if let Some(inj) = self.injector.as_ref() {
            if let Some(until) = inj.wedged_until(self.node, host.now()) {
                if !self.unwedge_scheduled {
                    self.unwedge_scheduled = true;
                    host.schedule_tick(until - host.now(), HibTick::RxUnwedge);
                }
                return;
            }
        }
        let Some(packet) = self.rx_fifo.pop() else {
            return;
        };
        self.stats.pkts_rx += 1;
        self.stats.bytes_rx += u64::from(packet.size_bytes());
        let touches_memory = matches!(
            packet.msg,
            WireMsg::WriteReq { .. }
                | WireMsg::ReadReq { .. }
                | WireMsg::AtomicReq { .. }
                | WireMsg::CopyReq { .. }
                | WireMsg::CopyData { .. }
                | WireMsg::UpdateToOwner { .. }
                | WireMsg::ReflectedWrite { .. }
                | WireMsg::MulticastWrite { .. }
                | WireMsg::PageFetchReq { .. }
        );
        let delay = if touches_memory {
            self.timing.hib_proc + self.timing.hib_sram_access
        } else {
            self.timing.hib_proc
        };
        self.emit(host.now(), &packet, Stage::RxStart, None);
        self.rx_current = Some(packet);
        host.schedule_tick(delay, HibTick::RxDone);
    }

    fn handle_rx(&mut self, packet: Packet, host: &mut dyn HibHost) {
        self.emit(host.now(), &packet, Stage::Commit, None);
        self.stats.committed += 1;
        if let Some(meter) = self.meter.as_ref() {
            meter.tick();
        }
        self.rx_handling = Some(packet.trace_id());
        self.dispatch_rx(packet, host);
        self.rx_handling = None;
    }

    fn dispatch_rx(&mut self, packet: Packet, host: &mut dyn HibHost) {
        let src = packet.src;
        match packet.msg {
            WireMsg::WriteReq { addr, val, tag } => {
                if self.note_first_delivery(src, tag) {
                    self.apply_home_write(addr, val, None, host);
                }
                self.enqueue(src, WireMsg::WriteAck { tag }, host);
            }
            WireMsg::WriteAck { tag } => {
                if self.pending_ops.remove(&tag).is_some() {
                    self.outstanding_writes = self.outstanding_writes.saturating_sub(1);
                    self.stats.acks_rx += 1;
                } else {
                    // A late ack for a write already failed over (or a
                    // duplicate answer to a retry): accounting is done.
                    self.stats.stale_acks += 1;
                }
            }
            WireMsg::ReadReq { addr, tag } => {
                let val = host.segment().read(addr);
                self.enqueue(src, WireMsg::ReadResp { tag, val }, host);
            }
            WireMsg::ReadResp { tag, val } => {
                if self.read_pending == Some(tag) {
                    self.read_pending = None;
                    self.pending_ops.remove(&tag);
                    host.cpu_complete(SimTime::ZERO, CpuResult::LoadDone { val });
                } else {
                    self.stats.stale_acks += 1;
                }
            }
            WireMsg::AtomicReq {
                op,
                addr,
                arg0,
                arg1,
                tag,
            } => {
                // Idempotent retry: a requester has at most one atomic in
                // flight, so remembering the last `(tag, old)` served per
                // requester suffices to answer a retry without re-applying.
                if let Some(&(t, old)) = self.atomic_served.get(&src.raw()) {
                    if t == tag {
                        self.stats.dup_requests += 1;
                        self.enqueue(src, WireMsg::AtomicResp { tag, old }, host);
                        return;
                    }
                }
                let old = self.apply_atomic(op, addr, arg0, arg1, host);
                self.atomic_served.insert(src.raw(), (tag, old));
                self.enqueue(src, WireMsg::AtomicResp { tag, old }, host);
            }
            WireMsg::AtomicResp { tag, old } => {
                if self.launch_pending == Some(tag) {
                    self.launch_pending = None;
                    self.pending_ops.remove(&tag);
                    host.cpu_complete(SimTime::ZERO, CpuResult::LaunchDone { result: old });
                } else {
                    self.stats.stale_acks += 1;
                }
            }
            WireMsg::CopyReq { from, words, tag } => {
                self.stream_block(src, from, words, tag, false, host);
            }
            WireMsg::CopyData {
                tag,
                index,
                vals,
                last,
            } => {
                let Some(copy) = self.copies_in_flight.get(&tag) else {
                    // Data for a copy already failed over, or a duplicate
                    // stream from a retried CopyReq finishing late.
                    self.stats.stale_acks += 1;
                    self.pool.recycle(vals);
                    return;
                };
                let base = copy.dst.add(u64::from(index) * 8);
                host.segment().write_block(base, &vals);
                self.pool.recycle(vals);
                if last {
                    self.copies_in_flight.remove(&tag);
                    self.pending_ops.remove(&tag);
                }
            }
            WireMsg::UpdateToOwner { addr, val, writer } => {
                self.apply_home_write(addr, val, Some(writer), host);
            }
            WireMsg::ReflectedWrite { addr, val, writer } => {
                self.apply_reflected(src, addr, val, writer, host);
            }
            WireMsg::MulticastWrite { addr, val, tag } => {
                if self.note_first_delivery(src, tag) && self.in_segment(addr) {
                    host.segment().write(addr, val);
                }
                self.enqueue(src, WireMsg::WriteAck { tag }, host);
            }
            WireMsg::PageFetchReq { page, tag } => {
                let from = PageNum::new(page).base();
                self.stream_block(src, from, tg_wire::PAGE_WORDS as u32, tag, true, host);
                // The OS may track who fetched which page (VSM copysets).
                host.to_os(SimTime::ZERO, src, WireMsg::PageFetchReq { page, tag });
            }
            msg @ (WireMsg::PageData { .. }
            | WireMsg::InvalidateReq { .. }
            | WireMsg::InvalidateAck { .. }
            | WireMsg::DmaData { .. }
            | WireMsg::OsCtl { .. }) => {
                // Software-level traffic: hand to the OS layer.
                host.to_os(SimTime::ZERO, src, msg);
            }
        }
    }

    /// Applies a write arriving at this node as the page's home. `writer`
    /// is `Some` for coherent updates (§2.3); reflected writes then carry
    /// it so the writer can consume its own update (rule 2).
    fn apply_home_write(
        &mut self,
        addr: GOffset,
        val: u64,
        writer: Option<NodeId>,
        host: &mut dyn HibHost,
    ) {
        if !self.in_segment(addr) {
            debug_assert!(false, "network write outside segment at {addr}");
            return;
        }
        host.segment().write(addr, val);
        if let PageMode::Owned { copies } = self.shared.mode(addr.page()).clone() {
            // The owner serializes and multicasts in arrival order
            // (§2.3.1). Plain remote writes into an owned page reflect with
            // the owner as writer so no copy mistakes them for its own.
            let w = writer.unwrap_or(self.node);
            self.reflect_to_copies(&copies, addr.in_page(), val, w, host);
        }
    }

    fn reflect_to_copies(
        &mut self,
        copies: &[(NodeId, PageNum)],
        in_page: u64,
        val: u64,
        writer: NodeId,
        host: &mut dyn HibHost,
    ) {
        for &(dst, dst_page) in copies {
            self.stats.fanout_tx += 1;
            self.enqueue(
                dst,
                WireMsg::ReflectedWrite {
                    addr: GOffset::from_page(dst_page, in_page),
                    val,
                    writer,
                },
                host,
            );
        }
    }

    /// §2.3.3 rules 2 and 3 at a copy holder. `src` is the reflecting
    /// owner, which keys the update-completion accounting.
    fn apply_reflected(
        &mut self,
        src: NodeId,
        addr: GOffset,
        val: u64,
        writer: NodeId,
        host: &mut dyn HibHost,
    ) {
        self.stats.reflections_rx += 1;
        if !self.in_segment(addr) {
            debug_assert!(false, "reflected write outside segment at {addr}");
            return;
        }
        let key = addr.word_index();
        if writer == self.node {
            // Rule 2: our own write came back — consume, do not re-apply.
            self.stats.reflections_own += 1;
            if !self.note_reflection(src.raw(), key) {
                // A late reflection from an owner already failed over: its
                // accounting was released at the peer-down transition.
                self.stats.stale_acks += 1;
                return;
            }
            match self.config.local_write_policy {
                LocalWritePolicy::CountFiltered => {
                    self.cam.decrement(key);
                }
                LocalWritePolicy::StallUntilReflected => {
                    // The stalled store completes now: apply and release
                    // the CPU.
                    host.segment().write(addr, val);
                    if let Some(s) = self.stalled_store.take() {
                        debug_assert_eq!(s.reason, StallReason::WaitReflect);
                        host.cpu_complete(SimTime::ZERO, CpuResult::StoreRetired);
                    }
                }
            }
            self.outstanding_updates = self.outstanding_updates.saturating_sub(1);
            self.retry_stalled(host);
        } else if self.cam.is_pending(key) {
            // Rule 3: older than our pending write — ignore.
            self.stats.reflections_filtered += 1;
        } else {
            host.segment().write(addr, val);
        }
    }

    /// Consumes one pending-update entry for `(owner, key)`; `false` when
    /// none is tracked (the owner was already failed over).
    fn note_reflection(&mut self, owner: u16, key: u64) -> bool {
        if let Some(keys) = self.updates_to.get_mut(&owner) {
            if let Some(pos) = keys.iter().position(|&k| k == key) {
                keys.remove(pos);
                if keys.is_empty() {
                    self.updates_to.remove(&owner);
                }
                return true;
            }
        }
        false
    }

    fn apply_atomic(
        &mut self,
        op: AtomicOp,
        addr: GOffset,
        arg0: u64,
        arg1: u64,
        host: &mut dyn HibHost,
    ) -> u64 {
        let old = host.segment().read(addr);
        let new = match op {
            AtomicOp::FetchStore => Some(arg0),
            AtomicOp::FetchInc => Some(old.wrapping_add(arg0)),
            AtomicOp::CompareSwap => {
                if old == arg0 {
                    Some(arg1)
                } else {
                    None
                }
            }
        };
        if let Some(new) = new {
            host.segment().write(addr, new);
            if let PageMode::Owned { copies } = self.shared.mode(addr.page()).clone() {
                self.reflect_to_copies(&copies, addr.in_page(), new, self.node, host);
            }
        }
        old
    }

    /// Streams `words` words starting at `from` back to `dst` as
    /// `CopyData` (or `PageData` when `as_page`) bursts.
    fn stream_block(
        &mut self,
        dst: NodeId,
        from: GOffset,
        words: u32,
        tag: u32,
        as_page: bool,
        host: &mut dyn HibHost,
    ) {
        let burst = self.config.copy_burst_words.max(1);
        let mut index = 0u32;
        while index < words {
            let n = burst.min(words - index);
            let mut buf = self.pool.take();
            host.segment()
                .read_block_into(from.add(u64::from(index) * 8), u64::from(n), &mut buf);
            let vals = self.pool.seal(buf);
            let last = index + n >= words;
            let msg = if as_page {
                WireMsg::PageData {
                    tag,
                    index,
                    vals,
                    last,
                }
            } else {
                WireMsg::CopyData {
                    tag,
                    index,
                    vals,
                    last,
                }
            };
            self.enqueue(dst, msg, host);
            index += n;
        }
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Sends an OS-generated message (VSM traffic, DMA bursts) through the
    /// board. OS traffic bypasses the posted-write accounting.
    ///
    /// Returns `false` — refusing the send — when the failure detector has
    /// already convicted `dst`: frames to a declared-dead peer would only
    /// burn the link retry budget before failing anyway, so the caller
    /// hears `PeerUnreachable` at issue time instead.
    pub fn send_os_message(&mut self, dst: NodeId, msg: WireMsg, host: &mut dyn HibHost) -> bool {
        if self.peer_down(dst) {
            self.stats.os_sends_refused += 1;
            return false;
        }
        self.enqueue(dst, msg, host);
        true
    }

    fn tx_has_room(&self, needed: usize) -> bool {
        self.tx_queue.len() + needed <= self.config.tx_queue_depth
    }

    fn alloc_tag(&mut self) -> u32 {
        let t = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        t
    }

    fn enqueue(&mut self, dst: NodeId, msg: WireMsg, host: &mut dyn HibHost) {
        debug_assert_ne!(dst, self.node, "packet to self");
        let seq = self.inject_seq;
        self.inject_seq += 1;
        let packet = Packet::new(self.node, dst, msg, seq);
        if self.probe.is_some() {
            // Injections made while a received packet is being processed
            // are responses; chain them to their request.
            self.emit(host.now(), &packet, Stage::TxEnqueue, self.rx_handling);
        }
        self.last_injected = Some(packet.trace_id());
        self.tx_queue.push_back(packet);
        self.stats.tx_high_water = self.stats.tx_high_water.max(self.tx_queue.len());
        self.pump_tx(host);
    }

    fn pump_tx(&mut self, host: &mut dyn HibHost) {
        if self.tx_busy {
            return;
        }
        let Some(tx) = self.tx.as_ref() else {
            return;
        };
        // Go-back-N recovery outranks fresh traffic and needs no credit:
        // the original launch already reserved the receiver's FIFO slot.
        if tx.has_retx_pending() {
            let packet = self
                .tx
                .as_mut()
                .and_then(TxPort::take_retx)
                .expect("retx pending");
            self.emit(host.now(), &packet, Stage::Retransmit, None);
            self.dispatch_frame(packet, false, host);
            self.arm_timer(host);
            return;
        }
        if !tx.can_send_new() {
            if !self.tx_queue.is_empty() {
                let opened = self.tx.as_mut().expect("tx wired").note_blocked(host.now());
                if opened {
                    // One CreditStall event per stall window, stamped on
                    // the packet at the head of the queue: attribution
                    // classifies its queue time that follows as
                    // credit-stall rather than arbitration.
                    if let Some(head) = self.tx_queue.front() {
                        self.emit(host.now(), head, Stage::CreditStall, None);
                    }
                }
            }
            self.arm_timer(host);
            return;
        }
        if self.tx_queue.is_empty() {
            return;
        }
        let mut packet = self.tx_queue.pop_front().expect("nonempty queue");
        self.stats.pkts_tx += 1;
        self.stats.bytes_tx += u64::from(packet.size_bytes());
        if self.tx.as_ref().expect("tx wired").is_reliable() {
            packet = self
                .tx
                .as_mut()
                .expect("tx wired")
                .frame(packet, host.now());
        }
        if self.probe.is_some() {
            self.emit(host.now(), &packet, Stage::TxLaunch, None);
        }
        self.dispatch_frame(packet, true, host);
        self.arm_timer(host);
    }

    /// Occupies the wire with `packet` (a fresh launch consumes a credit;
    /// a retransmission reuses its reservation), consults the fault
    /// injector, and schedules the arrival unless the frame was lost.
    fn dispatch_frame(&mut self, mut packet: Packet, fresh: bool, host: &mut dyn HibHost) {
        let now = host.now();
        let (times, nbr, nbr_port, link) = {
            let tx = self.tx.as_mut().expect("tx wired");
            let times = if fresh {
                tx.launch(&packet, &self.timing)
            } else {
                tx.relaunch(&packet, &self.timing)
            };
            (times, tx.neighbor(), tx.neighbor_port(), tx.link())
        };
        let proc = self.timing.hib_proc;
        self.tx_busy = true;
        host.schedule_tick(proc + times.free, HibTick::TxFree);
        let fate = match (self.injector.as_ref(), link) {
            (Some(inj), Some(link)) => inj.frame_fate(link, now, &mut packet),
            _ => FrameFate::Deliver,
        };
        if fate == FrameFate::Drop {
            self.emit(now, &packet, Stage::Dropped, None);
            return;
        }
        host.schedule_net(
            proc + times.arrival,
            nbr,
            NetEvent::Arrive {
                port: nbr_port,
                packet,
            },
        );
    }

    fn retry_stalled(&mut self, host: &mut dyn HibHost) {
        let Some(s) = self.stalled_store else {
            return;
        };
        if s.reason == StallReason::WaitReflect {
            // Released only by the matching reflected write.
            return;
        }
        self.stalled_store = None;
        match self.cpu_store(s.pa, s.val, host) {
            StoreOutcome::Done => {
                host.cpu_complete(SimTime::ZERO, CpuResult::StoreRetired);
            }
            StoreOutcome::Stalled => {
                // Still blocked; cpu_store re-parked it.
            }
            StoreOutcome::Fault(f) => {
                unreachable!("a stalled store cannot become invalid: {f}")
            }
        }
    }

    fn check_fence(&mut self, host: &mut dyn HibHost) {
        if self.fence_waiting && self.quiescent() {
            self.fence_waiting = false;
            host.cpu_complete(SimTime::ZERO, CpuResult::FenceDone);
        }
    }

    fn count_page_access(
        &mut self,
        node: NodeId,
        page: PageNum,
        kind: CounterKind,
        host: &mut dyn HibHost,
    ) {
        if self.shared.count_access(node, page, kind) {
            self.stats.alarms += 1;
            host.interrupt(
                self.timing.interrupt_latency,
                HibInterrupt::PageAlarm {
                    node,
                    page,
                    counter: kind,
                },
            );
        }
    }

    fn in_segment(&self, off: GOffset) -> bool {
        off.page().raw() < self.config.segment_pages
    }
}
