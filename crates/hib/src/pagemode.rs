//! Per-page sharing metadata and the page-access counters.

use std::collections::HashMap;

use tg_wire::{NodeId, PageNum};

use crate::host::CounterKind;

/// How one page of the local shared segment participates in sharing.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum PageMode {
    /// An ordinary exported page: remote reads/writes land here directly.
    #[default]
    Plain,
    /// Eager-update multicast source (§2.2.7): every local store to the
    /// page is transparently re-sent to the mapped-out destinations
    /// (message-passing style, no coherence filtering).
    EagerMapped {
        /// Destination copies as `(node, page-in-that-node's-segment)`.
        outs: Vec<(NodeId, PageNum)>,
    },
    /// This node owns a replicated coherent page (§2.3.1): it serializes
    /// all updates and multicasts reflected writes to every copy.
    Owned {
        /// Copy holders as `(node, page-in-that-node's-segment)`.
        copies: Vec<(NodeId, PageNum)>,
    },
    /// A local copy of a coherent page owned elsewhere (§2.3.2): local
    /// stores are applied at once, counted in the CAM, and forwarded to the
    /// owner.
    Replica {
        /// The owning node.
        owner: NodeId,
        /// The page number within the owner's segment.
        owner_page: PageNum,
    },
}

/// The sharing-mode table for the local segment plus the §2.2.6 access
/// counters for remote pages.
#[derive(Clone, Debug, Default)]
pub struct SharedMap {
    modes: HashMap<u32, PageMode>,
    counters: HashMap<(NodeId, PageNum), AccessCounters>,
}

/// One remote page's read/write down-counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessCounters {
    /// Remaining reads before the read alarm.
    pub reads: u16,
    /// Remaining writes before the write alarm.
    pub writes: u16,
}

impl SharedMap {
    /// An all-plain map with no armed counters.
    pub fn new() -> Self {
        SharedMap::default()
    }

    /// The mode of a local segment page.
    pub fn mode(&self, page: PageNum) -> &PageMode {
        static PLAIN: PageMode = PageMode::Plain;
        self.modes.get(&page.raw()).unwrap_or(&PLAIN)
    }

    /// Installs a page mode (privileged driver operation).
    pub fn set_mode(&mut self, page: PageNum, mode: PageMode) {
        match mode {
            PageMode::Plain => {
                self.modes.remove(&page.raw());
            }
            other => {
                self.modes.insert(page.raw(), other);
            }
        }
    }

    /// Arms the access counters of a remote page (§2.2.6: "By setting the
    /// counters to very large values … the system can monitor … By setting
    /// the counters to small values … alarm-based replication").
    pub fn arm_counters(&mut self, node: NodeId, page: PageNum, reads: u16, writes: u16) {
        self.counters
            .insert((node, page), AccessCounters { reads, writes });
    }

    /// Disarms (removes) a remote page's counters.
    pub fn disarm_counters(&mut self, node: NodeId, page: PageNum) {
        self.counters.remove(&(node, page));
    }

    /// Current counter values, if armed.
    pub fn counters(&self, node: NodeId, page: PageNum) -> Option<AccessCounters> {
        self.counters.get(&(node, page)).copied()
    }

    /// Records one remote access; returns `true` exactly when the counter
    /// crosses from one to zero (the alarm condition). Counters stick at
    /// zero ("the counter is decremented, unless the counter is zero").
    pub fn count_access(&mut self, node: NodeId, page: PageNum, kind: CounterKind) -> bool {
        let Some(c) = self.counters.get_mut(&(node, page)) else {
            return false;
        };
        let ctr = match kind {
            CounterKind::Read => &mut c.reads,
            CounterKind::Write => &mut c.writes,
        };
        if *ctr == 0 {
            return false;
        }
        *ctr -= 1;
        *ctr == 0
    }

    /// Number of non-plain pages (directory occupancy).
    pub fn tracked_pages(&self) -> usize {
        self.modes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_plain() {
        let map = SharedMap::new();
        assert_eq!(*map.mode(PageNum::new(5)), PageMode::Plain);
        assert_eq!(map.tracked_pages(), 0);
    }

    #[test]
    fn set_and_clear_modes() {
        let mut map = SharedMap::new();
        map.set_mode(
            PageNum::new(1),
            PageMode::Replica {
                owner: NodeId::new(2),
                owner_page: PageNum::new(9),
            },
        );
        assert!(matches!(
            map.mode(PageNum::new(1)),
            PageMode::Replica { .. }
        ));
        assert_eq!(map.tracked_pages(), 1);
        map.set_mode(PageNum::new(1), PageMode::Plain);
        assert_eq!(map.tracked_pages(), 0);
    }

    #[test]
    fn counters_alarm_exactly_once() {
        let mut map = SharedMap::new();
        let (n, p) = (NodeId::new(1), PageNum::new(4));
        map.arm_counters(n, p, 3, 1);
        assert!(!map.count_access(n, p, CounterKind::Read)); // 3 -> 2
        assert!(!map.count_access(n, p, CounterKind::Read)); // 2 -> 1
        assert!(map.count_access(n, p, CounterKind::Read)); // 1 -> 0: alarm
        assert!(!map.count_access(n, p, CounterKind::Read)); // sticks at 0
        assert!(map.count_access(n, p, CounterKind::Write)); // 1 -> 0: alarm
        let c = map.counters(n, p).unwrap();
        assert_eq!((c.reads, c.writes), (0, 0));
    }

    #[test]
    fn unarmed_pages_never_alarm() {
        let mut map = SharedMap::new();
        assert!(!map.count_access(NodeId::new(0), PageNum::new(0), CounterKind::Write));
    }

    #[test]
    fn disarm_stops_counting() {
        let mut map = SharedMap::new();
        let (n, p) = (NodeId::new(1), PageNum::new(4));
        map.arm_counters(n, p, 1, 1);
        map.disarm_counters(n, p);
        assert!(!map.count_access(n, p, CounterKind::Read));
        assert_eq!(map.counters(n, p), None);
    }
}
