//! The interface between the HIB state machine and its hosting node.

use tg_mem::PhysMem;
use tg_net::NetEvent;
use tg_sim::{CompId, SimTime};
use tg_wire::{NodeId, PageNum, WireMsg};

/// Services the hosting workstation component provides to its HIB.
///
/// The HIB is a passive state machine: the node drives it with CPU
/// transactions and network events, and the HIB responds by asking the host
/// to schedule things. Keeping the HIB free of direct engine access makes
/// it unit-testable with a mock host.
pub trait HibHost {
    /// Schedules a network event (packet arrival or credit) at a fabric
    /// neighbor.
    fn schedule_net(&mut self, delay: SimTime, dst: CompId, ev: NetEvent);
    /// Schedules an internal HIB timer; the node must route it back into
    /// [`Hib::on_tick`](crate::Hib::on_tick).
    fn schedule_tick(&mut self, delay: SimTime, tick: HibTick);
    /// Completes a CPU-visible operation (blocking load, stalled store,
    /// fence, special-operation result).
    fn cpu_complete(&mut self, delay: SimTime, res: CpuResult);
    /// Raises a HIB interrupt (page-access alarm, protection violation).
    fn interrupt(&mut self, delay: SimTime, int: HibInterrupt);
    /// Delivers a message the hardware does not handle to the OS layer
    /// (VSM invalidations, page images, DMA message bursts).
    fn to_os(&mut self, delay: SimTime, src: NodeId, msg: WireMsg);
    /// The node's exported shared segment (Telegraphos I: HIB SRAM;
    /// Telegraphos II: main-memory carve-out).
    fn segment(&mut self) -> &mut PhysMem;
    /// Current simulated time, for observability timestamps and credit-
    /// stall accounting. Defaults to [`SimTime::ZERO`] so mock hosts that
    /// don't model a clock keep working; the cluster's real host reports
    /// engine time.
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
}

/// Internal HIB timers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HibTick {
    /// The transmit port finished serializing; pump the TX queue.
    TxFree,
    /// The receive pipeline finished processing the current packet.
    RxDone,
    /// The link-level retransmission/resync timer fired (see
    /// [`TxPort::poll_timer`](tg_net::TxPort::poll_timer)); `gen` guards
    /// against stale timers.
    RetxTimer {
        /// Timer generation at scheduling time.
        gen: u64,
    },
    /// A fault-injected receive-pipeline wedge released; resume draining
    /// the rx FIFO.
    RxUnwedge,
    /// The periodic heartbeat-origination timer: emit a liveness beacon
    /// toward the fabric and sweep the per-peer failure detector.
    /// Self-rearming while heartbeats are enabled.
    Heartbeat,
    /// The pending-operation scan timer: sweep the tagged-operation
    /// registry for requests that have been in flight past the request
    /// timeout, retrying (same tag — the receiver side is idempotent)
    /// or failing them. Self-rearming while operations are pending.
    OpCheck,
}

/// Why a remote operation could not complete (§crash-stop fault model):
/// the structured resolution every in-flight request to a crashed peer
/// receives instead of hanging or panicking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpError {
    /// The destination node was declared dead by the failure detector
    /// (or exhausted its request-retry budget, which is the same verdict
    /// reached the slow way).
    PeerUnreachable {
        /// The unreachable destination.
        peer: NodeId,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::PeerUnreachable { peer } => {
                write!(f, "peer {peer} unreachable")
            }
        }
    }
}

impl std::error::Error for OpError {}

/// CPU-visible completions delivered through [`HibHost::cpu_complete`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuResult {
    /// A blocking load (remote read) finished.
    LoadDone {
        /// The word read.
        val: u64,
    },
    /// A store that had stalled (TX queue or CAM full) has been accepted.
    StoreRetired,
    /// All outstanding remote operations have completed (§2.3.5 FENCE).
    FenceDone,
    /// A special operation launched through the GO register finished.
    LaunchDone {
        /// Atomic result (old value) or 0 for remote-copy acceptance.
        result: u64,
    },
    /// A blocking remote operation (read or atomic launch) failed
    /// structurally instead of completing: its destination crashed. The
    /// CPU is released with the error rather than stalling forever.
    OpFailed {
        /// Why the operation could not complete.
        err: OpError,
    },
}

/// Faults the HIB raises synchronously on a bad CPU transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HibFault {
    /// The key presented with a shadow store does not match the context.
    BadContextKey,
    /// A GO was issued with incomplete or inconsistent arguments.
    MalformedLaunch,
    /// A second blocking read was issued while one is outstanding (the
    /// current Telegraphos allows a single outstanding read).
    ReadBusy,
    /// The register number does not exist.
    BadRegister,
    /// The address targets a page outside the exported segment.
    OutOfSegment,
}

impl std::fmt::Display for HibFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HibFault::BadContextKey => "context key mismatch",
            HibFault::MalformedLaunch => "malformed special-operation launch",
            HibFault::ReadBusy => "a remote read is already outstanding",
            HibFault::BadRegister => "no such HIB register",
            HibFault::OutOfSegment => "address outside the shared segment",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HibFault {}

/// Interrupts the HIB raises toward the operating system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HibInterrupt {
    /// A page-access counter crossed from one to zero (§2.2.6): the OS
    /// should consider replicating the page.
    PageAlarm {
        /// Home node of the hot remote page.
        node: NodeId,
        /// The hot page (within the home node's segment).
        page: PageNum,
        /// Which counter fired.
        counter: CounterKind,
    },
    /// A protection violation detected at the HIB (bad context key).
    Protection,
    /// The link layer degraded: a neighbor-originated protocol violation
    /// was detected or the retransmit budget was exhausted (the link is
    /// then dead). The OS sees the structured error instead of the
    /// simulation panicking.
    LinkFault {
        /// What went wrong on the link.
        error: tg_net::LinkError,
    },
    /// The ack-starvation watchdog tripped: half the retransmit budget
    /// has been burned on the oldest unacknowledged frame without any
    /// ack progress — the control plane toward this board's neighbor is
    /// effectively down (every ack lost or corrupted), even though the
    /// link is not yet dead. Raised once per starvation episode.
    LinkStarved {
        /// Consecutive unanswered (re)transmissions so far.
        attempts: u32,
    },
    /// The per-peer failure detector convicted a peer: its heartbeat
    /// beacons went silent past the suspicion threshold. The OS layer
    /// should fail over ownership of pages homed or owned there and stop
    /// routing work to it.
    PeerDown {
        /// The node declared dead.
        peer: NodeId,
    },
    /// A previously-convicted peer's beacons resumed (crash-stop restart):
    /// the OS layer should reconcile — the restarted node lost its volatile
    /// state, so copysets and replica maps referencing it are stale.
    PeerUp {
        /// The node that came back.
        peer: NodeId,
    },
}

/// Which of the two per-page access counters is meant (§2.2.6: "one that
/// counts read operations and one that counts write operations").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CounterKind {
    /// The read counter.
    Read,
    /// The write counter.
    Write,
}

/// Outcome of a CPU store presented to the HIB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreOutcome {
    /// Accepted; the TurboChannel is released after the latch time.
    Done,
    /// The HIB cannot take the store now (TX queue or CAM full); the CPU
    /// stalls and the HIB will deliver [`CpuResult::StoreRetired`].
    Stalled,
    /// The store is architecturally invalid.
    Fault(HibFault),
}

/// Outcome of a CPU load presented to the HIB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadOutcome {
    /// Satisfied immediately (local shared memory, ready registers).
    Ready(u64),
    /// In flight; the HIB will deliver [`CpuResult::LoadDone`] or
    /// [`CpuResult::LaunchDone`].
    Pending,
    /// The load is architecturally invalid.
    Fault(HibFault),
}
