//! The HIB register map and launch-argument encodings.

/// Register numbers within the HIB register region (`PAddr::hib_reg`).
///
/// The map is deliberately small: user-visible launch machinery only. OS
/// configuration (page modes, multicast lists, counters) goes through
/// privileged driver calls on [`Hib`](crate::Hib) directly, standing in for
/// the memory-mapped table writes of the real board.
pub mod reg {
    /// Telegraphos I: write 1+opcode to enter special mode, 0 to leave.
    pub const SPECIAL_MODE: u64 = 0x00;
    /// Load to launch the armed special operation and collect its result.
    pub const GO: u64 = 0x08;
    /// Base of the context register file (Telegraphos II). Context `c`,
    /// slot `s` lives at `CTX_BASE + c * CTX_STRIDE + s * 8`.
    pub const CTX_BASE: u64 = 0x1000;
    /// Byte stride between contexts.
    pub const CTX_STRIDE: u64 = 0x40;
    /// Context slot: operation code.
    pub const SLOT_OP: u64 = 0;
    /// Context slot: first datum.
    pub const SLOT_DATUM0: u64 = 1;
    /// Context slot: second datum.
    pub const SLOT_DATUM1: u64 = 2;
    /// Context slot: load to launch and collect (per-context GO).
    pub const SLOT_GO: u64 = 7;
}

/// Operation codes armed into `SLOT_OP` / `SPECIAL_MODE`.
pub mod opcode {
    /// fetch_and_store.
    pub const FETCH_STORE: u64 = 1;
    /// fetch_and_inc (datum = increment).
    pub const FETCH_INC: u64 = 2;
    /// compare_and_swap (datum0 = expected, datum1 = new).
    pub const COMPARE_SWAP: u64 = 3;
    /// remote copy (addr0 = source, addr1 = destination).
    pub const COPY: u64 = 4;
}

/// Encoding of the *data word* of a shadow store (Telegraphos II): the
/// physical address travels in the store's address; the data word names the
/// context, authenticates with its key, and picks the argument slot.
///
/// ```text
/// bits 63..48 : context id
/// bits 47..16 : key
/// bits 15..0  : address slot (0 or 1)
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShadowArg {
    /// Target context.
    pub ctx: u16,
    /// Authentication key (compared against the context's installed key).
    pub key: u32,
    /// Which address slot to fill (0 = first operand, 1 = second).
    pub slot: u16,
}

impl ShadowArg {
    /// Packs into a store data word.
    pub fn encode(self) -> u64 {
        ((self.ctx as u64) << 48) | ((self.key as u64) << 16) | self.slot as u64
    }

    /// Unpacks from a store data word.
    pub fn decode(val: u64) -> Self {
        ShadowArg {
            ctx: (val >> 48) as u16,
            key: ((val >> 16) & 0xFFFF_FFFF) as u32,
            slot: (val & 0xFFFF) as u16,
        }
    }
}

/// Decodes a register offset into the context file: `(context, slot)`.
pub fn decode_ctx_reg(regno: u64) -> Option<(usize, u64)> {
    if regno < reg::CTX_BASE {
        return None;
    }
    let rel = regno - reg::CTX_BASE;
    let ctx = (rel / reg::CTX_STRIDE) as usize;
    let byte = rel % reg::CTX_STRIDE;
    if !byte.is_multiple_of(8) {
        return None;
    }
    Some((ctx, byte / 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_arg_round_trips() {
        let a = ShadowArg {
            ctx: 513,
            key: 0xDEAD_BEEF,
            slot: 1,
        };
        assert_eq!(ShadowArg::decode(a.encode()), a);
    }

    #[test]
    fn ctx_reg_decoding() {
        assert_eq!(decode_ctx_reg(reg::CTX_BASE), Some((0, 0)));
        assert_eq!(
            decode_ctx_reg(reg::CTX_BASE + reg::CTX_STRIDE + 8),
            Some((1, 1))
        );
        assert_eq!(
            decode_ctx_reg(reg::CTX_BASE + 2 * reg::CTX_STRIDE + 7 * 8),
            Some((2, 7))
        );
        assert_eq!(decode_ctx_reg(reg::SPECIAL_MODE), None);
        assert_eq!(decode_ctx_reg(reg::CTX_BASE + 3), None, "unaligned slot");
    }
}
