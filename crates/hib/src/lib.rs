//! # tg-hib — the Telegraphos Host Interface Board
//!
//! The paper's §2.2 hardware, as a deterministic state machine:
//!
//! * **Remote writes** — non-blocking; latched off the (simulated)
//!   TurboChannel into a 64-deep transmit queue, acknowledged for the
//!   outstanding-operation counters. Bursts issue at bus speed until the
//!   queue fills, then at network speed — the §3.2 behaviour.
//! * **Remote reads** — blocking, one outstanding (footnote ¶).
//! * **Remote atomics** — fetch-and-store, fetch-and-increment,
//!   compare-and-swap, executed at the home board.
//! * **Remote copy** — non-blocking memory-to-memory streams (§2.2.2).
//! * **Special-operation launch** — both prototypes' mechanisms (§2.2.4):
//!   Telegraphos I's special mode + PAL sequence and Telegraphos II's
//!   contexts + keys + shadow addressing, selected by [`LaunchMode`].
//! * **Page-access counters** with alarm interrupts (§2.2.6).
//! * **Eager-update multicast** (§2.2.7) and the **owner-serialized,
//!   counter-filtered coherent update protocol** (§2.3), with the
//!   pending-write CAM from `tg-proto`.
//! * **FENCE** — completion detection over all outstanding operations
//!   (§2.3.5).
//!
//! The board is *passive*: a workstation component (in `telegraphos`) feeds
//! it CPU transactions and network events and implements [`HibHost`] for
//! its responses, which keeps every path unit-testable without an engine.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod hib;
mod host;
mod pagemode;
pub mod regs;

pub use config::{HibConfig, LaunchMode, LocalWritePolicy};
pub use hib::{Hib, HibStats};
pub use host::{
    CounterKind, CpuResult, HibFault, HibHost, HibInterrupt, HibTick, LoadOutcome, OpError,
    StoreOutcome,
};
pub use pagemode::{AccessCounters, PageMode, SharedMap};
