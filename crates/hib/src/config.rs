//! HIB structural configuration.

use tg_sim::SimTime;

/// Which special-operation launch mechanism the board implements (§2.2.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LaunchMode {
    /// Telegraphos I: a *special mode* toggled through a HIB register; while
    /// set, stores to remote addresses are latched as operands instead of
    /// being performed. The whole sequence runs inside uninterruptible PAL
    /// code on the Alpha.
    SpecialModePal,
    /// Telegraphos II: per-process *contexts* (argument register sets) plus
    /// *shadow addressing* — a store to the shadow twin of a virtual
    /// address delivers the translated physical address to the HIB, with a
    /// key in the store's data authenticating the context.
    ContextShadow,
}

/// How stores to locally-present but remotely-owned pages behave (§2.3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalWritePolicy {
    /// The paper's design: apply the store locally at once, count it in the
    /// pending-write CAM, and filter incoming updates (§2.3.3).
    CountFiltered,
    /// The rejected alternative ("non-trivial performance cost"): stall the
    /// store until the owner's reflected write returns. Kept as an ablation.
    StallUntilReflected,
}

/// Structural parameters of one Host Interface Board.
///
/// Defaults model Telegraphos I as built (Table 1): 64 K countable pages,
/// 16 K multicast entries, a 64-deep transmit queue, and — in the shipped
/// prototype — *no* CAM (`cam_entries` is the "future versions" feature;
/// the default picks the paper's suggested 16).
#[derive(Clone, Debug, PartialEq)]
pub struct HibConfig {
    /// Transmit-queue depth in packets (absorbs bursts of remote writes;
    /// §3.2 shows bursts of ~100 writes issuing at TurboChannel speed).
    pub tx_queue_depth: usize,
    /// Pending-write counter CAM entries (§2.3.4 suggests 16–32).
    pub cam_entries: usize,
    /// Number of Telegraphos contexts (Telegraphos II launch).
    pub contexts: usize,
    /// Launch mechanism.
    pub launch_mode: LaunchMode,
    /// Local-write policy for replica pages.
    pub local_write_policy: LocalWritePolicy,
    /// Exported shared-segment size in pages.
    pub segment_pages: u32,
    /// Words per remote-copy / page-transfer burst packet.
    pub copy_burst_words: u32,
    /// How long a tagged remote request (write, read, atomic) may stay in
    /// flight before the pending-operation scan retries it. Request-level
    /// recovery sits *above* link-level retransmission: it only ever fires
    /// when the link layer itself could not deliver (a crashed peer or
    /// severed path), so the timeout is deliberately much longer than the
    /// link RTO.
    pub op_timeout: SimTime,
    /// Attempts (original + retries) before a tagged request is failed
    /// with [`OpError::PeerUnreachable`]. Retries reuse the original tag;
    /// receivers deduplicate, so a retry is idempotent.
    ///
    /// [`OpError::PeerUnreachable`]: crate::host::OpError::PeerUnreachable
    pub op_retries: u32,
}

impl HibConfig {
    /// Telegraphos I as prototyped (plus the paper's proposed 16-entry CAM).
    pub fn telegraphos_i() -> Self {
        HibConfig {
            tx_queue_depth: 64,
            cam_entries: 16,
            contexts: 4,
            launch_mode: LaunchMode::SpecialModePal,
            local_write_policy: LocalWritePolicy::CountFiltered,
            segment_pages: 2048, // 16 MB MPM / 8 KB pages
            copy_burst_words: 8,
            op_timeout: SimTime::from_us(500),
            op_retries: 3,
        }
    }

    /// Telegraphos II: context/shadow launch, more contexts.
    pub fn telegraphos_ii() -> Self {
        HibConfig {
            contexts: 16,
            launch_mode: LaunchMode::ContextShadow,
            ..Self::telegraphos_i()
        }
    }
}

impl Default for HibConfig {
    fn default() -> Self {
        Self::telegraphos_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1_structure() {
        let c = HibConfig::default();
        assert_eq!(c.tx_queue_depth, 64);
        assert_eq!(c.segment_pages as u64 * 8192, 16 << 20);
        assert_eq!(c.launch_mode, LaunchMode::SpecialModePal);
    }

    #[test]
    fn telegraphos_ii_uses_contexts() {
        let c = HibConfig::telegraphos_ii();
        assert_eq!(c.launch_mode, LaunchMode::ContextShadow);
        assert!(c.contexts > HibConfig::telegraphos_i().contexts);
    }
}
