//! Randomized tests: the §2.3.3 protocol invariants hold over randomized
//! scenarios and interleavings; the baselines fail exactly the way the
//! paper says they do. Cases are drawn from a seeded [`tg_sim::SimRng`] so
//! the sweep is deterministic and dependency-free.

use tg_proto::{
    galactica::GalacticaRing,
    naive::NaiveMulticast,
    owner::{OwnerConfig, OwnerSerialized},
    Scenario, ScriptedWrite,
};
use tg_sim::SimRng;

/// The paper's protocol: convergence, no revisit anomalies, and every
/// node's view is a subsequence of the owner's serialization — for any
/// writer count, script length, owner placement, CAM size and seed.
#[test]
fn owner_protocol_invariants() {
    let mut rng = SimRng::new(0x0815);
    for _ in 0..96 {
        let writers = rng.range_between(1, 5) as usize;
        let per_writer = rng.range_between(1, 6) as usize;
        let observers = rng.range_between(1, 3) as usize;
        let owner_pick = rng.range(8) as usize;
        let cam = rng.range_between(1, 5) as usize;
        let seed = rng.next_u64();
        let s = Scenario::random(writers, per_writer, observers, seed);
        let out = OwnerSerialized::run_with(
            &s,
            OwnerConfig {
                owner: owner_pick % s.nodes,
                cam_entries: cam,
                failover: None,
            },
        );
        assert!(out.converged(), "{out:?}");
        assert!(out.anomalies().is_empty(), "{out:?}");
        assert!(out.subsequence_violations().is_empty(), "{out:?}");
        // Conservation: every write serialized exactly once.
        let mut ser = out.serialization.clone().unwrap();
        ser.sort_unstable();
        let mut expect: Vec<u64> = s.writes.iter().map(|w| w.value).collect();
        expect.sort_unstable();
        assert_eq!(ser, expect);
    }
}

/// Naive multicast with one writer is trivially consistent (FIFO), and
/// with any writers it at least delivers all traffic.
#[test]
fn naive_single_writer_is_consistent() {
    let mut rng = SimRng::new(0x0907);
    for _ in 0..96 {
        let per_writer = rng.range_between(1, 8) as usize;
        let observers = rng.range_between(1, 4) as usize;
        let seed = rng.next_u64();
        let s = Scenario::random(1, per_writer, observers, seed);
        let out = NaiveMulticast::run(&s);
        assert!(out.converged());
        assert!(out.anomalies().is_empty());
        assert_eq!(out.messages, (per_writer * (s.nodes - 1)) as u64);
    }
}

/// Galactica's ring: final values always converge (the back-off guarantee
/// of \[15\]) even though transient sequences may be invalid, for any
/// writer placement, round count and interleaving.
#[test]
fn galactica_races_converge() {
    let mut rng = SimRng::new(0x6A1A);
    let mut cases = 0;
    while cases < 96 {
        let nodes = rng.range_between(2, 7) as usize;
        let a = rng.range(nodes as u64) as usize;
        let b = rng.range(nodes as u64) as usize;
        let rounds = rng.range_between(1, 4) as usize;
        let seed = rng.next_u64();
        if a == b {
            continue;
        }
        cases += 1;
        assert!(galactica_converges(nodes, a, b, rounds, seed));
    }
}

/// A shrunken counterexample found by an earlier randomized run (kept from
/// the retired proptest-regressions file): two writers two hops apart on a
/// three-node ring, three rounds.
#[test]
fn galactica_regression_three_nodes_three_rounds() {
    assert!(galactica_converges(3, 0, 2, 3, 69942254235743369));
}

fn galactica_converges(nodes: usize, a: usize, b: usize, rounds: usize, seed: u64) -> bool {
    let mut writes = Vec::new();
    for r in 0..rounds {
        writes.push(ScriptedWrite {
            node: a,
            value: (2 * r + 1) as u64,
        });
        writes.push(ScriptedWrite {
            node: b,
            value: (2 * r + 2) as u64,
        });
    }
    let s = Scenario {
        nodes,
        writes,
        seed,
    };
    GalacticaRing::run(&s).converged()
}

/// The contrast the paper draws: over a batch of seeds, the naive protocol
/// diverges on some interleaving of the Figure 2 race while the owner
/// protocol never does on the *same* interleavings.
#[test]
fn owner_fixes_what_naive_breaks() {
    let mut rng = SimRng::new(0xF16);
    for _ in 0..16 {
        let base_seed = rng.next_u64();
        let mut naive_diverged = 0u32;
        for k in 0..32u64 {
            let s = Scenario::figure2(base_seed.wrapping_add(k));
            if !NaiveMulticast::run(&s).converged() {
                naive_diverged += 1;
            }
            let out = OwnerSerialized::run(&s);
            assert!(out.converged());
            assert!(out.anomalies().is_empty());
        }
        // Divergence is probabilistic per seed but near-certain over 32.
        assert!(naive_diverged > 0, "naive never diverged over 32 seeds");
    }
}
