//! Property tests: the §2.3.3 protocol invariants hold over randomized
//! scenarios and interleavings; the baselines fail exactly the way the
//! paper says they do.

use proptest::prelude::*;
use tg_proto::{
    galactica::GalacticaRing,
    naive::NaiveMulticast,
    owner::{OwnerConfig, OwnerSerialized},
    Scenario, ScriptedWrite,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The paper's protocol: convergence, no revisit anomalies, and every
    /// node's view is a subsequence of the owner's serialization — for any
    /// writer count, script length, owner placement, CAM size and seed.
    #[test]
    fn owner_protocol_invariants(
        writers in 1..5usize,
        per_writer in 1..6usize,
        observers in 1..3usize,
        owner_pick in 0..8usize,
        cam in 1..5usize,
        seed in 0..u64::MAX,
    ) {
        let s = Scenario::random(writers, per_writer, observers, seed);
        let out = OwnerSerialized::run_with(
            &s,
            OwnerConfig { owner: owner_pick % s.nodes, cam_entries: cam },
        );
        prop_assert!(out.converged(), "{out:?}");
        prop_assert!(out.anomalies().is_empty(), "{out:?}");
        prop_assert!(out.subsequence_violations().is_empty(), "{out:?}");
        // Conservation: every write serialized exactly once.
        let mut ser = out.serialization.clone().unwrap();
        ser.sort_unstable();
        let mut expect: Vec<u64> = s.writes.iter().map(|w| w.value).collect();
        expect.sort_unstable();
        prop_assert_eq!(ser, expect);
    }

    /// Naive multicast with one writer is trivially consistent (FIFO), and
    /// with any writers it at least delivers all traffic.
    #[test]
    fn naive_single_writer_is_consistent(
        per_writer in 1..8usize,
        observers in 1..4usize,
        seed in 0..u64::MAX,
    ) {
        let s = Scenario::random(1, per_writer, observers, seed);
        let out = NaiveMulticast::run(&s);
        prop_assert!(out.converged());
        prop_assert!(out.anomalies().is_empty());
        prop_assert_eq!(out.messages, (per_writer * (s.nodes - 1)) as u64);
    }

    /// Galactica's ring: final values always converge (the back-off
    /// guarantee of \[15\]) even though transient sequences may be invalid,
    /// for any writer placement, round count and interleaving.
    #[test]
    fn galactica_races_converge(
        nodes in 2..7usize,
        a_pos in 0..7usize,
        b_pos in 0..7usize,
        rounds in 1..4usize,
        seed in 0..u64::MAX,
    ) {
        let (a, b) = (a_pos % nodes, b_pos % nodes);
        prop_assume!(a != b);
        let mut writes = Vec::new();
        for r in 0..rounds {
            writes.push(ScriptedWrite { node: a, value: (2 * r + 1) as u64 });
            writes.push(ScriptedWrite { node: b, value: (2 * r + 2) as u64 });
        }
        let s = Scenario { nodes, writes, seed };
        let out = GalacticaRing::run(&s);
        prop_assert!(out.converged(), "{out:?}");
    }

    /// The contrast the paper draws: over a batch of seeds, the naive
    /// protocol diverges on some interleaving of the Figure 2 race while
    /// the owner protocol never does on the *same* interleavings.
    #[test]
    fn owner_fixes_what_naive_breaks(base_seed in 0..u64::MAX) {
        let mut naive_diverged = 0u32;
        for k in 0..32u64 {
            let s = Scenario::figure2(base_seed.wrapping_add(k));
            if !NaiveMulticast::run(&s).converged() {
                naive_diverged += 1;
            }
            let out = OwnerSerialized::run(&s);
            prop_assert!(out.converged());
            prop_assert!(out.anomalies().is_empty());
        }
        // Divergence is probabilistic per seed but near-certain over 32.
        prop_assert!(naive_diverged > 0, "naive never diverged over 32 seeds");
    }
}
