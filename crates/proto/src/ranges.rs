//! Key-range ownership for the replicated KV service.
//!
//! `tg-kv` partitions its key space into fixed ranges, each homed on one
//! replica of a small replica set. This module is the *pure* ownership
//! logic — deterministic range hashing, the home assignment, and the
//! failover rule — factored out of the service so the client, the server,
//! and the crash-campaign audits all compute ownership the same way.
//!
//! The failover rule matches the rest of the stack (VSM copyset
//! promotion, [`crate::owner::OwnerFailover`]): when a range's owner is
//! convicted, ownership settles on the **smallest-id live replica**.
//! Smallest-id is not arbitrary: every survivor can evaluate it locally
//! from its own liveness verdicts, without coordination, and two
//! survivors with the same verdicts agree on the successor — which is
//! what lets retries re-route without a leader election.

use tg_wire::NodeId;

/// A static partition of the KV key space over a replica set.
///
/// Ranges are `key % ranges` (keys are already client-scrambled in the
/// campaign workloads, so modulo is as good as a hash and keeps the
/// mapping auditable by hand). Range `r` is homed on replica
/// `replicas[r % replicas.len()]`, spreading primaries round-robin.
#[derive(Clone, Debug)]
pub struct RangeMap {
    ranges: u32,
    replicas: Vec<NodeId>,
}

impl RangeMap {
    /// A map of `ranges` key ranges over `replicas` (sorted ascending
    /// internally; duplicates removed).
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is zero or `replicas` is empty.
    pub fn new(ranges: u32, replicas: &[NodeId]) -> Self {
        assert!(ranges > 0, "a RangeMap needs at least one range");
        assert!(
            !replicas.is_empty(),
            "a RangeMap needs at least one replica"
        );
        let mut replicas = replicas.to_vec();
        replicas.sort();
        replicas.dedup();
        RangeMap { ranges, replicas }
    }

    /// Number of key ranges.
    pub fn ranges(&self) -> u32 {
        self.ranges
    }

    /// The replica set, ascending.
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    /// The range `key` falls in.
    pub fn range_of(&self, key: u64) -> u32 {
        (key % u64::from(self.ranges)) as u32
    }

    /// The range's *home* replica — its owner while alive.
    pub fn home_of(&self, range: u32) -> NodeId {
        assert!(range < self.ranges, "range {range} out of bounds");
        self.replicas[range as usize % self.replicas.len()]
    }

    /// The range's owner under the given liveness verdicts: the home if
    /// it is live, otherwise the smallest-id live replica. `None` when
    /// every replica is convicted.
    pub fn owner_of(&self, range: u32, live: impl Fn(NodeId) -> bool) -> Option<NodeId> {
        let home = self.home_of(range);
        if live(home) {
            return Some(home);
        }
        self.promote(&live)
    }

    /// The failover successor rule by itself: the smallest-id live
    /// replica, or `None` when the whole set is dead.
    pub fn promote(&self, live: impl Fn(NodeId) -> bool) -> Option<NodeId> {
        self.replicas.iter().copied().find(|&r| live(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u16]) -> Vec<NodeId> {
        raw.iter().map(|&n| NodeId::new(n)).collect()
    }

    #[test]
    fn homes_spread_round_robin_over_sorted_deduped_replicas() {
        // Given unsorted with a duplicate: canonicalized to [1, 2, 3].
        let m = RangeMap::new(6, &ids(&[3, 1, 2, 1]));
        assert_eq!(m.replicas(), ids(&[1, 2, 3]).as_slice());
        let homes: Vec<u16> = (0..6).map(|r| m.home_of(r).raw()).collect();
        assert_eq!(homes, vec![1, 2, 3, 1, 2, 3]);
        assert_eq!(m.range_of(7), 1);
        assert_eq!(m.range_of(12), 0);
    }

    #[test]
    fn a_live_home_owns_its_range() {
        let m = RangeMap::new(4, &ids(&[1, 2, 3]));
        assert_eq!(m.owner_of(1, |_| true), Some(NodeId::new(2)));
    }

    #[test]
    fn a_dead_home_fails_over_to_the_smallest_live_replica() {
        let m = RangeMap::new(4, &ids(&[1, 2, 3]));
        // Home of range 1 is node 2; with node 2 dead the smallest live
        // replica (node 1) takes over.
        let dead2 = |n: NodeId| n != NodeId::new(2);
        assert_eq!(m.owner_of(1, dead2), Some(NodeId::new(1)));
    }

    #[test]
    fn cascading_failover_settles_on_the_next_live_replica() {
        let m = RangeMap::new(3, &ids(&[1, 2, 3]));
        // Range 0's home (node 1) dies, then its successor... the rule
        // re-evaluates from scratch: with 1 and 2 dead, node 3 owns all.
        let only3 = |n: NodeId| n == NodeId::new(3);
        for r in 0..3 {
            assert_eq!(m.owner_of(r, only3), Some(NodeId::new(3)));
        }
        assert_eq!(m.owner_of(0, |_| false), None, "a dead set has no owner");
    }

    #[test]
    fn survivors_with_identical_verdicts_agree_without_coordination() {
        let m = RangeMap::new(8, &ids(&[2, 5, 9]));
        let verdicts = |n: NodeId| n.raw() != 2;
        for r in 0..8 {
            let a = m.owner_of(r, verdicts);
            let b = m.owner_of(r, verdicts);
            assert_eq!(a, b);
            assert!(a.is_some());
        }
    }
}
