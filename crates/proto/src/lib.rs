//! # tg-proto — update-coherence protocol logic
//!
//! The paper's central correctness contribution is the *owner-serialized,
//! counter-filtered* update protocol of §2.3.3: all updates to a replicated
//! page are serialized through its owner, writers apply their stores locally
//! at once, and a small counter per outstanding write lets each node ignore
//! exactly the incoming updates that are older than its own pending stores.
//! The result (§2.4): every node observes a *subsequence of the owner's
//! serialization* — never an invalid sequence like Galactica Net's "1,2,1".
//!
//! This crate implements that logic in three layers:
//!
//! * [`PendingCam`] — the content-addressable counter cache of §2.3.4,
//!   reused by `tg-hib` as the hardware CAM;
//! * recorders and checkers ([`SeqRecorder`], [`is_subsequence`],
//!   [`revisit_anomalies`]) that the tests and experiments use to verify
//!   sequence validity and convergence;
//! * abstract, timing-free simulators of three protocols over an in-order
//!   channel network with adversarial (seeded-random) interleaving:
//!   [`naive::NaiveMulticast`] (Figure 2's inconsistency),
//!   [`owner::OwnerSerialized`] (the paper's protocol), and
//!   [`galactica::GalacticaRing`] (the §2.4 baseline).
//!
//! The full-system versions — with real switches, HIBs and timing — live in
//! `tg-hib` and `telegraphos`; the abstract ones here let property tests
//! explore millions of interleavings cheaply.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abstract_net;
mod cam;
pub mod galactica;
pub mod naive;
pub mod owner;
pub mod ranges;
mod recorder;
mod scenario;

pub use abstract_net::AbstractNet;
pub use cam::PendingCam;
pub use ranges::RangeMap;
pub use recorder::{is_subsequence, revisit_anomalies, SeqRecorder};
pub use scenario::{Outcome, Scenario, ScriptedWrite};
