//! Shared-write scenarios and protocol outcomes.

use crate::recorder::{is_subsequence, revisit_anomalies};

/// One scripted store to the shared location.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScriptedWrite {
    /// The node performing the store.
    pub node: usize,
    /// The (globally unique) value stored.
    pub value: u64,
}

/// A workload over one shared memory word replicated on every node: which
/// nodes write which values, and the interleaving seed.
///
/// Values must be unique and non-zero so observation sequences identify
/// writes unambiguously (zero is the initial page value).
///
/// # Example
///
/// ```
/// use tg_proto::Scenario;
/// let s = Scenario::figure2(7);
/// assert_eq!(s.nodes, 3);
/// assert_eq!(s.writes.len(), 2);
/// s.validate().unwrap();
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Number of nodes sharing the location (all hold a copy).
    pub nodes: usize,
    /// Program-order write scripts, interleaved across nodes in list order.
    pub writes: Vec<ScriptedWrite>,
    /// Seed for the adversarial interleaving.
    pub seed: u64,
}

impl Scenario {
    /// The exact Figure 2 race: two writers store concurrently while a
    /// third node only observes.
    pub fn figure2(seed: u64) -> Self {
        Scenario {
            nodes: 3,
            writes: vec![
                ScriptedWrite { node: 0, value: 1 },
                ScriptedWrite { node: 1, value: 2 },
            ],
            seed,
        }
    }

    /// A randomized scenario: `writers` nodes each issue `per_writer`
    /// stores of unique values; at least one extra node observes.
    pub fn random(writers: usize, per_writer: usize, observers: usize, seed: u64) -> Self {
        let mut writes = Vec::new();
        let mut value = 1;
        for round in 0..per_writer {
            for w in 0..writers {
                let _ = round;
                writes.push(ScriptedWrite { node: w, value });
                value += 1;
            }
        }
        Scenario {
            nodes: writers + observers,
            writes,
            seed,
        }
    }

    /// Checks the scenario invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant: out-of-range node,
    /// zero value, or duplicate value.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        if self.nodes == 0 {
            return Err("scenario needs at least one node".into());
        }
        for w in &self.writes {
            if w.node >= self.nodes {
                return Err(format!("write from out-of-range node {}", w.node));
            }
            if w.value == 0 {
                return Err("zero is reserved for the initial value".into());
            }
            if !seen.insert(w.value) {
                return Err(format!("duplicate value {}", w.value));
            }
        }
        Ok(())
    }

    /// Per-node write queues in program order.
    pub fn scripts(&self) -> Vec<std::collections::VecDeque<u64>> {
        let mut scripts = vec![std::collections::VecDeque::new(); self.nodes];
        for w in &self.writes {
            scripts[w.node].push_back(w.value);
        }
        scripts
    }
}

/// What a protocol run produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// Final value of the shared word at each node.
    pub final_values: Vec<u64>,
    /// Per node, the sequence of distinct values it observed.
    pub observed: Vec<Vec<u64>>,
    /// The owner's serialization order (owner-based protocol only).
    pub serialization: Option<Vec<u64>>,
    /// Total protocol messages delivered.
    pub messages: u64,
    /// High-water mark of in-flight protocol messages.
    pub peak_in_flight: usize,
}

impl Outcome {
    /// True when every copy ended with the same value.
    pub fn converged(&self) -> bool {
        self.final_values.windows(2).all(|w| w[0] == w[1])
    }

    /// Nodes whose observation sequence revisits an overwritten value
    /// ("1,2,1" anomalies), as `(node, offending values)`.
    pub fn anomalies(&self) -> Vec<(usize, Vec<u64>)> {
        self.observed
            .iter()
            .enumerate()
            .filter_map(|(i, seq)| {
                let bad = revisit_anomalies(seq);
                if bad.is_empty() {
                    None
                } else {
                    Some((i, bad))
                }
            })
            .collect()
    }

    /// Nodes whose observations are *not* a subsequence of the owner's
    /// serialization. Empty when no serialization was produced.
    pub fn subsequence_violations(&self) -> Vec<usize> {
        match &self.serialization {
            None => Vec::new(),
            Some(order) => self
                .observed
                .iter()
                .enumerate()
                .filter(|(_, seq)| !is_subsequence(seq, order))
                .map(|(i, _)| i)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_is_valid() {
        Scenario::figure2(0).validate().unwrap();
    }

    #[test]
    fn random_scenarios_are_valid() {
        for seed in 0..5 {
            Scenario::random(3, 4, 2, seed).validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_bad_scenarios() {
        let bad_node = Scenario {
            nodes: 1,
            writes: vec![ScriptedWrite { node: 3, value: 1 }],
            seed: 0,
        };
        assert!(bad_node.validate().is_err());
        let zero_value = Scenario {
            nodes: 1,
            writes: vec![ScriptedWrite { node: 0, value: 0 }],
            seed: 0,
        };
        assert!(zero_value.validate().is_err());
        let dup = Scenario {
            nodes: 2,
            writes: vec![
                ScriptedWrite { node: 0, value: 5 },
                ScriptedWrite { node: 1, value: 5 },
            ],
            seed: 0,
        };
        assert!(dup.validate().is_err());
    }

    #[test]
    fn scripts_preserve_program_order() {
        let s = Scenario {
            nodes: 2,
            writes: vec![
                ScriptedWrite { node: 0, value: 1 },
                ScriptedWrite { node: 1, value: 2 },
                ScriptedWrite { node: 0, value: 3 },
            ],
            seed: 0,
        };
        let scripts = s.scripts();
        assert_eq!(scripts[0], [1, 3]);
        assert_eq!(scripts[1], [2]);
    }

    #[test]
    fn outcome_checks() {
        let good = Outcome {
            final_values: vec![2, 2],
            observed: vec![vec![1, 2], vec![2]],
            serialization: Some(vec![1, 2]),
            messages: 4,
            peak_in_flight: 4,
        };
        assert!(good.converged());
        assert!(good.anomalies().is_empty());
        assert!(good.subsequence_violations().is_empty());

        let bad = Outcome {
            final_values: vec![1, 2],
            observed: vec![vec![1, 2, 1], vec![2, 1, 2]],
            serialization: Some(vec![1, 2]),
            messages: 4,
            peak_in_flight: 4,
        };
        assert!(!bad.converged());
        assert_eq!(bad.anomalies().len(), 2);
        assert_eq!(bad.subsequence_violations(), vec![0, 1]);
    }
}
