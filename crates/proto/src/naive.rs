//! The naive eager-multicast protocol — Figure 2's inconsistency.
//!
//! Every writer updates its local copy and multicasts the new value
//! directly to all other copies. With two concurrent writers the updates
//! race through the network and arrive at different copies in different
//! orders, so the copies can end up permanently different — exactly the
//! scenario of Figure 2 ("Inconsistency caused by multicasting in the lack
//! of ownership").

use tg_sim::SimRng;

use crate::abstract_net::AbstractNet;
use crate::recorder::SeqRecorder;
use crate::scenario::{Outcome, Scenario};

/// An update in flight: just the new value.
type Update = u64;

/// Runs the naive protocol on a scenario.
///
/// # Example
///
/// ```
/// use tg_proto::{naive::NaiveMulticast, Scenario};
/// let outcome = NaiveMulticast::run(&Scenario::figure2(11));
/// // May or may not diverge on this seed, but always delivers all traffic:
/// assert_eq!(outcome.messages, 2 * 2);
/// ```
#[derive(Debug)]
pub struct NaiveMulticast;

impl NaiveMulticast {
    /// Executes `scenario` under a seeded adversarial interleaving.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`].
    pub fn run(scenario: &Scenario) -> Outcome {
        scenario.validate().expect("valid scenario");
        let n = scenario.nodes;
        let mut rng = SimRng::new(scenario.seed);
        let mut net: AbstractNet<Update> = AbstractNet::new(n);
        let mut scripts = scenario.scripts();
        let mut values = vec![0u64; n];
        let mut recorders: Vec<SeqRecorder> = (0..n).map(|_| SeqRecorder::new(0)).collect();

        loop {
            let issuers: Vec<usize> = (0..n).filter(|&i| !scripts[i].is_empty()).collect();
            let can_deliver = !net.is_quiescent();
            if issuers.is_empty() && !can_deliver {
                break;
            }
            let issue = !issuers.is_empty() && (!can_deliver || rng.chance(0.5));
            if issue {
                let w = *rng.pick(&issuers);
                let v = scripts[w].pop_front().expect("nonempty script");
                values[w] = v;
                recorders[w].observe(v);
                for dst in 0..n {
                    if dst != w {
                        net.send(w, dst, v);
                    }
                }
            } else {
                let (_src, dst, v) = net.deliver_random(&mut rng).expect("deliverable");
                values[dst] = v;
                recorders[dst].observe(v);
            }
        }

        Outcome {
            final_values: values,
            observed: recorders.iter().map(|r| r.changes().to_vec()).collect(),
            serialization: None,
            messages: net.delivered(),
            peak_in_flight: net.peak_in_flight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writer_converges() {
        let s = Scenario {
            nodes: 4,
            writes: vec![
                crate::ScriptedWrite { node: 0, value: 1 },
                crate::ScriptedWrite { node: 0, value: 2 },
                crate::ScriptedWrite { node: 0, value: 3 },
            ],
            seed: 5,
        };
        let out = NaiveMulticast::run(&s);
        assert!(out.converged(), "single-writer FIFO traffic cannot diverge");
        assert_eq!(out.final_values[1], 3);
        assert_eq!(out.observed[2], vec![1, 2, 3]);
    }

    #[test]
    fn figure2_race_diverges_on_some_seed() {
        // The paper's point: without ownership, some interleavings leave
        // the copies permanently different. Sweep seeds; at least one (in
        // fact many) must diverge.
        let diverging = (0..64)
            .filter(|&seed| !NaiveMulticast::run(&Scenario::figure2(seed)).converged())
            .count();
        assert!(diverging > 0, "no divergence over 64 interleavings");
    }

    #[test]
    fn observers_see_all_values_eventually() {
        let s = Scenario::figure2(3);
        let out = NaiveMulticast::run(&s);
        // Node 2 (pure observer) saw both written values in some order.
        let mut seen = out.observed[2].clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn message_count_is_fanout_times_writes() {
        let s = Scenario::random(2, 3, 2, 9);
        let out = NaiveMulticast::run(&s);
        assert_eq!(out.messages, 6 * 3); // 6 writes x (4-1) destinations
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NaiveMulticast::run(&Scenario::figure2(17));
        let b = NaiveMulticast::run(&Scenario::figure2(17));
        assert_eq!(a, b);
    }
}
