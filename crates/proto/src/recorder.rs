//! Observation recording and sequence-validity checking.

/// Records the sequence of values a node *observes* at a memory location:
/// one entry per change of the locally visible value.
///
/// # Example
///
/// ```
/// use tg_proto::SeqRecorder;
/// let mut r = SeqRecorder::new(0);
/// r.observe(1);
/// r.observe(1); // unchanged: not recorded
/// r.observe(2);
/// assert_eq!(r.changes(), &[1, 2]);
/// assert_eq!(r.current(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqRecorder {
    current: u64,
    changes: Vec<u64>,
}

impl SeqRecorder {
    /// A recorder starting from `initial` (typically 0, the fresh-page
    /// value).
    pub fn new(initial: u64) -> Self {
        SeqRecorder {
            current: initial,
            changes: Vec::new(),
        }
    }

    /// Notes the currently visible value; records it only if it changed.
    pub fn observe(&mut self, value: u64) {
        if value != self.current {
            self.current = value;
            self.changes.push(value);
        }
    }

    /// The visible value now.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The sequence of distinct successive values observed.
    pub fn changes(&self) -> &[u64] {
        &self.changes
    }
}

/// True if `needle` is a (not necessarily contiguous) subsequence of
/// `haystack` — the §2.3.3 validity criterion: every node sees a subset of
/// the values the owner sees, in the owner's order.
///
/// # Example
///
/// ```
/// use tg_proto::is_subsequence;
/// assert!(is_subsequence(&[2, 5], &[1, 2, 3, 5]));
/// assert!(!is_subsequence(&[5, 2], &[1, 2, 3, 5]));
/// ```
pub fn is_subsequence(needle: &[u64], haystack: &[u64]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Finds "1,2,1"-style anomalies: values that reappear after having been
/// overwritten. When every write carries a distinct value (as the abstract
/// scenarios guarantee), any revisit is an invalid sequence under every
/// memory-consistency model — exactly the Galactica Net behaviour the paper
/// calls out in §2.4. Returns the revisited values.
///
/// # Example
///
/// ```
/// use tg_proto::revisit_anomalies;
/// assert_eq!(revisit_anomalies(&[1, 2, 1]), vec![1]);
/// assert!(revisit_anomalies(&[1, 2, 3]).is_empty());
/// ```
pub fn revisit_anomalies(seq: &[u64]) -> Vec<u64> {
    let mut seen = std::collections::HashSet::new();
    let mut bad = Vec::new();
    for &v in seq {
        if !seen.insert(v) && !bad.contains(&v) {
            bad.push(v);
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_dedups_consecutive() {
        let mut r = SeqRecorder::new(0);
        r.observe(0); // initial value: no change
        r.observe(3);
        r.observe(3);
        r.observe(0); // back to initial IS a change
        assert_eq!(r.changes(), &[3, 0]);
    }

    #[test]
    fn subsequence_edge_cases() {
        assert!(is_subsequence(&[], &[]));
        assert!(is_subsequence(&[], &[1]));
        assert!(!is_subsequence(&[1], &[]));
        assert!(is_subsequence(&[1, 1], &[1, 2, 1]));
        assert!(!is_subsequence(&[1, 1], &[1, 2]));
        assert!(is_subsequence(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn anomaly_detector() {
        assert!(revisit_anomalies(&[]).is_empty());
        assert!(revisit_anomalies(&[7]).is_empty());
        assert_eq!(revisit_anomalies(&[1, 2, 1, 2]), vec![1, 2]);
        // A change-sequence cannot hold immediate repeats (SeqRecorder
        // dedups), but the detector tolerates them.
        assert_eq!(revisit_anomalies(&[4, 4]), vec![4]);
    }
}
