//! The paper's owner-serialized, counter-filtered update protocol (§2.3).
//!
//! Every replicated page has one owner; all updates are serialized by it
//! (§2.3.1). A writer applies its store locally at once — so it can read
//! its own writes (§2.3.2) — increments a pending-write counter, and sends
//! the value to the owner, which multicasts *reflected writes* to every
//! copy in its serialization order. A node receiving a reflected write of
//! its own store decrements the counter and ignores the value; any other
//! reflected write to a location with a non-zero counter is ignored too
//! (§2.3.3, rules 1–4). The counters live in a small CAM (§2.3.4); when the
//! CAM is full, the writer stalls until a reflected write frees an entry.

use tg_sim::SimRng;

use crate::abstract_net::AbstractNet;
use crate::cam::PendingCam;
use crate::recorder::SeqRecorder;
use crate::scenario::{Outcome, Scenario};

/// Protocol messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Msg {
    /// Writer → owner: please serialize this store.
    ToOwner { value: u64, writer: usize },
    /// Owner → copy: the next update in serialization order.
    Reflected { value: u64, writer: usize },
}

/// A crash-stop failover plan: the owner halts mid-run and serialization
/// fails over to the smallest-id surviving node — the same deterministic
/// successor rule the cluster's coherence layer uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OwnerFailover {
    /// The owner crashes immediately after this many writes have been
    /// serialized (its in-flight state vanishes with it).
    pub crash_after_serialized: usize,
}

/// Configuration of an owner-protocol run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OwnerConfig {
    /// Which node owns the page.
    pub owner: usize,
    /// CAM entries per node (pending-write counters); `usize::MAX` for the
    /// unbounded strawman.
    pub cam_entries: usize,
    /// Crash the owner mid-run and fail over (`None`: fault-free).
    pub failover: Option<OwnerFailover>,
}

impl Default for OwnerConfig {
    fn default() -> Self {
        OwnerConfig {
            owner: 0,
            cam_entries: 16,
            failover: None,
        }
    }
}

/// The owner-serialized protocol simulator.
#[derive(Debug)]
pub struct OwnerSerialized;

/// The abstract model covers a single shared word, so every CAM keys on
/// word 0.
const WORD: u64 = 0;

impl OwnerSerialized {
    /// Executes `scenario` with the default configuration (owner = node 0,
    /// 16-entry CAM).
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`].
    pub fn run(scenario: &Scenario) -> Outcome {
        Self::run_with(scenario, OwnerConfig::default())
    }

    /// Executes `scenario` with an explicit owner and CAM size, and
    /// optionally a crash-stop failover plan. Under a failover plan the
    /// crashed owner's in-flight traffic is lost; survivors retransmit
    /// their pending (unreflected) writes to the deterministic successor,
    /// so every surviving writer's store is serialized *at least* once —
    /// a write whose reflection partially escaped the crash may appear
    /// twice in the serialization, which rule 3's pending filter and
    /// per-channel FIFO keep harmless.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid, the owner index is out of
    /// range, or a failover plan crashes the only node.
    pub fn run_with(scenario: &Scenario, config: OwnerConfig) -> Outcome {
        scenario.validate().expect("valid scenario");
        let n = scenario.nodes;
        assert!(config.owner < n, "owner out of range");
        let mut owner = config.owner;

        let mut rng = SimRng::new(scenario.seed);
        let mut net: AbstractNet<Msg> = AbstractNet::new(n);
        let mut scripts = scenario.scripts();
        let mut values = vec![0u64; n];
        let mut recorders: Vec<SeqRecorder> = (0..n).map(|_| SeqRecorder::new(0)).collect();
        let mut cams: Vec<PendingCam> = (0..n)
            .map(|_| PendingCam::new(config.cam_entries))
            .collect();
        let mut serialization: Vec<u64> = Vec::new();
        // Per-writer FIFO of issued-but-unreflected values, mirroring the
        // CAM counters; on an owner crash these are exactly the writes the
        // survivor must retransmit to the successor.
        let mut inflight: Vec<std::collections::VecDeque<u64>> =
            (0..n).map(|_| std::collections::VecDeque::new()).collect();
        let mut alive = vec![true; n];
        let mut crashed = false;
        // Reused across iterations; this loop is the proto_sweep hot path
        // and must not allocate per step.
        let mut issuers: Vec<usize> = Vec::with_capacity(n);

        loop {
            // A node can issue its next write if it is alive, has one, and
            // (for non-owners) the CAM can take another pending entry.
            issuers.clear();
            issuers.extend((0..n).filter(|&i| {
                alive[i]
                    && !scripts[i].is_empty()
                    && (i == owner
                        || cams[i].is_pending(WORD)
                        || cams[i].len() < cams[i].capacity())
            }));
            let can_deliver = !net.is_quiescent();
            if issuers.is_empty() && !can_deliver {
                break;
            }
            let issue = !issuers.is_empty() && (!can_deliver || rng.chance(0.5));
            if issue {
                let w = *rng.pick(&issuers);
                let v = scripts[w].pop_front().expect("nonempty script");
                if w == owner {
                    // Rule owner: the owner's own store is serialized on
                    // the spot and multicast to every copy.
                    values[w] = v;
                    recorders[w].observe(v);
                    serialization.push(v);
                    for (dst, &up) in alive.iter().enumerate() {
                        if dst != owner && up {
                            net.send(
                                owner,
                                dst,
                                Msg::Reflected {
                                    value: v,
                                    writer: owner,
                                },
                            );
                        }
                    }
                } else {
                    // Rule 1: apply locally, count the pending write, send
                    // to the owner.
                    let accepted = cams[w].try_increment(WORD);
                    assert!(accepted, "issuer availability was checked above");
                    values[w] = v;
                    recorders[w].observe(v);
                    inflight[w].push_back(v);
                    net.send(
                        w,
                        owner,
                        Msg::ToOwner {
                            value: v,
                            writer: w,
                        },
                    );
                }
            } else {
                let (_src, dst, msg) = net.deliver_random(&mut rng).expect("deliverable");
                match msg {
                    Msg::ToOwner { value, writer } => {
                        debug_assert_eq!(dst, owner);
                        // Owner applies in arrival order — this IS the
                        // serialization — and multicasts to all copies,
                        // including the original writer (§2.3.1).
                        values[owner] = value;
                        recorders[owner].observe(value);
                        serialization.push(value);
                        for (copy, &up) in alive.iter().enumerate() {
                            if copy != owner && up {
                                net.send(owner, copy, Msg::Reflected { value, writer });
                            }
                        }
                    }
                    Msg::Reflected { value, writer } => {
                        if writer == dst {
                            // Rule 2: our own write came back; consume the
                            // counter, ignore the value.
                            cams[dst].decrement(WORD);
                            let front = inflight[dst].pop_front();
                            debug_assert_eq!(front, Some(value), "reflection out of issue order");
                        } else if cams[dst].is_pending(WORD) {
                            // Rule 3: older than our pending write; ignore.
                        } else {
                            // Rule 4 (reads) is implicit: reads always see
                            // `values[dst]`. Apply the update.
                            values[dst] = value;
                            recorders[dst].observe(value);
                        }
                    }
                }
            }

            // The configured crash-stop fault fires the moment enough
            // writes have been serialized: the owner's queued traffic
            // vanishes with it, the smallest surviving node takes over,
            // and every survivor retransmits its still-pending writes to
            // the successor (at-least-once re-serialization).
            if !crashed
                && config
                    .failover
                    .is_some_and(|f| serialization.len() >= f.crash_after_serialized)
            {
                crashed = true;
                alive[owner] = false;
                scripts[owner].clear();
                inflight[owner].clear();
                net.purge_node(owner);
                let successor = (0..n).find(|&i| alive[i]).expect("a surviving node");
                // The successor serializes its own unreflected writes
                // first — they are already applied locally, so only the
                // counters and the multicast remain.
                while let Some(v) = inflight[successor].pop_front() {
                    cams[successor].decrement(WORD);
                    serialization.push(v);
                    for (dst, &up) in alive.iter().enumerate() {
                        if dst != successor && up {
                            net.send(
                                successor,
                                dst,
                                Msg::Reflected {
                                    value: v,
                                    writer: successor,
                                },
                            );
                        }
                    }
                }
                for w in 0..n {
                    if w != successor && alive[w] {
                        for &v in &inflight[w] {
                            net.send(
                                w,
                                successor,
                                Msg::ToOwner {
                                    value: v,
                                    writer: w,
                                },
                            );
                        }
                    }
                }
                owner = successor;
            }
        }

        Outcome {
            final_values: values,
            observed: recorders.iter().map(|r| r.changes().to_vec()).collect(),
            serialization: Some(serialization),
            messages: net.delivered(),
            peak_in_flight: net.peak_in_flight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedWrite;

    #[test]
    fn figure2_race_never_diverges() {
        for seed in 0..128 {
            let out = OwnerSerialized::run(&Scenario::figure2(seed));
            assert!(out.converged(), "diverged on seed {seed}: {out:?}");
            assert!(out.anomalies().is_empty(), "anomaly on seed {seed}");
            assert!(
                out.subsequence_violations().is_empty(),
                "subsequence violation on seed {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn final_value_is_last_serialized() {
        let out = OwnerSerialized::run(&Scenario::figure2(33));
        let order = out.serialization.as_ref().unwrap();
        assert_eq!(out.final_values[0], *order.last().unwrap());
    }

    #[test]
    fn writer_reads_its_own_write_immediately() {
        // §2.3.2: the writer's local copy must hold the new value the
        // moment the store completes, before any owner round trip.
        let s = Scenario {
            nodes: 3,
            writes: vec![ScriptedWrite { node: 1, value: 7 }],
            seed: 0,
        };
        let out = OwnerSerialized::run(&s);
        assert_eq!(out.observed[1], vec![7], "writer observed its own store");
        assert!(out.converged());
    }

    #[test]
    fn owner_writer_serializes_directly() {
        let s = Scenario {
            nodes: 2,
            writes: vec![
                ScriptedWrite { node: 0, value: 4 },
                ScriptedWrite { node: 0, value: 5 },
            ],
            seed: 1,
        };
        let out = OwnerSerialized::run(&s);
        assert_eq!(out.serialization.as_deref(), Some(&[4, 5][..]));
        assert_eq!(out.final_values, vec![5, 5]);
    }

    #[test]
    fn many_writers_many_writes_all_invariants() {
        for seed in 0..40 {
            let s = Scenario::random(4, 5, 2, seed);
            let out = OwnerSerialized::run_with(
                &s,
                OwnerConfig {
                    owner: seed as usize % 6,
                    cam_entries: 2,
                    failover: None,
                },
            );
            assert!(out.converged(), "seed {seed}");
            assert!(out.anomalies().is_empty(), "seed {seed}");
            assert!(out.subsequence_violations().is_empty(), "seed {seed}");
            // Every written value reached the owner exactly once.
            let mut ser = out.serialization.clone().unwrap();
            ser.sort_unstable();
            let mut expect: Vec<u64> = s.writes.iter().map(|w| w.value).collect();
            expect.sort_unstable();
            assert_eq!(ser, expect, "seed {seed}");
        }
    }

    #[test]
    fn tiny_cam_still_correct_just_stalls() {
        let s = Scenario::random(3, 8, 1, 77);
        let out = OwnerSerialized::run_with(
            &s,
            OwnerConfig {
                owner: 3,
                cam_entries: 1,
                failover: None,
            },
        );
        assert!(out.converged());
        assert!(out.subsequence_violations().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = OwnerSerialized::run(&Scenario::random(3, 3, 1, 5));
        let b = OwnerSerialized::run(&Scenario::random(3, 3, 1, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn owner_crash_fails_over_to_smallest_survivor() {
        // The owner crashes mid-run; the smallest surviving node takes
        // over serialization. Every survivor must converge on the last
        // serialized value, every surviving writer's store must be
        // serialized at least once, and each node's view must stay a
        // subsequence of the (concatenated) serialization.
        for seed in 0..64 {
            let s = Scenario::random(4, 4, 1, seed);
            let out = OwnerSerialized::run_with(
                &s,
                OwnerConfig {
                    owner: 0,
                    cam_entries: 4,
                    failover: Some(OwnerFailover {
                        crash_after_serialized: 2,
                    }),
                },
            );
            let ser = out.serialization.as_ref().unwrap();
            let last = *ser.last().unwrap();
            for i in 1..s.nodes {
                assert_eq!(
                    out.final_values[i], last,
                    "survivor {i} diverged on seed {seed}: {out:?}"
                );
            }
            assert!(
                out.subsequence_violations().is_empty(),
                "subsequence violation on seed {seed}: {out:?}"
            );
            for w in &s.writes {
                if w.node != 0 {
                    assert!(
                        ser.contains(&w.value),
                        "surviving writer {}'s store {} lost on seed {seed}",
                        w.node,
                        w.value
                    );
                }
            }
        }
    }

    #[test]
    fn owner_crash_replay_is_deterministic() {
        let run = || {
            OwnerSerialized::run_with(
                &Scenario::random(4, 5, 2, 11),
                OwnerConfig {
                    owner: 2,
                    cam_entries: 2,
                    failover: Some(OwnerFailover {
                        crash_after_serialized: 3,
                    }),
                },
            )
        };
        assert_eq!(run(), run(), "crash replay diverged");
    }

    #[test]
    fn crash_before_any_serialization_still_completes() {
        // crash_after_serialized = 0: the owner dies on the first step;
        // the successor serializes everything the survivors wrote.
        let s = Scenario {
            nodes: 3,
            writes: vec![
                ScriptedWrite { node: 1, value: 7 },
                ScriptedWrite { node: 2, value: 9 },
            ],
            seed: 4,
        };
        let out = OwnerSerialized::run_with(
            &s,
            OwnerConfig {
                owner: 0,
                cam_entries: 4,
                failover: Some(OwnerFailover {
                    crash_after_serialized: 0,
                }),
            },
        );
        let mut ser = out.serialization.clone().unwrap();
        ser.sort_unstable();
        ser.dedup();
        assert_eq!(ser, vec![7, 9], "a survivor's write was lost");
        let last = *out.serialization.as_ref().unwrap().last().unwrap();
        assert_eq!(out.final_values[1], last);
        assert_eq!(out.final_values[2], last);
    }
}
