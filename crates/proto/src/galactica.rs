//! The Galactica Net sharing-ring baseline (§2.4).
//!
//! Galactica Net links all sharers of a page into a ring. A writer applies
//! its store locally and sends the update around the ring; every node
//! applies updates in arrival order and forwards them until they return to
//! their origin. Writers notice a conflict when a foreign update carrying a
//! different value reaches them while their own update is still in flight:
//! the higher-priority (lower-index) writer keeps its value, the loser
//! *backs off* and accepts it — and once a conflicted writer's own update
//! returns home, it re-asserts its current local value around the ring so
//! every copy converges.
//!
//! The paper's complaint (§2.4) survives in this model: a third processor
//! can observe the sequence "1, 2, 1" — the winner's value appearing, being
//! overwritten by the loser's on one ring segment, and the back-off
//! correction re-asserting the winner's value — which is "a sequence that
//! is not a valid program sequence under any memory consistency model".
//! The Telegraphos owner protocol makes such sequences impossible; this
//! module exists to demonstrate the contrast (experiment E5).

use tg_sim::SimRng;

use crate::abstract_net::AbstractNet;
use crate::recorder::SeqRecorder;
use crate::scenario::{Outcome, Scenario};

/// A ring update in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Update {
    value: u64,
    origin: usize,
}

/// Per-node writer state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct WriterState {
    /// True while an update of ours is traversing the ring.
    outstanding: bool,
    /// Set when a conflicting (different-valued) update passed us while
    /// `outstanding`; triggers a re-assertion of our current value when our
    /// own update returns home.
    conflicted: bool,
}

/// The Galactica ring protocol simulator.
#[derive(Debug)]
pub struct GalacticaRing;

impl GalacticaRing {
    /// Executes `scenario` under a seeded adversarial interleaving.
    ///
    /// Nodes form a ring `0 → 1 → … → n-1 → 0`; lower node index wins
    /// conflicts.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid or has fewer than two nodes.
    pub fn run(scenario: &Scenario) -> Outcome {
        scenario.validate().expect("valid scenario");
        let n = scenario.nodes;
        assert!(n >= 2, "a ring needs at least two nodes");

        let mut rng = SimRng::new(scenario.seed);
        let mut net: AbstractNet<Update> = AbstractNet::new(n);
        let mut scripts = scenario.scripts();
        let mut values = vec![0u64; n];
        let mut recorders: Vec<SeqRecorder> = (0..n).map(|_| SeqRecorder::new(0)).collect();
        let mut writers = vec![WriterState::default(); n];

        let next = |x: usize| (x + 1) % n;

        loop {
            // A node may issue its next write only when it has no update of
            // its own still circling (one outstanding write per node).
            let issuers: Vec<usize> = (0..n)
                .filter(|&i| !scripts[i].is_empty() && !writers[i].outstanding)
                .collect();
            let can_deliver = !net.is_quiescent();
            if issuers.is_empty() && !can_deliver {
                break;
            }
            let issue = !issuers.is_empty() && (!can_deliver || rng.chance(0.5));
            if issue {
                let w = *rng.pick(&issuers);
                let v = scripts[w].pop_front().expect("nonempty script");
                values[w] = v;
                recorders[w].observe(v);
                writers[w] = WriterState {
                    outstanding: true,
                    conflicted: false,
                };
                net.send(
                    w,
                    next(w),
                    Update {
                        value: v,
                        origin: w,
                    },
                );
            } else {
                let (_src, at, up) = net.deliver_random(&mut rng).expect("deliverable");
                if up.origin == at {
                    // Our update completed the ring.
                    writers[at].outstanding = false;
                    if writers[at].conflicted {
                        // Back-off correction: circulate our current local
                        // value (the conflict winner's) once more so every
                        // segment of the ring converges on it.
                        writers[at].conflicted = false;
                        writers[at].outstanding = true;
                        let v = values[at];
                        net.send(
                            at,
                            next(at),
                            Update {
                                value: v,
                                origin: at,
                            },
                        );
                    }
                } else {
                    if writers[at].outstanding && up.value != values[at] {
                        // A concurrent, different-valued update: conflict.
                        writers[at].conflicted = true;
                        if at > up.origin {
                            // We lose on priority: accept the winner's value.
                            values[at] = up.value;
                            recorders[at].observe(up.value);
                        }
                        // Winners keep their local value (the foreign update
                        // is suppressed locally but still forwarded).
                    } else if up.value != values[at] {
                        values[at] = up.value;
                        recorders[at].observe(up.value);
                    }
                    // Forward along the ring regardless.
                    net.send(at, next(at), up);
                }
            }
        }

        Outcome {
            final_values: values,
            observed: recorders.iter().map(|r| r.changes().to_vec()).collect(),
            serialization: None,
            messages: net.delivered(),
            peak_in_flight: net.peak_in_flight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedWrite;

    #[test]
    fn single_writer_converges_cleanly() {
        let s = Scenario {
            nodes: 4,
            writes: vec![
                ScriptedWrite { node: 1, value: 1 },
                ScriptedWrite { node: 1, value: 2 },
            ],
            seed: 3,
        };
        let out = GalacticaRing::run(&s);
        assert!(out.converged());
        assert_eq!(out.final_values[0], 2);
        assert!(out.anomalies().is_empty());
    }

    #[test]
    fn two_writer_race_always_converges() {
        for seed in 0..128 {
            let out = GalacticaRing::run(&Scenario::figure2(seed));
            assert!(out.converged(), "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn revisit_anomaly_occurs_on_some_interleaving() {
        // The §2.4 "1,2,1" behaviour: with enough ring positions and
        // interleavings, some node observes a value reappear.
        let mut hits = 0;
        for seed in 0..256 {
            let s = Scenario {
                nodes: 5,
                writes: vec![
                    ScriptedWrite { node: 0, value: 1 },
                    ScriptedWrite { node: 2, value: 2 },
                ],
                seed,
            };
            let out = GalacticaRing::run(&s);
            assert!(out.converged(), "seed {seed}");
            if !out.anomalies().is_empty() {
                hits += 1;
            }
        }
        assert!(hits > 0, "no 1,2,1 anomaly over 256 interleavings");
    }

    #[test]
    fn conflicts_resolve_by_priority() {
        // Whenever the Figure 2 race actually collides in flight, the
        // surviving value must be writer 0's (lower index wins).
        let mut conflict_seen = false;
        for seed in 0..128 {
            let out = GalacticaRing::run(&Scenario::figure2(seed));
            assert!(out.converged());
            if out.final_values[0] == 1 && out.observed[2].len() > 1 {
                conflict_seen = true;
            }
        }
        assert!(conflict_seen, "expected at least one resolved conflict");
    }

    #[test]
    fn three_writers_also_converge() {
        for seed in 0..64 {
            let s = Scenario::random(3, 2, 1, seed);
            let out = GalacticaRing::run(&s);
            assert!(out.converged(), "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GalacticaRing::run(&Scenario::figure2(9));
        let b = GalacticaRing::run(&Scenario::figure2(9));
        assert_eq!(a, b);
    }
}
