//! The pending-write counter cache (§2.3.3–2.3.4).

use std::collections::HashMap;

/// The content-addressable cache of pending-write counters.
///
/// The protocol needs a counter per memory word that has writes "in flight"
/// to the page owner; §2.3.4 observes that only the *non-zero* counters
/// matter, so a small CAM (the paper expects 16–32 entries) suffices. When
/// the CAM is full a new first-write must stall the processor until a
/// reflected write frees an entry — [`PendingCam::try_increment`] reports
/// that case and the stall statistics feed experiment E7.
///
/// Keys are word indices (local word address); the CAM does not interpret
/// them.
///
/// # Example
///
/// ```
/// use tg_proto::PendingCam;
/// let mut cam = PendingCam::new(2);
/// assert!(cam.try_increment(10));
/// assert!(cam.try_increment(10)); // same word: same entry
/// assert!(cam.try_increment(20));
/// assert!(!cam.try_increment(30)); // full: processor must stall
/// cam.decrement(10);
/// assert_eq!(cam.count(10), 1);
/// cam.decrement(10); // entry freed
/// assert!(cam.try_increment(30));
/// ```
#[derive(Clone, Debug)]
pub struct PendingCam {
    entries: HashMap<u64, u32>,
    capacity: usize,
    high_water: usize,
    stall_events: u64,
    increments: u64,
}

impl PendingCam {
    /// A CAM with `capacity` simultaneous non-zero counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CAM needs at least one entry");
        PendingCam {
            entries: HashMap::new(),
            capacity,
            high_water: 0,
            stall_events: 0,
            increments: 0,
        }
    }

    /// An effectively unbounded CAM (for the `StallUntilReflected` ablation
    /// and for modelling the "one counter per memory location" strawman).
    pub fn unbounded() -> Self {
        PendingCam::new(usize::MAX)
    }

    /// Records one pending write to `key`. Returns `false` — and counts a
    /// stall event — if a new entry was needed but the CAM is full; the
    /// caller must stall and retry after the next [`decrement`].
    ///
    /// [`decrement`]: PendingCam::decrement
    pub fn try_increment(&mut self, key: u64) -> bool {
        if let Some(c) = self.entries.get_mut(&key) {
            *c += 1;
            self.increments += 1;
            return true;
        }
        if self.entries.len() >= self.capacity {
            self.stall_events += 1;
            return false;
        }
        self.entries.insert(key, 1);
        self.high_water = self.high_water.max(self.entries.len());
        self.increments += 1;
        true
    }

    /// Consumes one pending write on `key` (its reflected write arrived).
    /// Zero-valued entries are evicted, freeing CAM space.
    ///
    /// # Panics
    ///
    /// Panics if `key` has no pending writes — the owner reflected a write
    /// we never sent, which is a protocol bug.
    pub fn decrement(&mut self, key: u64) {
        let c = self
            .entries
            .get_mut(&key)
            .expect("reflected write without a pending counter");
        *c -= 1;
        if *c == 0 {
            self.entries.remove(&key);
        }
    }

    /// Pending writes on `key` (0 when absent).
    pub fn count(&self, key: u64) -> u32 {
        self.entries.get(&key).copied().unwrap_or(0)
    }

    /// True if `key` has pending writes (the filter test of rule 3).
    pub fn is_pending(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Non-zero counters currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no writes are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Most simultaneous entries ever held (experiment E7's key statistic).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Times a write had to stall for a free entry.
    pub fn stall_events(&self) -> u64 {
        self.stall_events
    }

    /// Total successful increments.
    pub fn increments(&self) -> u64 {
        self.increments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_key() {
        let mut cam = PendingCam::new(4);
        assert_eq!(cam.count(1), 0);
        assert!(cam.try_increment(1));
        assert!(cam.try_increment(1));
        assert!(cam.try_increment(2));
        assert_eq!(cam.count(1), 2);
        assert_eq!(cam.count(2), 1);
        assert_eq!(cam.len(), 2);
    }

    #[test]
    fn zero_entries_are_evicted() {
        let mut cam = PendingCam::new(1);
        assert!(cam.try_increment(5));
        cam.decrement(5);
        assert!(cam.is_empty());
        assert!(!cam.is_pending(5));
        assert!(cam.try_increment(6), "slot was reclaimed");
    }

    #[test]
    fn full_cam_reports_stall() {
        let mut cam = PendingCam::new(2);
        assert!(cam.try_increment(1));
        assert!(cam.try_increment(2));
        assert!(!cam.try_increment(3));
        assert_eq!(cam.stall_events(), 1);
        // Existing keys still work while full.
        assert!(cam.try_increment(1));
        assert_eq!(cam.count(1), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut cam = PendingCam::new(8);
        for k in 0..5 {
            assert!(cam.try_increment(k));
        }
        for k in 0..5 {
            cam.decrement(k);
        }
        assert_eq!(cam.high_water(), 5);
        assert_eq!(cam.increments(), 5);
        assert!(cam.is_empty());
    }

    #[test]
    #[should_panic(expected = "without a pending counter")]
    fn spurious_reflection_is_a_bug() {
        let mut cam = PendingCam::new(2);
        cam.decrement(9);
    }

    #[test]
    fn unbounded_never_stalls() {
        let mut cam = PendingCam::unbounded();
        for k in 0..10_000 {
            assert!(cam.try_increment(k));
        }
        assert_eq!(cam.stall_events(), 0);
    }
}
