//! A timing-free, in-order channel network for protocol exploration.

use std::collections::VecDeque;

use tg_sim::SimRng;

/// A network of FIFO channels between `n` abstract nodes.
///
/// Per (source, destination) pair, messages are delivered in send order —
/// the guarantee the Telegraphos fabric provides (§2.3.1). *Across*
/// channels the delivery order is chosen adversarially by a seeded RNG, so
/// property tests can sweep interleavings that a timed simulation would
/// rarely produce.
///
/// # Example
///
/// ```
/// use tg_proto::AbstractNet;
/// use tg_sim::SimRng;
///
/// let mut net: AbstractNet<&str> = AbstractNet::new(2);
/// net.send(0, 1, "a");
/// net.send(0, 1, "b");
/// let mut rng = SimRng::new(1);
/// let (src, dst, msg) = net.deliver_random(&mut rng).unwrap();
/// assert_eq!((src, dst, msg), (0, 1, "a")); // FIFO per channel
/// ```
#[derive(Clone, Debug)]
pub struct AbstractNet<M> {
    n: usize,
    /// channel[src * n + dst]
    channels: Vec<VecDeque<M>>,
    in_flight: usize,
    peak_in_flight: usize,
    delivered: u64,
}

impl<M> AbstractNet<M> {
    /// A network over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        AbstractNet {
            n,
            channels: (0..n * n).map(|_| VecDeque::new()).collect(),
            in_flight: 0,
            peak_in_flight: 0,
            delivered: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Enqueues a message from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range.
    pub fn send(&mut self, src: usize, dst: usize, msg: M) {
        assert!(src < self.n && dst < self.n, "node out of range");
        self.channels[src * self.n + dst].push_back(msg);
        self.in_flight += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
    }

    /// Delivers the head of a uniformly random non-empty channel, or `None`
    /// when the network is quiescent.
    pub fn deliver_random(&mut self, rng: &mut SimRng) -> Option<(usize, usize, M)> {
        if self.in_flight == 0 {
            return None;
        }
        // Count-then-select rather than collecting the non-empty indices:
        // draws the same single random number over the same count, so the
        // RNG stream and the chosen channel are identical to the old
        // collecting version — but with no per-delivery allocation.
        let nonempty = self.channels.iter().filter(|c| !c.is_empty()).count();
        let k = rng.range(nonempty as u64) as usize;
        let pick = self
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .nth(k)
            .map(|(i, _)| i)
            .expect("k < nonempty count");
        let msg = self.channels[pick].pop_front().expect("nonempty channel");
        self.in_flight -= 1;
        self.delivered += 1;
        Some((pick / self.n, pick % self.n, msg))
    }

    /// Drops every queued message to or from `node` — crash-stop silence:
    /// nothing the dead node sent arrives, nothing addressed to it is
    /// consumed. Returns the number of messages dropped.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn purge_node(&mut self, node: usize) -> usize {
        assert!(node < self.n, "node out of range");
        let mut dropped = 0;
        for src in 0..self.n {
            for dst in 0..self.n {
                if src == node || dst == node {
                    let ch = &mut self.channels[src * self.n + dst];
                    dropped += ch.len();
                    ch.clear();
                }
            }
        }
        self.in_flight -= dropped;
        dropped
    }

    /// Messages still queued.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// High-water mark of queued messages (congestion reporting).
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// True when nothing is queued.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight == 0
    }

    /// Messages delivered so far (traffic accounting).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_fifo_is_preserved() {
        let mut net: AbstractNet<u32> = AbstractNet::new(3);
        for v in 0..10 {
            net.send(0, 2, v);
        }
        for v in 100..105 {
            net.send(1, 2, v);
        }
        let mut rng = SimRng::new(42);
        let mut from0 = Vec::new();
        let mut from1 = Vec::new();
        while let Some((src, dst, v)) = net.deliver_random(&mut rng) {
            assert_eq!(dst, 2);
            match src {
                0 => from0.push(v),
                1 => from1.push(v),
                other => panic!("unexpected source {other}"),
            }
        }
        assert_eq!(from0, (0..10).collect::<Vec<_>>());
        assert_eq!(from1, (100..105).collect::<Vec<_>>());
        assert!(net.is_quiescent());
        assert_eq!(net.delivered(), 15);
    }

    #[test]
    fn different_seeds_give_different_interleavings() {
        let run = |seed: u64| {
            let mut net: AbstractNet<u32> = AbstractNet::new(2);
            for v in 0..8 {
                net.send(0, 1, v);
                net.send(1, 0, 100 + v);
            }
            let mut rng = SimRng::new(seed);
            let mut order = Vec::new();
            while let Some((src, _, _)) = net.deliver_random(&mut rng) {
                order.push(src);
            }
            order
        };
        assert_ne!(run(1), run(2), "interleaving should depend on the seed");
        assert_eq!(run(3), run(3), "and be reproducible");
    }

    #[test]
    fn quiescent_network_returns_none() {
        let mut net: AbstractNet<u32> = AbstractNet::new(1);
        let mut rng = SimRng::new(0);
        assert_eq!(net.deliver_random(&mut rng), None);
        assert_eq!(net.in_flight(), 0);
    }
}
