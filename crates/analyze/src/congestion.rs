//! The congestion observatory: per-link usage summaries and the top-K
//! "hottest links" report.
//!
//! `Cluster::run_sampled` records, for every directed link, windowed time
//! series (`link.<a>-<b>.utilization`, `.fifo_depth`, `.stall_us`), final
//! counters (`.tx_packets`, `.tx_bytes`, `.retransmits`, `.resyncs`,
//! `.resync_probes`, `.rx_discards`) and a `.fifo_high_water` gauge — all
//! under the canonical [`tg_wire::metric`] naming convention. This module
//! joins them back into one [`LinkUsage`] per link with *no ad-hoc string
//! mapping*: every name is split by [`tg_wire::metric::parse_link_metric`].

use std::collections::HashMap;

use tg_sim::MetricsRegistry;
use tg_wire::metric::parse_link_metric;
use tg_wire::trace::Site;

/// Joined per-directed-link usage summary.
#[derive(Clone, Debug, Default)]
pub struct LinkUsage {
    /// Rendered `"<a>-<b>"` link name (e.g. `node3-switch0`).
    pub name: String,
    /// Mean of the windowed utilization samples (0..=1).
    pub mean_utilization: f64,
    /// Peak windowed utilization (0..=1).
    pub peak_utilization: f64,
    /// Peak sampled receive-FIFO depth at the `<b>` end (packets).
    pub peak_fifo_depth: f64,
    /// High-water mark of the receive FIFO over the whole run (packets).
    pub fifo_high_water: f64,
    /// Cumulative credit-stall time at the `<a>` end (µs).
    pub stall_us: f64,
    /// Frames launched at `<a>`.
    pub tx_packets: u64,
    /// Bytes launched at `<a>`.
    pub tx_bytes: u64,
    /// Timeout-driven relaunches at `<a>`.
    pub retransmits: u64,
    /// Completed credit resynchronizations at `<a>`.
    pub resyncs: u64,
    /// Frames the `<b>` end's link layer rejected.
    pub rx_discards: u64,
}

impl LinkUsage {
    /// Saturation score used to rank links: mean utilization dominates,
    /// stall time breaks ties among equally-busy links (a link can be
    /// fully utilized without anyone queueing behind it — stall is the
    /// *harm* signal).
    pub fn score(&self) -> f64 {
        self.mean_utilization + self.stall_us / 1e6 + self.peak_fifo_depth / 1e9
    }
}

/// Joins every `link.<a>-<b>.<metric>` instrument in the registry into
/// one [`LinkUsage`] per directed link, in first-registration order
/// (deterministic across runs: `run_sampled` registers links in fabric
/// order).
pub fn link_usage(metrics: &MetricsRegistry) -> Vec<LinkUsage> {
    let mut order: Vec<String> = Vec::new();
    let mut by_link: HashMap<String, LinkUsage> = HashMap::new();
    let slot = |order: &mut Vec<String>,
                by_link: &mut HashMap<String, LinkUsage>,
                a: Site,
                b: Site|
     -> String {
        let name = format!("{a}-{b}");
        if !by_link.contains_key(&name) {
            order.push(name.clone());
            by_link.insert(
                name.clone(),
                LinkUsage {
                    name: name.clone(),
                    ..LinkUsage::default()
                },
            );
        }
        name
    };

    for (name, samples) in metrics.all_series() {
        let Some((a, b, leaf)) = parse_link_metric(name) else {
            continue;
        };
        let key = slot(&mut order, &mut by_link, a, b);
        let u = by_link.get_mut(&key).expect("just inserted");
        match leaf {
            "utilization" if !samples.is_empty() => {
                let sum: f64 = samples.iter().map(|s| s.value).sum();
                u.mean_utilization = sum / samples.len() as f64;
                u.peak_utilization = samples.iter().map(|s| s.value).fold(0.0, f64::max);
            }
            "fifo_depth" => {
                u.peak_fifo_depth = samples.iter().map(|s| s.value).fold(0.0, f64::max);
            }
            "stall_us" => {
                u.stall_us = samples.last().map(|s| s.value).unwrap_or(0.0);
            }
            _ => {}
        }
    }
    for (name, value) in metrics.counters() {
        let Some((a, b, leaf)) = parse_link_metric(name) else {
            continue;
        };
        let key = slot(&mut order, &mut by_link, a, b);
        let u = by_link.get_mut(&key).expect("just inserted");
        match leaf {
            "tx_packets" => u.tx_packets = value,
            "tx_bytes" => u.tx_bytes = value,
            "retransmits" => u.retransmits = value,
            "resyncs" => u.resyncs = value,
            "rx_discards" => u.rx_discards = value,
            _ => {}
        }
    }
    for (name, _, max) in metrics.gauges() {
        let Some((a, b, leaf)) = parse_link_metric(name) else {
            continue;
        };
        if leaf == "fifo_high_water" {
            let key = slot(&mut order, &mut by_link, a, b);
            by_link
                .get_mut(&key)
                .expect("just inserted")
                .fifo_high_water = max;
        }
    }

    order
        .into_iter()
        .map(|name| by_link.remove(&name).expect("indexed"))
        .collect()
}

/// The `k` most saturated links, hottest first. Deterministic: ties in
/// [`LinkUsage::score`] are broken by link name.
pub fn hottest_links(usage: &[LinkUsage], k: usize) -> Vec<LinkUsage> {
    let mut ranked: Vec<LinkUsage> = usage.to_vec();
    ranked.sort_by(|x, y| {
        y.score()
            .total_cmp(&x.score())
            .then_with(|| x.name.cmp(&y.name))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_sim::SimTime;
    use tg_wire::metric::link_metric;
    use tg_wire::NodeId;

    #[test]
    fn joins_series_counters_and_gauges_per_link() {
        let mut m = MetricsRegistry::new();
        let a = Site::Node(NodeId::new(0));
        let s = Site::Switch(0);
        let util = m.series(&link_metric(a, s, "utilization"));
        let depth = m.series(&link_metric(s, a, "fifo_depth"));
        let stall = m.series(&link_metric(a, s, "stall_us"));
        m.record(util, SimTime::from_us(1), 0.5);
        m.record(util, SimTime::from_us(2), 1.0);
        m.record(depth, SimTime::from_us(1), 3.0);
        m.record(stall, SimTime::from_us(2), 42.0);
        let c = m.counter(&link_metric(a, s, "tx_packets"));
        m.inc(c, 7);
        let g = m.gauge(&link_metric(a, s, "fifo_high_water"));
        m.set_gauge(g, 5.0);
        m.set_gauge(g, 2.0);

        let usage = link_usage(&m);
        assert_eq!(usage.len(), 2);
        let fwd = usage.iter().find(|u| u.name == "node0-switch0").unwrap();
        assert!((fwd.mean_utilization - 0.75).abs() < 1e-12);
        assert_eq!(fwd.peak_utilization, 1.0);
        assert_eq!(fwd.stall_us, 42.0);
        assert_eq!(fwd.tx_packets, 7);
        assert_eq!(fwd.fifo_high_water, 5.0);
        let rev = usage.iter().find(|u| u.name == "switch0-node0").unwrap();
        assert_eq!(rev.peak_fifo_depth, 3.0);
    }

    #[test]
    fn hottest_links_rank_deterministically() {
        let mk = |name: &str, util: f64, stall: f64| LinkUsage {
            name: name.to_string(),
            mean_utilization: util,
            stall_us: stall,
            ..LinkUsage::default()
        };
        let usage = vec![
            mk("node0-switch0", 0.2, 0.0),
            mk("switch0-node3", 0.9, 10.0),
            mk("switch0-node1", 0.9, 10.0),
        ];
        let top = hottest_links(&usage, 2);
        assert_eq!(top.len(), 2);
        // Equal scores: lexicographic tie-break.
        assert_eq!(top[0].name, "switch0-node1");
        assert_eq!(top[1].name, "switch0-node3");
    }
}
