//! Critical-path latency attribution.
//!
//! [`telegraphos::observe::op_chains`] merges every traced operation's
//! request and response packet events into one clamped, time-ordered
//! chain whose consecutive gaps telescope exactly to the op's end-to-end
//! latency. This module classifies each gap — *what* the operation was
//! waiting on (tx-queue, wire, switch-queue, credit-stall, retransmit,
//! delivery) and *where* (which site, which directed link) — without
//! disturbing the telescoping sum: [`OpAttribution::total`] always equals
//! `op.end - op.start`.
//!
//! Aggregates use [`LogHistogram`] (relative error ≤ 1/128) for
//! p50/p99/p999 over thousands of ops, and [`exemplar_at`] picks a real
//! operation at a requested quantile so reports can print a concrete
//! decomposition whose segments sum exactly to a measured latency, not to
//! an average of incommensurable runs.

use telegraphos::observe::{op_chains, ChainedEvent};
use tg_sim::{LogHistogram, SimTime};
use tg_wire::trace::{OpEvent, PacketEvent, Site, Stage};

/// What a critical-path segment was spent on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SegClass {
    /// CPU time from issue to the first packet event.
    CpuIssue,
    /// Waiting in a host interface's transmit queue.
    TxQueue,
    /// Blocked on flow-control credits (a [`Stage::CreditStall`] window).
    CreditStall,
    /// Serialization + propagation on a directed link.
    Wire,
    /// Waiting in a switch input FIFO.
    SwitchQueue,
    /// Loss-recovery time: waiting for a timeout-driven relaunch.
    Retransmit,
    /// Receive-side handling: rx FIFO, commit, remote-end turnaround.
    Delivery,
    /// CPU time from the last packet event to observed completion.
    CpuComplete,
}

impl SegClass {
    /// Every class, in canonical report order.
    pub const ALL: [SegClass; 8] = [
        SegClass::CpuIssue,
        SegClass::TxQueue,
        SegClass::CreditStall,
        SegClass::Wire,
        SegClass::SwitchQueue,
        SegClass::Retransmit,
        SegClass::Delivery,
        SegClass::CpuComplete,
    ];

    /// Stable kebab-case label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SegClass::CpuIssue => "cpu-issue",
            SegClass::TxQueue => "tx-queue",
            SegClass::CreditStall => "credit-stall",
            SegClass::Wire => "wire",
            SegClass::SwitchQueue => "switch-queue",
            SegClass::Retransmit => "retransmit",
            SegClass::Delivery => "delivery",
            SegClass::CpuComplete => "cpu-complete",
        }
    }
}

/// One classified critical-path segment of one operation.
#[derive(Clone, Debug)]
pub struct AttributedSegment {
    /// What the time was spent on.
    pub class: SegClass,
    /// The site where the segment ended (where the time accrued).
    pub site: Site,
    /// The directed link the segment belongs to: the traversed hop for
    /// [`SegClass::Wire`], the *outgoing* hop for queue/stall/retransmit
    /// segments, `None` for CPU and receive-side segments.
    pub link: Option<(Site, Site)>,
    /// Segment duration; all of an op's segments sum to its latency.
    pub dur: SimTime,
    /// True when the segment lies on the chained response packet's path.
    pub response: bool,
}

impl AttributedSegment {
    /// Human/report label naming the class and the hop it accrued on,
    /// e.g. `wire node0->switch0`, `tx-queue node3->switch0`,
    /// `resp-delivery@node0`.
    pub fn hop_label(&self) -> String {
        let prefix = if self.response { "resp-" } else { "" };
        match self.link {
            Some((a, b)) => format!("{prefix}{} {a}->{b}", self.class.label()),
            None => format!("{prefix}{}@{}", self.class.label(), self.site),
        }
    }
}

/// One operation's fully attributed critical path.
#[derive(Clone, Debug)]
pub struct OpAttribution {
    /// The operation.
    pub op: OpEvent,
    /// Its segments, in time order, telescoping to the whole.
    pub segments: Vec<AttributedSegment>,
}

impl OpAttribution {
    /// Sum of all segment durations — by construction exactly
    /// `op.end - op.start`.
    pub fn total(&self) -> SimTime {
        self.segments
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.dur)
    }

    /// End-to-end latency as the CPU observed it.
    pub fn latency(&self) -> SimTime {
        self.op.end.saturating_sub(self.op.start)
    }
}

/// Classifies the segment that *ends* at `cur`, given the event that
/// preceded it on the merged chain.
fn classify(prev: &ChainedEvent, cur: &ChainedEvent) -> SegClass {
    // Recovery first: time spent waiting for a relaunch (or after a
    // drop) is loss-recovery regardless of where the events sit.
    if cur.event.stage == Stage::Retransmit || prev.event.stage == Stage::Dropped {
        return SegClass::Retransmit;
    }
    // A CreditStall event opens a stall window; the gap from it to the
    // eventual launch is credit-stall time.
    if prev.event.stage == Stage::CreditStall {
        return SegClass::CreditStall;
    }
    if prev.event.site != cur.event.site {
        return SegClass::Wire;
    }
    match cur.event.stage {
        Stage::TxLaunch => SegClass::TxQueue,
        Stage::SwitchTx => SegClass::SwitchQueue,
        // Waiting *until* the stall was detected is ordinary queueing at
        // that site; the stall itself starts at the CreditStall event.
        Stage::CreditStall => match cur.event.site {
            Site::Node(_) => SegClass::TxQueue,
            Site::Switch(_) => SegClass::SwitchQueue,
        },
        Stage::CreditResync => SegClass::CreditStall,
        Stage::Dropped => SegClass::Wire,
        // RxStart, Commit, and same-site enqueues (remote-end response
        // turnaround) are receive-side handling.
        _ => SegClass::Delivery,
    }
}

/// Does this class's time accrue toward the site's *outgoing* hop?
fn wants_outgoing_link(class: SegClass) -> bool {
    matches!(
        class,
        SegClass::TxQueue | SegClass::SwitchQueue | SegClass::CreditStall | SegClass::Retransmit
    )
}

/// Attributes every traced operation: classifies each critical-path
/// segment and pins it to a site and directed link. Segment durations
/// telescope exactly to each op's end-to-end latency (the invariant is
/// inherited from [`op_chains`] — segments are the gaps between
/// consecutive clamped events, plus the issue/complete bookends).
pub fn attribute_ops(ops: &[OpEvent], packets: &[PacketEvent]) -> Vec<OpAttribution> {
    op_chains(ops, packets)
        .into_iter()
        .map(|chain| {
            let op = chain.op;
            let origin = Site::Node(op.node);
            let events = &chain.events;
            let mut segments = Vec::with_capacity(events.len() + 2);
            let mut prev_at = op.start;
            for (i, ev) in events.iter().enumerate() {
                let (class, response) = match i.checked_sub(1).map(|j| &events[j]) {
                    None => (SegClass::CpuIssue, ev.response),
                    Some(prev) => (classify(prev, ev), ev.response),
                };
                let link = match class {
                    SegClass::Wire => {
                        let from = i
                            .checked_sub(1)
                            .map(|j| events[j].event.site)
                            .unwrap_or(origin);
                        Some((from, ev.event.site))
                    }
                    c if wants_outgoing_link(c) => {
                        // The hop this queueing feeds: the next site the
                        // packet reaches after leaving this one.
                        let here = ev.event.site;
                        events[i..]
                            .iter()
                            .map(|e| e.event.site)
                            .find(|s| *s != here)
                            .map(|next| (here, next))
                    }
                    _ => None,
                };
                segments.push(AttributedSegment {
                    class,
                    site: ev.event.site,
                    link,
                    dur: ev.at.saturating_sub(prev_at),
                    response,
                });
                prev_at = ev.at;
            }
            segments.push(AttributedSegment {
                class: SegClass::CpuComplete,
                site: origin,
                link: None,
                dur: op.end.saturating_sub(prev_at),
                response: false,
            });
            OpAttribution { op, segments }
        })
        .collect()
}

/// End-to-end latencies of the given attributions as a log-bucketed
/// histogram in **nanoseconds** (relative error ≤ 1/128 at every
/// quantile).
pub fn latency_histogram(attribs: &[OpAttribution]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for a in attribs {
        h.record(a.latency().as_ns());
    }
    h
}

/// Total time per segment class across the given attributions, in
/// [`SegClass::ALL`] order (zero classes included, so tables line up
/// across runs).
pub fn class_breakdown(attribs: &[OpAttribution]) -> Vec<(SegClass, SimTime)> {
    SegClass::ALL
        .iter()
        .map(|&class| {
            let total = attribs
                .iter()
                .flat_map(|a| &a.segments)
                .filter(|s| s.class == class)
                .fold(SimTime::ZERO, |acc, s| acc + s.dur);
            (class, total)
        })
        .collect()
}

/// Total time per hop label (`wire node0->switch0`, …) across the given
/// attributions, in first-seen order — the per-hop attribution table.
pub fn hop_breakdown(attribs: &[OpAttribution]) -> Vec<(String, SimTime)> {
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<String, SimTime> = std::collections::HashMap::new();
    for seg in attribs.iter().flat_map(|a| &a.segments) {
        let label = seg.hop_label();
        if !totals.contains_key(&label) {
            order.push(label.clone());
        }
        *totals.entry(label).or_insert(SimTime::ZERO) += seg.dur;
    }
    order
        .into_iter()
        .map(|label| {
            let t = totals[&label];
            (label, t)
        })
        .collect()
}

/// Picks the operation sitting at quantile `q` of the latency
/// distribution (deterministically: ties broken by start time, then
/// node). Its printed segments sum *exactly* to its measured latency,
/// which an aggregate over many ops cannot promise.
pub fn exemplar_at(attribs: &[OpAttribution], q: f64) -> Option<&OpAttribution> {
    if attribs.is_empty() {
        return None;
    }
    let mut idx: Vec<usize> = (0..attribs.len()).collect();
    idx.sort_by_key(|&i| {
        let a = &attribs[i];
        (a.latency(), a.op.start, a.op.node.raw())
    });
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * idx.len() as f64).ceil() as usize).clamp(1, idx.len()) - 1;
    Some(&attribs[idx[rank]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_wire::trace::{OpKind, TraceId};
    use tg_wire::NodeId;

    fn ev(
        at_ns: u64,
        trace: TraceId,
        parent: Option<TraceId>,
        site: Site,
        stage: Stage,
    ) -> PacketEvent {
        PacketEvent {
            at: SimTime::from_ns(at_ns),
            trace,
            parent,
            site,
            stage,
            kind: "write",
            bytes: 64,
        }
    }

    #[test]
    fn segments_classify_and_telescope() {
        let n0 = Site::Node(NodeId::new(0));
        let n1 = Site::Node(NodeId::new(1));
        let s0 = Site::Switch(0);
        let t = TraceId::packet(NodeId::new(0), 1);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteWrite,
            start: SimTime::from_ns(100),
            end: SimTime::from_ns(1000),
            trace: Some(t),
        };
        let packets = vec![
            ev(110, t, None, n0, Stage::TxEnqueue),
            ev(130, t, None, n0, Stage::CreditStall),
            ev(200, t, None, n0, Stage::TxLaunch),
            ev(300, t, None, s0, Stage::SwitchEnqueue),
            ev(350, t, None, s0, Stage::SwitchTx),
            ev(450, t, None, n1, Stage::RxEnqueue),
            ev(500, t, None, n1, Stage::RxStart),
            ev(900, t, None, n1, Stage::Commit),
        ];
        let attribs = attribute_ops(&[op], &packets);
        assert_eq!(attribs.len(), 1);
        let a = &attribs[0];
        assert_eq!(a.total(), a.latency(), "segments telescope");
        let classes: Vec<SegClass> = a.segments.iter().map(|s| s.class).collect();
        assert_eq!(
            classes,
            vec![
                SegClass::CpuIssue,
                SegClass::TxQueue,     // TxEnqueue -> CreditStall: queue wait
                SegClass::CreditStall, // CreditStall -> TxLaunch
                SegClass::Wire,        // node0 -> switch0
                SegClass::SwitchQueue, // SwitchEnqueue -> SwitchTx
                SegClass::Wire,        // switch0 -> node1
                SegClass::Delivery,    // RxEnqueue -> RxStart
                SegClass::Delivery,    // RxStart -> Commit
                SegClass::CpuComplete,
            ]
        );
        // The credit stall is pinned to the outgoing hop node0->switch0.
        assert_eq!(a.segments[2].link, Some((n0, s0)));
        assert_eq!(a.segments[3].link, Some((n0, s0)));
        assert_eq!(a.segments[5].link, Some((s0, n1)));
        assert_eq!(a.segments[2].dur, SimTime::from_ns(70));
    }

    #[test]
    fn retransmit_gap_is_recovery_time() {
        let n0 = Site::Node(NodeId::new(0));
        let s0 = Site::Switch(0);
        let t = TraceId::packet(NodeId::new(0), 2);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::Send,
            start: SimTime::from_ns(0),
            end: SimTime::from_ns(5000),
            trace: Some(t),
        };
        let packets = vec![
            ev(10, t, None, n0, Stage::TxEnqueue),
            ev(20, t, None, n0, Stage::TxLaunch),
            ev(100, t, None, s0, Stage::Dropped),
            ev(2100, t, None, n0, Stage::Retransmit),
            ev(2200, t, None, s0, Stage::SwitchEnqueue),
        ];
        let attribs = attribute_ops(&[op], &packets);
        let a = &attribs[0];
        assert_eq!(a.total(), a.latency());
        // Dropped -> Retransmit gap is the timeout wait.
        let retx: SimTime = a
            .segments
            .iter()
            .filter(|s| s.class == SegClass::Retransmit)
            .fold(SimTime::ZERO, |acc, s| acc + s.dur);
        assert_eq!(retx, SimTime::from_ns(2000));
    }

    #[test]
    fn response_chain_segments_carry_the_flag_and_telescope() {
        let n0 = Site::Node(NodeId::new(0));
        let n1 = Site::Node(NodeId::new(1));
        let req = TraceId::packet(NodeId::new(0), 3);
        let resp = TraceId::packet(NodeId::new(1), 9);
        let op = OpEvent {
            node: NodeId::new(0),
            kind: OpKind::RemoteRead,
            start: SimTime::from_ns(0),
            end: SimTime::from_ns(800),
            trace: Some(req),
        };
        let packets = vec![
            ev(10, req, None, n0, Stage::TxEnqueue),
            ev(20, req, None, n0, Stage::TxLaunch),
            ev(120, req, None, n1, Stage::RxEnqueue),
            ev(200, req, None, n1, Stage::Commit),
            ev(250, resp, Some(req), n1, Stage::TxEnqueue),
            ev(260, resp, Some(req), n1, Stage::TxLaunch),
            ev(400, resp, Some(req), n0, Stage::RxEnqueue),
            ev(700, resp, Some(req), n0, Stage::Commit),
        ];
        let attribs = attribute_ops(&[op], &packets);
        let a = &attribs[0];
        assert_eq!(a.total(), a.latency());
        assert!(a.segments.iter().any(|s| s.response));
        let resp_wire = a
            .segments
            .iter()
            .find(|s| s.response && s.class == SegClass::Wire)
            .unwrap();
        assert_eq!(resp_wire.link, Some((n1, n0)));
    }

    #[test]
    fn aggregates_and_exemplars_are_deterministic() {
        let n0 = Site::Node(NodeId::new(0));
        let n1 = Site::Node(NodeId::new(1));
        let mut ops = Vec::new();
        let mut packets = Vec::new();
        for i in 0..100u64 {
            let t = TraceId::packet(NodeId::new(0), i + 1);
            let end = 100 + i * 10;
            ops.push(OpEvent {
                node: NodeId::new(0),
                kind: OpKind::RemoteWrite,
                start: SimTime::ZERO,
                end: SimTime::from_ns(end),
                trace: Some(t),
            });
            packets.push(ev(10, t, None, n0, Stage::TxLaunch));
            packets.push(ev(end - 10, t, None, n1, Stage::Commit));
        }
        let attribs = attribute_ops(&ops, &packets);
        let h = latency_histogram(&attribs);
        assert_eq!(h.count(), 100);
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        let p99 = exemplar_at(&attribs, 0.99).unwrap();
        assert_eq!(p99.total(), p99.latency());
        // Rank 99 of 100 (0-based 98) has latency 100 + 98*10.
        assert_eq!(p99.latency(), SimTime::from_ns(1080));
        let classes = class_breakdown(&attribs);
        let total: SimTime = classes.iter().fold(SimTime::ZERO, |acc, (_, t)| acc + *t);
        let whole: SimTime = attribs.iter().fold(SimTime::ZERO, |acc, a| acc + a.total());
        assert_eq!(total, whole, "class totals partition the whole");
        let hops = hop_breakdown(&attribs);
        let hop_total: SimTime = hops.iter().fold(SimTime::ZERO, |acc, (_, t)| acc + *t);
        assert_eq!(hop_total, whole, "hop totals partition the whole");
    }
}
