//! The `tg-report-v2` structured report and its std-only JSON model.
//!
//! Every run binary (`simbench`, `simfault`, `simreport`, `simkv`) emits
//! the same schema so the CI gate can diff any report against any
//! baseline:
//!
//! ```json
//! {
//!   "schema": "tg-report-v2",
//!   "name": "stencil_16",
//!   "sim_time_us": 123.4,
//!   "metrics": { "fabric.retransmits": 0, "link.node0-switch0.tx_bytes": 4096, ... },
//!   "latency": { "remote-write": { "count": 96, "p50_ns": 410, "p99_ns": 870, ... } },
//!   "attribution": { "remote-write": { "wire node0->switch0": 12.5, ... } },
//!   "hottest_links": [ { "link": "switch0-node5", "mean_utilization": 0.81, ... } ]
//! }
//! ```
//!
//! All numeric leaves are gateable; [`flatten`] turns a report into
//! dotted `(path, value)` pairs (`latency.remote-write.p99_ns`) for the
//! tolerance diff in [`crate::gate`].
//!
//! [`Json`] is a deliberately small value model: parse with
//! [`Json::parse`], render with [`Json::to_string_pretty`]. Object key
//! order is preserved (insertion order), keeping emitted reports
//! byte-stable across identical runs — the CI determinism check relies
//! on that.

use std::fmt::Write as _;

/// Version tag every report carries in its `schema` field. v2 added
/// `p999_us`/`p999_ns` fields to the latency and recovery summaries; the
/// field set is otherwise a superset of v1, so readers accept both (see
/// [`schema_accepted`]).
pub const SCHEMA: &str = "tg-report-v2";

/// The previous schema tag, still accepted by readers: a v1 report is a
/// v2 report minus the p999 fields, and the gate treats current-only
/// metrics as informational rather than failures.
pub const SCHEMA_V1: &str = "tg-report-v1";

/// Whether `tag` names a report schema this crate's readers understand.
pub fn schema_accepted(tag: &str) -> bool {
    tag == SCHEMA || tag == SCHEMA_V1
}

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; u64 counters below 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object. Panics on non-objects —
    /// report construction is programmer-controlled.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object")
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document. Errors carry a byte offset and message.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders with two-space indentation and a trailing newline —
    /// byte-stable for identical values, diff-friendly in git.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        render(self, 0, &mut out);
        out.push('\n');
        out
    }
}

/// Flattens every numeric leaf into dotted `(path, value)` pairs, in
/// document order. Array elements use their `"name"` / `"link"` member
/// as the path component when present (so `BENCH_engine.json`'s
/// measurement list flattens to `ping_pong.events_per_sec`, …), else
/// their index.
pub fn flatten(value: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

fn walk(value: &Json, prefix: String, out: &mut Vec<(String, f64)>) {
    match value {
        Json::Num(n) => out.push((prefix, *n)),
        Json::Obj(entries) => {
            for (k, v) in entries {
                walk(v, join(&prefix, k), out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("name")
                    .or_else(|| item.get("link"))
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                walk(item, join(&prefix, &label), out);
            }
        }
        _ => {}
    }
}

/// Multiplies every numeric leaf whose flattened path contains `pattern`
/// by `factor`, returning how many leaves changed. This is the synthetic
/// regression injector behind `simreport degrade` — the negative test
/// that proves the CI gate actually fires.
pub fn scale_matching(value: &mut Json, pattern: &str, factor: f64) -> usize {
    fn go(value: &mut Json, prefix: String, pattern: &str, factor: f64) -> usize {
        match value {
            Json::Num(n) if prefix.contains(pattern) => {
                *n *= factor;
                1
            }
            Json::Num(_) => 0,
            Json::Obj(entries) => {
                let mut changed = 0;
                for (k, v) in entries.iter_mut() {
                    changed += go(v, join(&prefix, k), pattern, factor);
                }
                changed
            }
            Json::Arr(items) => {
                let mut changed = 0;
                for (i, item) in items.iter_mut().enumerate() {
                    let label = item
                        .get("name")
                        .or_else(|| item.get("link"))
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| i.to_string());
                    changed += go(item, join(&prefix, &label), pattern, factor);
                }
                changed
            }
            _ => 0,
        }
    }
    go(value, String::new(), pattern, factor)
}

// ---- parsing ---------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "bad utf8 in string".to_string());
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writers;
                        // map lone surrogates to the replacement char.
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unknown escape \\{}", esc as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        entries.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

// ---- rendering -------------------------------------------------------

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn fmt_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push('0');
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => fmt_num(*n, out),
        Json::Str(s) => {
            out.push('"');
            escape(s, out);
            out.push('"');
        }
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                let _ = write!(out, "{pad}  ");
                render(item, indent + 1, out);
            }
            let _ = write!(out, "\n{pad}]");
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                let _ = write!(out, "{pad}  \"");
                escape(k, out);
                out.push_str("\": ");
                render(v, indent + 1, out);
            }
            let _ = write!(out, "\n{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_parse_and_render() {
        let mut report = Json::obj();
        report.set("schema", Json::Str(SCHEMA.to_string()));
        report.set("name", Json::Str("stencil_16".to_string()));
        let mut metrics = Json::obj();
        metrics.set("fabric.retransmits", Json::Num(0.0));
        metrics.set("link.node0-switch0.tx_bytes", Json::Num(4096.0));
        report.set("metrics", metrics);
        report.set(
            "hottest_links",
            Json::Arr(vec![{
                let mut l = Json::obj();
                l.set("link", Json::Str("switch0-node5".to_string()));
                l.set("mean_utilization", Json::Num(0.8125));
                l
            }]),
        );

        let text = report.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, report);
        // Byte-stable: rendering the parsed value reproduces the text.
        assert_eq!(back.to_string_pretty(), text);
    }

    #[test]
    fn flatten_uses_name_and_link_labels() {
        let text = r#"[
            {"name": "ping_pong", "events_per_sec": 100.5, "events": 42},
            {"name": "stencil_16", "events_per_sec": 7}
        ]"#;
        let v = Json::parse(text).unwrap();
        let flat = flatten(&v);
        assert_eq!(
            flat,
            vec![
                ("ping_pong.events_per_sec".to_string(), 100.5),
                ("ping_pong.events".to_string(), 42.0),
                ("stencil_16.events_per_sec".to_string(), 7.0),
            ]
        );
    }

    #[test]
    fn scale_matching_hits_only_matching_paths() {
        let mut v = Json::parse(
            r#"[{"name": "bench", "events_per_sec": 1000, "events": 50},
                {"name": "other", "events_per_sec": 10}]"#,
        )
        .unwrap();
        let changed = scale_matching(&mut v, "bench.events_per_sec", 0.9);
        assert_eq!(changed, 1);
        let flat = flatten(&v);
        assert_eq!(flat[0], ("bench.events_per_sec".to_string(), 900.0));
        assert_eq!(flat[1], ("bench.events".to_string(), 50.0));
        assert_eq!(flat[2], ("other.events_per_sec".to_string(), 10.0));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{'a': 1}").is_err());
    }

    #[test]
    fn escapes_survive_round_trips() {
        let v = Json::Str("line\nbreak \"quoted\" back\\slash".to_string());
        let text = v.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
