//! # tg-analyze — post-run analysis for the Telegraphos reproduction
//!
//! The simulation layers *record* (trace events, metric time series, port
//! counters); this crate *explains*. It consumes the artifacts a run
//! leaves behind and produces the three things the paper's §3.2-style
//! evaluation needs:
//!
//! * [`attrib`] — **critical-path latency attribution**: every traced
//!   operation's end-to-end latency decomposed into tx-queue / wire /
//!   switch-queue / credit-stall / retransmit / delivery segments per
//!   link, with the segments provably telescoping to the whole (the same
//!   invariant `telegraphos::observe::op_breakdowns` guarantees, here
//!   carried across request→response parent chains and attributed to
//!   fabric hops). Aggregates use [`tg_sim::LogHistogram`] percentiles
//!   with exemplar operations whose printed segments sum exactly.
//! * [`congestion`] — the **congestion observatory**: joins the
//!   `link.<a>-<b>.<metric>` time series and counters recorded by
//!   `Cluster::run_sampled` into per-link usage summaries and a top-K
//!   "hottest links" report that names the saturated hop.
//! * [`report`] / [`gate`] — the **`tg-report-v2` JSON schema** shared by
//!   `simbench`, `simfault` and `simreport`, and the CI perf-regression
//!   gate that diffs a current report against a committed baseline with
//!   per-metric, direction-aware tolerances.
//!
//! Everything here is std-only, like the rest of the workspace: the JSON
//! reader/writer in [`report`] is a small recursive-descent parser, not a
//! dependency.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attrib;
pub mod congestion;
pub mod gate;
pub mod report;

pub use attrib::{
    attribute_ops, class_breakdown, exemplar_at, hop_breakdown, latency_histogram,
    AttributedSegment, OpAttribution, SegClass,
};
pub use congestion::{hottest_links, link_usage, LinkUsage};
pub use gate::{gate_reports, Direction, GateFailure, GateResult, Tolerances};
pub use report::{flatten, scale_matching, schema_accepted, Json, SCHEMA, SCHEMA_V1};
